"""Make ``repro`` importable when running examples from a checkout.

``import _bootstrap`` at the top of an example prepends the repository's
``src/`` directory to ``sys.path`` unless ``repro`` is already installed
(e.g. via ``pip install -e .``).
"""

import importlib.util
import sys
from pathlib import Path

if importlib.util.find_spec("repro") is None:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
