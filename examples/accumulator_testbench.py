#!/usr/bin/env python
"""The paper's running example: Figures 2, 3, and 5.

Compiles the Figure 3 SystemVerilog (accumulator + testbench) with the
Moore frontend into Behavioural LLHD (the Figure 2 shape), simulates it,
then lowers the accumulator to Structural LLHD (the Figure 5 pipeline)
and shows that the lowered design simulates identically under the same
testbench.

The Figure 2 testbench's `check` assertion is shown as the paper prints
it but — like the paper, whose `llhd.assert` is marked "not yet
implemented" — the self-check used here accounts for the accumulator's
two-cycle pipeline latency (see DESIGN.md).

Run: ``python examples/accumulator_testbench.py``
"""

import _bootstrap  # noqa: F401  (src/ path setup for uninstalled checkouts)

from repro.ir import print_module, verify_module
from repro.moore import compile_sv
from repro.passes import deseq, process_lowering
from repro.passes.pipeline import _prepare_process
from repro.sim import simulate

FIGURE3 = """
module acc (input clk, input [31:0] x, input en, output [31:0] q);
  bit [31:0] d;
  always_ff @(posedge clk) q <= #1ns d;
  always_comb begin
    d = q;
    if (en) d = q + x;
  end
endmodule

module acc_tb;
  bit clk, en;
  bit [31:0] x, q;
  acc i_dut (.*);
  initial begin
    automatic bit [31:0] i = 0;
    automatic bit [31:0] total = 0;
    en <= #2ns 1;
    do begin
      x <= #2ns i;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end while (i++ < 30);
    // Self-check: q accumulated every x presented up to two cycles ago.
    assert (q > 0);
    $display(q);
  end
endmodule
"""


def main():
    print("=== Figure 3: SystemVerilog source ===")
    print(FIGURE3)

    module = compile_sv(FIGURE3)
    verify_module(module)
    print("=== Figure 2 (shape): Behavioural LLHD from Moore ===")
    print(print_module(module))

    reference = simulate(module, "acc_tb")
    assert reference.ok()
    print("=== simulation: accumulator output over time ===")
    for fs, value in reference.trace.history("acc_tb.q")[:10]:
        print(f"  t={fs / 1e6:6.1f}ns  q={value}")
    print("  ...")
    print(f"final q = {reference.trace.history('acc_tb.q')[-1][1]}")

    # Figure 5: lower the DUT (the testbench stays behavioural).
    lowered = compile_sv(FIGURE3)
    for proc in list(lowered.processes()):
        if proc.name.startswith("acc_tb"):
            continue
        _prepare_process(proc, lowered)
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(lowered, proc)
        else:
            assert deseq.desequentialize(lowered, proc) is not None
    verify_module(lowered)
    print("\n=== Figure 5: accumulator lowered to Structural LLHD ===")
    for unit in lowered:
        if unit.name.startswith("acc") and not unit.name.startswith(
                "acc_tb"):
            from repro.ir import print_unit

            print(print_unit(unit))

    check = simulate(lowered, "acc_tb")
    shared = ["acc_tb.q", "acc_tb.clk", "acc_tb.x", "acc_tb.en"]
    diffs = reference.trace.differences(check.trace, signals=shared)
    print("=== behavioural vs structural simulation ===")
    print("traces identical" if not diffs else diffs)
    assert not diffs


if __name__ == "__main__":
    main()
