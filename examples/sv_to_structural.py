#!/usr/bin/env python
"""The paper's Figure 1 "tomorrow" flow, end to end:

SystemVerilog ──Moore──▶ Behavioural LLHD ──§4 passes──▶ Structural LLHD
──export──▶ structural Verilog, and ──techmap──▶ Netlist LLHD.

Run: ``python examples/sv_to_structural.py``
"""

import _bootstrap  # noqa: F401  (src/ path setup for uninstalled checkouts)

from repro.interop import export_verilog, technology_map
from repro.ir import (
    STRUCTURAL, classify, link_modules, parse_module, print_module,
    verify_module,
)
from repro.moore import compile_sv
from repro.passes import lower_to_structural

DESIGN = """
module edge_counter (input clk, input rst, input sig_in,
                     output logic [15:0] edges);
  logic last;
  always_ff @(posedge clk) begin
    if (rst) begin
      edges <= 16'd0;
      last <= 1'b0;
    end else begin
      last <= sig_in;
      if (sig_in && !last)
        edges <= edges + 16'd1;
    end
  end
endmodule
"""


def main():
    print("=== 1. SystemVerilog input ===")
    print(DESIGN)

    module = compile_sv(DESIGN)
    print("=== 2. Behavioural LLHD (Moore output) ===")
    print(print_module(module))

    report = lower_to_structural(module)
    verify_module(module, level=STRUCTURAL)
    print("=== 3. Structural LLHD (after CF/DCE/CSE/IS, ECM, TCM, TCFE, "
          "PL, Deseq) ===")
    print(print_module(module))
    print(f"lowered via PL:    {report.lowered_by_pl}")
    print(f"lowered via Deseq: {report.lowered_by_deseq}")

    print("=== 4. Structural Verilog export ===")
    print(export_verilog(module))

    print(f"classified level: {classify(module)}")


if __name__ == "__main__":
    main()
