#!/usr/bin/env python
"""Quickstart: build, print, and simulate a small LLHD design.

Constructs the Figure 5 structural accumulator with the builder API plus
a Figure 2-style testbench process (loop counter in a ``var``), renders
the assembly, simulates with the reference interpreter, and prints the
value trace of the accumulator output.

Run: ``python examples/quickstart.py``
"""

import _bootstrap  # noqa: F401  (src/ path setup for uninstalled checkouts)

from repro.ir import (
    Builder, Entity, Module, Process, TimeValue, int_type, print_module,
    signal_type, verify_module,
)
from repro.sim import simulate

i1 = int_type(1)
i32 = int_type(32)


def build_accumulator(module):
    """The accumulator of the paper's Figure 5 (bottom right)."""
    acc = Entity("acc",
                 [signal_type(i1), signal_type(i32), signal_type(i1)],
                 ["clk", "x", "en"],
                 [signal_type(i32)], ["q"])
    b = Builder.at_end(acc.body)
    clk, x, en = acc.inputs
    q = acc.outputs[0]
    clkp = b.prb(clk, name="clkp")
    qp = b.prb(q, name="qp")
    xp = b.prb(x, name="xp")
    enp = b.prb(en, name="enp")
    total = b.add(qp, xp, name="sum")
    # A rising-edge register gated by the enable — exactly the paper's
    # final `reg i32$ %q, %sum rise %clkp if %enp`.
    b.reg(q, [("rise", total, clkp, enp, None)])
    module.add(acc)
    return acc


def build_testbench(module):
    """A Figure 2-style stimulus process plus the top-level entity."""
    stim = Process("stim", [], [],
                   [signal_type(i1), signal_type(i32), signal_type(i1)],
                   ["clk", "x", "en"])
    clk, x, en = stim.outputs
    entry = stim.create_block("entry")
    loop = stim.create_block("loop")
    nxt = stim.create_block("next")
    done = stim.create_block("done")

    b = Builder.at_end(entry)
    bit0, bit1 = b.const_int(i1, 0), b.const_int(i1, 1)
    zero, one = b.const_int(i32, 0), b.const_int(i32, 1)
    limit = b.const_int(i32, 10)
    t1 = b.const_time(TimeValue.parse("1ns"))
    t2 = b.const_time(TimeValue.parse("2ns"))
    counter = b.var(zero, name="i")
    b.drv(en, bit1, t1)
    b.br(loop)

    b = Builder.at_end(loop)
    i = b.ld(counter, name="ip")
    b.drv(x, i, t1)        # present the next addend
    b.drv(clk, bit1, t1)   # rising edge at +1ns
    b.drv(clk, bit0, t2)   # falling edge at +2ns
    b.wait(nxt, t2, [])

    b = Builder.at_end(nxt)
    i_next = b.add(i, one, name="in")
    b.st(counter, i_next)
    cont = b.ult(i_next, limit, name="cont")
    b.br_cond(cont, done, loop)

    Builder.at_end(done).halt()
    module.add(stim)

    top = Entity("top", [], [], [], [])
    b = Builder.at_end(top.body)
    z1 = b.const_int(i1, 0)
    z32 = b.const_int(i32, 0)
    clk_s = b.sig(z1, name="clk")
    x_s = b.sig(z32, name="x")
    en_s = b.sig(z1, name="en")
    q_s = b.sig(z32, name="q")
    b.inst("acc", [clk_s, x_s, en_s], [q_s])
    b.inst("stim", [], [clk_s, x_s, en_s])
    module.add(top)
    return top


def main():
    module = Module("quickstart")
    build_accumulator(module)
    build_testbench(module)
    verify_module(module)

    print("=== LLHD assembly ===")
    print(print_module(module))

    result = simulate(module, "top")
    print("=== accumulator output trace (top.q) ===")
    for fs, value in result.trace.history("top.q"):
        print(f"  t={fs / 1e6:6.1f}ns  q={value}")
    final = result.trace.history("top.q")[-1][1]
    print(f"\nAccumulated 0+1+...+9 = {final} (expected {sum(range(10))})")
    assert final == sum(range(10))


if __name__ == "__main__":
    main()
