#!/usr/bin/env python
"""Simulate the RISC-V core design on all three simulators.

Compiles the RV32I-subset core plus its self-checking testbench (an
iterative Fibonacci program assembled by the bundled RV32I assembler),
runs it under the reference interpreter, the compiled Blaze-style
simulator, and the independent cycle simulator, verifies that all traces
match, and reports the relative performance — a miniature of the paper's
Table 2 experiment.

Run: ``python examples/riscv_simulation.py``
"""

import _bootstrap  # noqa: F401  (src/ path setup for uninstalled checkouts)

import time

from repro.designs import DESIGNS, compile_design
from repro.designs.riscv import expected_results, program_words
from repro.designs.riscv_asm import disassemble_word
from repro.sim import simulate

CYCLES = 200


def main():
    words = program_words(n=10)
    print(f"=== program ({len(words)} instructions) ===")
    for i, word in enumerate(words[:12]):
        print(f"  {i * 4:3d}: {word:08x}  {disassemble_word(word)}")
    print("  ...")

    module = compile_design("riscv", cycles=CYCLES)
    top = DESIGNS["riscv"].top

    results = {}
    timings = {}
    for backend in ("interp", "blaze", "cycle"):
        start = time.perf_counter()
        results[backend] = simulate(module, top, backend=backend)
        timings[backend] = time.perf_counter() - start
        assert results[backend].assertion_failures == []

    print("\n=== trace agreement ===")
    base = results["interp"].trace
    for other in ("blaze", "cycle"):
        diffs = base.differences(results[other].trace)
        print(f"  interp vs {other}: "
              f"{'identical' if not diffs else diffs[:3]}")
        assert not diffs

    print("\n=== data memory results (asserted by the testbench) ===")
    expected = expected_results(10)
    labels = ["fib(10)", "10", "10<<2", "10^40", "10<40", "checksum"]
    for i, (label, value) in enumerate(zip(labels, expected)):
        print(f"  dmem[{i}] = {value:5d}   ({label})")

    print("\n=== simulator timing (this machine, "
          f"{CYCLES} clock cycles) ===")
    for backend, label in (("interp", "LLHD-Sim (interpreter)"),
                           ("blaze", "Blaze-style (compiled)"),
                           ("cycle", "cycle (independent)")):
        t = timings[backend]
        print(f"  {label:26s} {t * 1000:8.1f} ms  "
              f"({timings['interp'] / t:4.1f}x vs interpreter)")


if __name__ == "__main__":
    main()
