"""repro — a pure-Python reproduction of LLHD (PLDI 2020).

LLHD is a multi-level intermediate representation for hardware description
languages: one SSA-based IR that carries a digital design from behavioural
simulation and verification, through lowering, to a structural form ready
for synthesis, down to the final netlist.

Top-level surface:

* :mod:`repro.ir` — the IR itself (types, units, builder, parser, printer,
  verifier, bitcode, linker).
* :mod:`repro.analysis` — CFG, dominators, temporal regions.
* :mod:`repro.passes` — the behavioural→structural lowering pipeline.
* :mod:`repro.sim` — the reference interpreter (LLHD-Sim), the compiled
  simulator (LLHD-Blaze analogue), and an independent cycle simulator.
* :mod:`repro.moore` — a SystemVerilog-subset frontend in the spirit of
  the paper's Moore compiler.
* :mod:`repro.designs` — the evaluation design suite of Table 2.
"""

__version__ = "1.0.0"

from . import ir

__all__ = ["ir", "__version__"]
