"""Round-robin arbiter — Table 2 (159 LoC SV, 5M cycles in the paper).

A four-requester round-robin arbiter with a rotating priority pointer.
The testbench drives request patterns and asserts one-hot grants, grant
validity (granted line must have requested), and fairness (a requester
holding its line is served within four grant cycles).
"""

NAME = "rr_arbiter"
PAPER_NAME = "RR Arbiter"
PAPER_LOC = 159
PAPER_CYCLES = 5_000_000
TOP = "rr_arbiter_tb"


def source(cycles=150):
    return """
module rr_arbiter (input clk, input rst,
                   input logic [3:0] req,
                   output logic [3:0] grant);
  logic [1:0] pointer;
  logic [3:0] grant_next;

  function [3:0] pick(input [3:0] requests, input [1:0] start);
    automatic int k = 0;
    automatic int idx = 0;
    automatic int found = 0;
    pick = 4'd0;
    for (k = 0; k < 4; k++) begin
      idx = (start + k) & 3;
      if (!found && requests[idx]) begin
        pick = 4'd1 << idx;
        found = 1;
      end
    end
  endfunction

  always_comb begin
    grant_next = pick(req, pointer);
  end

  always_ff @(posedge clk) begin
    if (rst) begin
      pointer <= 2'd0;
      grant <= 4'd0;
    end else begin
      grant <= grant_next;
      if (grant_next != 4'd0) begin
        if (grant_next[0]) pointer <= 2'd1;
        if (grant_next[1]) pointer <= 2'd2;
        if (grant_next[2]) pointer <= 2'd3;
        if (grant_next[3]) pointer <= 2'd0;
      end
    end
  end
endmodule

module rr_arbiter_tb;
  logic clk, rst;
  logic [3:0] req, grant;

  rr_arbiter dut (.clk(clk), .rst(rst), .req(req), .grant(grant));

  function [2:0] onecount(input [3:0] x);
    onecount = {2'd0, x[0]} + {2'd0, x[1]} + {2'd0, x[2]} + {2'd0, x[3]};
  endfunction

  initial begin
    automatic int i = 0;
    automatic int starve = 0;
    automatic logic [31:0] rng = 32'h13579BDF;
    rst = 1; req = 4'd0;
    #1ns; clk = 1; #1ns; clk = 0;
    rst = 0;
    while (i < CYCLES) begin
      rng = (rng * 32'd1103515245) + 32'd12345;
      req = rng[19:16] | 4'b0001;   // requester 0 always asks
      #1ns; clk = 1;
      #1ns; clk = 0;
      #1ns;
      assert (onecount(grant) <= 3'd1);
      assert ((grant & ~req) == 4'd0);
      if (grant[0])
        starve = 0;
      else
        starve = starve + 1;
      assert (starve <= 4);
      i++;
    end
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
