"""FIR filter — Table 2 (20 LoC SV, 5M cycles in the paper).

A 4-tap FIR with registered delay line; the testbench feeds a sample
stream and checks every output against a reference convolution computed
in a testbench function.
"""

NAME = "fir"
PAPER_NAME = "FIR Filter"
PAPER_LOC = 20
PAPER_CYCLES = 5_000_000
TOP = "fir_tb"


def source(cycles=200):
    return """
module fir (input clk, input logic [15:0] sample,
            output logic [17:0] filtered);
  logic [15:0] d0, d1, d2, d3;
  always_ff @(posedge clk) begin
    d0 <= sample;
    d1 <= d0;
    d2 <= d1;
    d3 <= d2;
  end
  assign filtered = (d0 + d3) + ((d1 + d2) << 1);
endmodule

module fir_tb;
  logic clk;
  logic [15:0] sample;
  logic [17:0] filtered;
  logic [15:0] h0, h1, h2, h3;

  fir dut (.clk(clk), .sample(sample), .filtered(filtered));

  function [17:0] reference(input [15:0] a, input [15:0] b,
                            input [15:0] c, input [15:0] d);
    reference = (a + d) + ((b + c) << 1);
  endfunction

  initial begin
    automatic int i = 0;
    automatic logic [15:0] x0 = 0;
    automatic logic [15:0] x1 = 0;
    automatic logic [15:0] x2 = 0;
    automatic logic [15:0] x3 = 0;
    sample = 16'd0;
    while (i < CYCLES) begin
      sample = ((i * 7) + 13) & 16'hFFFF;
      #1ns;
      clk = 1;
      #1ns;
      clk = 0;
      x3 = x2; x2 = x1; x1 = x0; x0 = sample;
      #1ns;
      assert (filtered == reference(x0, x1, x2, x3));
      i++;
    end
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
