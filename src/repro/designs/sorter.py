"""Bitonic sorting network — suite extension (not in the paper's table).

A 16-lane, 16-bit combinational bitonic sorting network: 80 compare-swap
cells (~10 logic levels) between a 256-bit input bus and a 256-bit output
bus.  The testbench feeds LFSR-derived vectors and self-checks that the
output is sorted and sum-preserving.

The design exists to pin the simulators' *compute-bound* regime: almost
all work is a single wide combinational cone re-evaluated per stimulus,
so the compiled engine's straight-line code dominates scheduler overhead
— the regime where the paper's JIT shows its orders-of-magnitude gap
over the reference interpreter.  It also exercises wide (>64 bit)
vectors, concatenation, and deep ternary chains in the Moore subset.
"""

NAME = "sorter"
PAPER_NAME = "Bitonic Sorter*"   # * = suite extension, not a paper row
PAPER_LOC = 210
PAPER_CYCLES = 1_000_000
TOP = "sorter_tb"

_LANES = 16
_W = 16


def _network(lanes):
    """The bitonic compare-swap schedule: (i, j, ascending) triples."""
    swaps = []
    k = 2
    while k <= lanes:
        j = k // 2
        while j >= 1:
            for i in range(lanes):
                partner = i ^ j
                if partner > i:
                    swaps.append((i, partner, (i & k) == 0))
            j //= 2
        k *= 2
    return swaps


def _sorter_module():
    bus = _LANES * _W
    lines = []
    lines.append(f"module sorter (input logic [{bus-1}:0] ibus,")
    lines.append(f"               output logic [{bus-1}:0] obus);")
    lines.append("  always_comb begin")
    swaps = _network(_LANES)
    # Single-assignment temps: one pair per compare-swap cell.
    for lane in range(_LANES):
        lines.append(f"    automatic logic [{_W-1}:0] v{lane} = "
                     f"{_W}'d0;")
    for s in range(len(swaps)):
        lines.append(f"    automatic logic [{_W-1}:0] lo{s} = {_W}'d0;")
        lines.append(f"    automatic logic [{_W-1}:0] hi{s} = {_W}'d0;")
    cur = [f"v{lane}" for lane in range(_LANES)]
    for lane in range(_LANES):
        lo = lane * _W
        lines.append(f"    v{lane} = ibus[{lo + _W - 1}:{lo}];")
    for s, (i, j, asc) in enumerate(swaps):
        a, b = cur[i], cur[j]
        lines.append(f"    lo{s} = ({a} <= {b}) ? {a} : {b};")
        lines.append(f"    hi{s} = ({a} <= {b}) ? {b} : {a};")
        if asc:
            cur[i], cur[j] = f"lo{s}", f"hi{s}"
        else:
            cur[i], cur[j] = f"hi{s}", f"lo{s}"
    concat = ", ".join(cur[lane] for lane in range(_LANES - 1, -1, -1))
    lines.append(f"    obus = {{{concat}}};")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)


def _testbench(cycles):
    bus = _LANES * _W
    pad = bus - _W
    return f"""
module sorter_tb;
  logic [{bus-1}:0] ibus;
  logic [{bus-1}:0] obus;

  sorter dut (.ibus(ibus), .obus(obus));

  initial begin
    automatic int i = 0;
    automatic int j = 0;
    automatic logic [31:0] rng = 32'hACE12B3D;
    automatic logic [{bus-1}:0] vec = {bus}'d0;
    automatic logic [{bus-1}:0] tmp = {bus}'d0;
    automatic logic [{_W-1}:0] prev = {_W}'d0;
    automatic logic [{_W-1}:0] cur = {_W}'d0;
    automatic logic [23:0] insum = 24'd0;
    automatic logic [23:0] outsum = 24'd0;
    ibus = {bus}'d0;
    #1ns;
    while (i < {cycles}) begin
      vec = {bus}'d0;
      insum = 24'd0;
      j = 0;
      while (j < {_LANES}) begin
        rng = (rng << 1) ^ ((rng >> 31) ? 32'h04C11DB7 : 32'd0)
              ^ (i * 32'd2654435761) ^ j;
        vec = (vec << {_W}) | {{{pad}'d0, rng[{_W-1}:0]}};
        insum = insum + {{8'd0, rng[{_W-1}:0]}};
        j++;
      end
      ibus = vec;
      #1ns;
      tmp = obus;
      prev = tmp[{_W-1}:0];
      outsum = {{8'd0, prev}};
      j = 1;
      while (j < {_LANES}) begin
        tmp = tmp >> {_W};
        cur = tmp[{_W-1}:0];
        assert (prev <= cur);
        outsum = outsum + {{8'd0, cur}};
        prev = cur;
        j++;
      end
      assert (outsum == insum);
      i++;
    end
    $finish;
  end
endmodule
"""


def source(cycles=40):
    return _sorter_module() + "\n" + _testbench(cycles)
