"""RISC-V core — Table 2's largest design (3479 LoC SV in the paper).

A single-cycle RV32I-subset core: fetch from a word-addressed instruction
memory, decode, register file, ALU, branches/jumps, and a word-addressed
data memory.  The paper uses an industrial RISC-V core (Snitch); this
core plays the same role as the largest, most control-heavy design in the
suite (DESIGN.md, substitution 4).

The testbench loads a program assembled by :mod:`repro.designs.riscv_asm`
(iterative Fibonacci plus a memory checksum loop), runs it to completion
(detected by a store to the magic I/O address), and asserts the results
in data memory.
"""

from . import riscv_asm

NAME = "riscv"
PAPER_NAME = "RISC-V Core"
PAPER_LOC = 3479
PAPER_CYCLES = 1_000_000
TOP = "riscv_tb"

# Iterative Fibonacci: fib(N) into dmem[0], checksum of dmem[0..4] into
# dmem[5], then signal completion by storing 1 to dmem[63].
PROGRAM = """
start:
    li   t0, {n}          # counter
    li   t1, 0            # fib(0)
    li   t2, 1            # fib(1)
loop:
    beq  t0, zero, store
    add  t3, t1, t2
    mv   t1, t2
    mv   t2, t3
    addi t0, t0, -1
    j    loop
store:
    sw   t1, 0(zero)      # dmem[0] = fib(n)
    addi t4, zero, 10
    sw   t4, 4(zero)      # dmem[1] = 10
    slli t5, t4, 2
    sw   t5, 8(zero)      # dmem[2] = 40
    xor  t6, t4, t5
    sw   t6, 12(zero)     # dmem[3] = 34
    sltu s0, t4, t5
    sw   s0, 16(zero)     # dmem[4] = 1
checksum:
    li   s1, 0            # sum
    li   s2, 0            # offset
    li   s3, 20           # limit (5 words)
csloop:
    beq  s2, s3, csdone
    lw   s4, 0(s2)
    add  s1, s1, s4
    addi s2, s2, 4
    j    csloop
csdone:
    sw   s1, 20(zero)     # dmem[5] = checksum
done:
    li   s5, 1
    sw   s5, 252(zero)    # dmem[63] = 1 -> testbench halts
halt:
    j    halt
"""


def fib(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def expected_results(n):
    """(dmem[0..5]) the program must produce."""
    values = [fib(n), 10, 40, 34, 1]
    return values + [sum(values)]


def program_words(n=10):
    return riscv_asm.assemble(PROGRAM.format(n=n))


def source(cycles=400, n=None):
    if n is None:
        # Scale the fib iteration count with the cycle budget so the
        # core stays busy for the whole run (the loop costs ~6 cycles
        # per iteration plus ~110 cycles of fixed prologue/checksum);
        # fib(47) is the largest value that fits 32 bits, which the
        # testbench's expected results assume.
        n = min(47, max(5, (cycles - 120) // 8))
    words = program_words(n)
    imem_init = "\n".join(
        f"      imem[{i}] = 32'h{w:08x};" for i, w in enumerate(words))
    expected = expected_results(n)
    return """
module riscv_core (input clk, input rst,
                   input logic [31:0] instr,
                   output logic [31:0] pc,
                   output logic [31:0] dmem_addr,
                   output logic [31:0] dmem_wdata,
                   output logic dmem_we,
                   input logic [31:0] dmem_rdata);
  logic [31:0] regs [32];
  logic [31:0] rs1_val, rs2_val, imm_i, imm_s, imm_b, imm_j, imm_u;
  logic [31:0] alu_a, alu_b, alu_out, next_pc, wb_value;
  logic [6:0] opcode;
  logic [4:0] rd, rs1, rs2;
  logic [2:0] funct3;
  logic [6:0] funct7;
  logic wb_en, take_branch;

  always_comb begin
    opcode = instr[6:0];
    rd = instr[11:7];
    funct3 = instr[14:12];
    rs1 = instr[19:15];
    rs2 = instr[24:20];
    funct7 = instr[31:25];
    imm_i = {{20{instr[31]}}, instr[31:20]};
    imm_s = {{20{instr[31]}}, instr[31:25], instr[11:7]};
    imm_b = {{19{instr[31]}}, instr[31], instr[7], instr[30:25],
             instr[11:8], 1'b0};
    imm_j = {{11{instr[31]}}, instr[31], instr[19:12], instr[20],
             instr[30:21], 1'b0};
    imm_u = {instr[31:12], 12'd0};

    rs1_val = (rs1 == 5'd0) ? 32'd0 : regs[rs1];
    rs2_val = (rs2 == 5'd0) ? 32'd0 : regs[rs2];

    alu_a = rs1_val;
    alu_b = (opcode == 7'b0110011 || opcode == 7'b1100011)
            ? rs2_val : imm_i;

    alu_out = 32'd0;
    case (funct3)
      3'b000: begin
        if (opcode == 7'b0110011 && funct7 == 7'b0100000)
          alu_out = alu_a - alu_b;
        else
          alu_out = alu_a + alu_b;
      end
      3'b001: alu_out = alu_a << alu_b[4:0];
      3'b010: alu_out = ($signed(alu_a) < $signed(alu_b)) ? 32'd1 : 32'd0;
      3'b011: alu_out = (alu_a < alu_b) ? 32'd1 : 32'd0;
      3'b100: alu_out = alu_a ^ alu_b;
      3'b101: alu_out = alu_a >> alu_b[4:0];
      3'b110: alu_out = alu_a | alu_b;
      3'b111: alu_out = alu_a & alu_b;
    endcase

    take_branch = 1'b0;
    case (funct3)
      3'b000: take_branch = (rs1_val == rs2_val);
      3'b001: take_branch = (rs1_val != rs2_val);
      3'b100: take_branch = ($signed(rs1_val) < $signed(rs2_val));
      3'b101: take_branch = !($signed(rs1_val) < $signed(rs2_val));
      3'b110: take_branch = (rs1_val < rs2_val);
      3'b111: take_branch = !(rs1_val < rs2_val);
      default: take_branch = 1'b0;
    endcase

    dmem_addr = 32'd0;
    dmem_wdata = 32'd0;
    dmem_we = 1'b0;
    wb_en = 1'b0;
    wb_value = 32'd0;
    next_pc = pc + 32'd4;

    case (opcode)
      7'b0110011: begin wb_en = 1'b1; wb_value = alu_out; end
      7'b0010011: begin wb_en = 1'b1; wb_value = alu_out; end
      7'b0110111: begin wb_en = 1'b1; wb_value = imm_u; end
      7'b0000011: begin
        dmem_addr = rs1_val + imm_i;
        wb_en = 1'b1;
        wb_value = dmem_rdata;
      end
      7'b0100011: begin
        dmem_addr = rs1_val + imm_s;
        dmem_wdata = rs2_val;
        dmem_we = 1'b1;
      end
      7'b1100011: begin
        if (take_branch)
          next_pc = pc + imm_b;
      end
      7'b1101111: begin
        wb_en = 1'b1;
        wb_value = pc + 32'd4;
        next_pc = pc + imm_j;
      end
      7'b1100111: begin
        wb_en = 1'b1;
        wb_value = pc + 32'd4;
        next_pc = (rs1_val + imm_i) & 32'hFFFFFFFE;
      end
      default: begin end
    endcase
  end

  always_ff @(posedge clk) begin
    if (rst) begin
      pc <= 32'd0;
    end else begin
      pc <= next_pc;
      if (wb_en && (rd != 5'd0))
        regs[rd] <= wb_value;
    end
  end
endmodule

module riscv_tb;
  logic clk, rst;
  logic [31:0] pc, instr, dmem_addr, dmem_wdata, dmem_rdata;
  logic dmem_we;
  logic [31:0] imem [64];
  logic [31:0] dmem [64];

  riscv_core core (.clk(clk), .rst(rst), .instr(instr), .pc(pc),
                   .dmem_addr(dmem_addr), .dmem_wdata(dmem_wdata),
                   .dmem_we(dmem_we), .dmem_rdata(dmem_rdata));

  assign instr = imem[pc[7:2]];
  assign dmem_rdata = dmem[dmem_addr[7:2]];

  always_ff @(posedge clk) begin
    if (dmem_we)
      dmem[dmem_addr[7:2]] <= dmem_wdata;
  end

  initial begin
    automatic int i = 0;
IMEM_INIT
    rst = 1;
    #1ns; clk = 1; #1ns; clk = 0;
    rst = 0;
    while (i < CYCLES) begin
      #1ns; clk = 1;
      #1ns; clk = 0;
      i++;
    end
    #1ns;
    assert (dmem[63] == 32'd1);
    assert (dmem[0] == 32'dEXP0);
    assert (dmem[1] == 32'd10);
    assert (dmem[2] == 32'd40);
    assert (dmem[3] == 32'd34);
    assert (dmem[4] == 32'd1);
    assert (dmem[5] == 32'dEXP5);
    $finish;
  end
endmodule
""".replace("IMEM_INIT", imem_init) \
   .replace("CYCLES", str(cycles)) \
   .replace("EXP0", str(expected[0])) \
   .replace("EXP5", str(expected[5]))
