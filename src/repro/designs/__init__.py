"""The evaluation design suite (Table 2 of the paper).

Ten designs "ranging from simple arithmetic primitives, over FIFO queues,
clock domain crossings, and data flow blocks, up to a full RISC-V
processor core", each written in the Moore SystemVerilog subset with a
self-checking testbench.

Usage::

    from repro.designs import DESIGNS, compile_design
    module = compile_design("fifo", cycles=100)
"""

from __future__ import annotations

from . import (
    cdc_gray, cdc_strobe, fifo, fir, gray, lfsr, lzc, riscv, rr_arbiter,
    sorter, stream_delayer,
)


class Design:
    """Metadata + source factory for one evaluation design.

    ``four_state=True`` marks a nine-valued variant: the same SystemVerilog
    source compiled with ``logic`` lowered to ``lN`` instead of ``iN``, so
    every signal and operation runs on the IEEE 1164 value representation.
    """

    def __init__(self, module, four_state=False, name=None):
        self.name = name or module.NAME
        self.paper_name = module.PAPER_NAME + (" (9v)" if four_state else "")
        self.paper_loc = module.PAPER_LOC
        self.paper_cycles = module.PAPER_CYCLES
        self.top = module.TOP
        self.four_state = four_state
        self._module = module

    def source(self, cycles=None):
        """The design + testbench SystemVerilog source text."""
        if cycles is None:
            return self._module.source()
        return self._module.source(cycles=cycles)

    @property
    def default_cycles(self):
        import inspect

        return inspect.signature(self._module.source).parameters[
            "cycles"].default

    def sv_loc(self, cycles=None):
        """Non-empty, non-comment source lines (the paper's LoC metric)."""
        lines = [ln.strip() for ln in self.source(cycles).splitlines()]
        return sum(1 for ln in lines
                   if ln and not ln.startswith("//"))

    def __repr__(self):
        return f"<Design {self.name} ({self.paper_name})>"


DESIGNS = {
    mod.NAME: Design(mod)
    for mod in (gray, fir, lfsr, lzc, fifo, cdc_gray, cdc_strobe,
                rr_arbiter, stream_delayer, riscv, sorter)
}

# Nine-valued variants of every suite design: identical SystemVerilog,
# compiled with four-state lowering, so the simulators exercise the packed
# IEEE 1164 value representation on real data paths — and, since the
# lowering pipeline and technology mapper understand ``lN``, so the
# behavioural → structural → netlist levels all run on nine-valued data.
FOUR_STATE_ORDER = ["gray_l", "fir_l", "lfsr_l", "lzc_l", "fifo_l",
                    "cdc_gray_l", "cdc_strobe_l", "rr_arbiter_l",
                    "stream_delayer_l", "riscv_l", "sorter_l"]
for _mod in (gray, fir, lfsr, lzc, fifo, cdc_gray, cdc_strobe, rr_arbiter,
             stream_delayer, riscv, sorter):
    DESIGNS[f"{_mod.NAME}_l"] = Design(_mod, four_state=True,
                                       name=f"{_mod.NAME}_l")
del _mod

# Table 2 presentation order; ``sorter`` (marked *) extends the paper's
# ten designs with a compute-bound stress row.
TABLE2_ORDER = ["gray", "fir", "lfsr", "lzc", "fifo", "cdc_gray",
                "cdc_strobe", "rr_arbiter", "stream_delayer", "riscv",
                "sorter"]

#: Every design the simulators must agree on: the paper's table plus the
#: nine-valued variants.
ALL_DESIGNS = TABLE2_ORDER + FOUR_STATE_ORDER

#: Designs whose synthesizable core lowers *completely* (every design
#: process becomes an entity; only the testbench stays behavioural), so
#: the design reaches the netlist level under the technology mapper.
#: Since the symbolic unroller and speculative TCFE flattened the
#: loop-heavy combinational cores (``lzc``/``rr_arbiter``/``riscv``),
#: this is the whole suite: all 22 designs.
NETLIST_DESIGNS = list(TABLE2_ORDER) + list(FOUR_STATE_ORDER)


def base_design_name(name):
    """The two-state sibling of a design name (identity if two-state)."""
    return name[:-2] if name.endswith("_l") else name


def expand_cycle_budgets(budgets):
    """Extend a per-design cycle-budget dict to the ``_l`` variants.

    Nine-valued variants run the same SystemVerilog, so every budget
    keyed by a two-state name applies verbatim to its ``_l`` sibling —
    tests and benchmarks share this helper instead of each re-deriving
    the suffix convention.
    """
    out = dict(budgets)
    out.update({f"{name}_l": cycles for name, cycles in budgets.items()
                if f"{name}_l" in DESIGNS})
    return out


def compile_design(name, cycles=None):
    """Compile one design (with testbench) to Behavioural LLHD."""
    from ..moore import compile_sv

    design = DESIGNS[name]
    return compile_sv(design.source(cycles), module_name=name,
                      four_state=design.four_state)


def simulate_design(name, cycles=None, backend="interp"):
    """Compile and simulate one design; returns the SimulationResult."""
    from ..sim import simulate

    design = DESIGNS[name]
    module = compile_design(name, cycles)
    return simulate(module, design.top, backend=backend)


#: Pipeline stages a design can reach, shallowest to deepest.  The first
#: three are transformation stages (every design passes them by
#: construction — they preserve semantics on any input); ``lower``
#: requires every design process to reach the structural level, and
#: ``netlist`` additionally requires the technology mapper to map every
#: lowered entity onto library cells.
STAGES = ("behavioural", "cleanup", "prepare", "lower", "netlist")


def stage_reach(name, cycles=4):
    """Which pipeline stages ``name`` reaches.

    Returns ``(stages, rejections)``: a dict ``stage -> bool`` over
    :data:`STAGES` and the design-process rejection list (empty when the
    design lowers completely).
    """
    from ..interop import netlist_design
    from ..interop.techmap import TechmapError
    from ..passes.pipeline import lower_to_structural

    module = compile_design(name, cycles=cycles)
    report = lower_to_structural(module, strict=False, verify=False)
    rejections = report.design_rejections()
    reach = {"behavioural": True, "cleanup": True, "prepare": True,
             "lower": not rejections, "netlist": False}
    if not rejections:
        try:
            netlist_design(module)
        except TechmapError:
            pass
        else:
            reach["netlist"] = True
    return reach, rejections


def deepest_level(name, cycles=4):
    """The deepest pipeline stage ``name`` reaches (see :data:`STAGES`)."""
    reach, _ = stage_reach(name, cycles=cycles)
    return [s for s in STAGES if reach[s]][-1]


def netlist_engine_report(name, cycles=4):
    """Which simulation engines the design's netlist level supports.

    Returns ``(engines, notes)``: the supported engine names in
    :data:`repro.sim.BACKENDS` order, and human-readable notes — the
    levelized-ineligibility reason when that engine is absent, or its
    per-cell event-driven fallbacks and combinational-cycle diagnoses
    when it is present but degraded.  The event-driven engines simulate
    any well-formed module, so only the levelized engine needs probing
    (in analysis mode: absorption + levelization without code
    generation).  Raises if the design does not reach the netlist level
    — gate on :func:`stage_reach` first.
    """
    from ..interop import netlist_design
    from ..passes.pipeline import lower_to_structural
    from ..sim import BACKENDS, SimulationError
    from ..sim.levelize import elaborate_levelized

    module = compile_design(name, cycles=cycles)
    lower_to_structural(module, strict=False, verify=False)
    linked = netlist_design(module)
    engines = [e for e in BACKENDS if e != "levelized"]
    notes = []
    try:
        design = elaborate_levelized(linked, DESIGNS[name].top,
                                     analysis=True)
    except SimulationError as exc:
        notes.append(f"levelized ineligible: {exc}")
        return engines, notes
    engines.append("levelized")
    report = design.report
    for path, why in report.get("fallbacks", []):
        notes.append(f"levelized event-driven fallback {path}: {why}")
    for members in report.get("cycles", []):
        notes.append("levelized iterative settle (combinational "
                     f"cycle): {', '.join(members[:4])}"
                     + (" ..." if len(members) > 4 else ""))
    return engines, notes


__all__ = ["ALL_DESIGNS", "DESIGNS", "Design", "FOUR_STATE_ORDER",
           "NETLIST_DESIGNS", "STAGES", "TABLE2_ORDER",
           "base_design_name", "compile_design", "deepest_level",
           "expand_cycle_budgets", "netlist_engine_report",
           "simulate_design", "stage_reach"]
