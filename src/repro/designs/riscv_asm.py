"""A minimal RV32I assembler.

Used to build the instruction-memory images for the RISC-V core design
(the paper evaluates on a full RISC-V processor; see DESIGN.md
substitution 4).  Supports the instruction subset the core implements:

* R-type: add, sub, and, or, xor, sll, srl, slt, sltu
* I-type: addi, andi, ori, xori, slti, slli, srli, jalr, lw
* S-type: sw
* B-type: beq, bne, blt, bge, bltu
* U/J:    lui, jal

Labels are supported (``loop:`` definitions, branch/jump references).
"""

from __future__ import annotations

REG_NAMES = {f"x{i}": i for i in range(32)}
REG_NAMES.update({
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4, "t0": 5, "t1": 6,
    "t2": 7, "s0": 8, "fp": 8, "s1": 9, "a0": 10, "a1": 11, "a2": 12,
    "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17, "s2": 18,
    "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24,
    "s9": 25, "s10": 26, "s11": 27, "t3": 28, "t4": 29, "t5": 30,
    "t6": 31,
})

_R_FUNCT = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "or": (0b110, 0b0000000),
    "and": (0b111, 0b0000000),
}
_I_FUNCT = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011, "xori": 0b100,
    "ori": 0b110, "andi": 0b111,
}
_B_FUNCT = {
    "beq": 0b000, "bne": 0b001, "blt": 0b100, "bge": 0b101,
    "bltu": 0b110, "bgeu": 0b111,
}


class AsmError(Exception):
    """Raised on malformed assembly input."""


def _reg(token):
    name = token.strip().lower()
    if name not in REG_NAMES:
        raise AsmError(f"unknown register {token!r}")
    return REG_NAMES[name]


def _imm(token, labels, pc):
    token = token.strip()
    if token in labels:
        return labels[token] - pc
    try:
        return int(token, 0)
    except ValueError as error:
        raise AsmError(f"bad immediate {token!r}") from error


def _encode_r(funct3, funct7, rd, rs1, rs2):
    return (funct7 << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12
            | rd << 7 | 0b0110011)


def _encode_i(opcode, funct3, rd, rs1, imm):
    return ((imm & 0xFFF) << 20 | rs1 << 15 | funct3 << 12 | rd << 7
            | opcode)


def _encode_s(funct3, rs1, rs2, imm):
    return (((imm >> 5) & 0x7F) << 25 | rs2 << 20 | rs1 << 15
            | funct3 << 12 | (imm & 0x1F) << 7 | 0b0100011)


def _encode_b(funct3, rs1, rs2, imm):
    return (((imm >> 12) & 1) << 31 | ((imm >> 5) & 0x3F) << 25
            | rs2 << 20 | rs1 << 15 | funct3 << 12
            | ((imm >> 1) & 0xF) << 8 | ((imm >> 11) & 1) << 7
            | 0b1100011)


def _encode_u(opcode, rd, imm):
    return (imm & 0xFFFFF000) | rd << 7 | opcode


def _encode_j(rd, imm):
    return (((imm >> 20) & 1) << 31 | ((imm >> 1) & 0x3FF) << 21
            | ((imm >> 11) & 1) << 20 | ((imm >> 12) & 0xFF) << 12
            | rd << 7 | 0b1101111)


def assemble(text):
    """Assemble RV32I source text into a list of 32-bit words."""
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)
    # Pass 1: label addresses.
    labels = {}
    pc = 0
    program = []
    for line in lines:
        while ":" in line:
            label, _, line = line.partition(":")
            labels[label.strip()] = pc
            line = line.strip()
        if line:
            program.append((pc, line))
            pc += 4
    # Pass 2: encoding.
    words = []
    for pc, line in program:
        words.append(_encode_line(line, labels, pc))
    return words


def _encode_line(line, labels, pc):
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.strip().lower()
    args = [a.strip() for a in rest.split(",")] if rest.strip() else []
    if mnemonic == "nop":
        return _encode_i(0b0010011, 0, 0, 0, 0)
    if mnemonic in _R_FUNCT:
        funct3, funct7 = _R_FUNCT[mnemonic]
        return _encode_r(funct3, funct7, _reg(args[0]), _reg(args[1]),
                         _reg(args[2]))
    if mnemonic in _I_FUNCT:
        return _encode_i(0b0010011, _I_FUNCT[mnemonic], _reg(args[0]),
                         _reg(args[1]), _imm(args[2], labels, pc))
    if mnemonic in ("slli", "srli"):
        funct3 = 0b001 if mnemonic == "slli" else 0b101
        shamt = _imm(args[2], labels, pc) & 0x1F
        return _encode_i(0b0010011, funct3, _reg(args[0]), _reg(args[1]),
                         shamt)
    if mnemonic == "lw":
        rd = _reg(args[0])
        imm, rs1 = _parse_mem(args[1], labels, pc)
        return _encode_i(0b0000011, 0b010, rd, rs1, imm)
    if mnemonic == "sw":
        rs2 = _reg(args[0])
        imm, rs1 = _parse_mem(args[1], labels, pc)
        return _encode_s(0b010, rs1, rs2, imm)
    if mnemonic in _B_FUNCT:
        return _encode_b(_B_FUNCT[mnemonic], _reg(args[0]), _reg(args[1]),
                         _imm(args[2], labels, pc))
    if mnemonic == "lui":
        return _encode_u(0b0110111, _reg(args[0]),
                         _imm(args[1], labels, pc) << 12)
    if mnemonic == "jal":
        if len(args) == 1:
            args = ["ra", args[0]]
        return _encode_j(_reg(args[0]), _imm(args[1], labels, pc))
    if mnemonic == "jalr":
        if len(args) == 1:
            args = ["ra", args[0], "0"]
        return _encode_i(0b1100111, 0b000, _reg(args[0]), _reg(args[1]),
                         _imm(args[2], labels, pc))
    if mnemonic == "li":
        # Pseudo: small immediates only.
        value = _imm(args[1], labels, pc)
        if not -2048 <= value < 2048:
            raise AsmError("li supports 12-bit immediates only")
        return _encode_i(0b0010011, 0b000, _reg(args[0]), 0, value)
    if mnemonic == "mv":
        return _encode_i(0b0010011, 0b000, _reg(args[0]), _reg(args[1]), 0)
    if mnemonic == "j":
        return _encode_j(0, _imm(args[0], labels, pc))
    raise AsmError(f"unknown mnemonic {mnemonic!r}")


def _parse_mem(token, labels, pc):
    """Parse ``imm(reg)``."""
    if "(" not in token or not token.endswith(")"):
        raise AsmError(f"bad memory operand {token!r}")
    imm_text, _, reg_text = token[:-1].partition("(")
    imm = _imm(imm_text or "0", labels, pc)
    return imm, _reg(reg_text)


def disassemble_word(word):
    """Best-effort single-instruction disassembly (for debugging)."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    if opcode == 0b0110011:
        funct7 = word >> 25
        for name, (f3, f7) in _R_FUNCT.items():
            if f3 == funct3 and f7 == funct7:
                return f"{name} x{rd}, x{rs1}, x{rs2}"
    if opcode == 0b0010011:
        imm = _sign_extend(word >> 20, 12)
        for name, f3 in _I_FUNCT.items():
            if f3 == funct3:
                return f"{name} x{rd}, x{rs1}, {imm}"
        if funct3 == 0b001:
            return f"slli x{rd}, x{rs1}, {rs2}"
        if funct3 == 0b101:
            return f"srli x{rd}, x{rs1}, {rs2}"
    if opcode == 0b1101111:
        return f"jal x{rd}, ..."
    return f".word 0x{word:08x}"


def _sign_extend(value, bits):
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value
