"""Leading-zero counter — Table 2 (52 LoC SV, 1M cycles in the paper).

A 32-bit combinational priority scan; the testbench sweeps patterns and
compares against a bit-loop reference function.
"""

NAME = "lzc"
PAPER_NAME = "Leading Zero C."
PAPER_LOC = 52
PAPER_CYCLES = 1_000_000
TOP = "lzc_tb"


def source(cycles=200):
    return """
module lzc (input logic [31:0] x, output logic [5:0] count,
            output logic empty);
  always_comb begin
    automatic int i = 0;
    automatic int done = 0;
    count = 6'd0;
    for (i = 31; i >= 0; i = i - 1) begin
      if (!done) begin
        if (x[i])
          done = 1;
        else
          count = count + 6'd1;
      end
    end
  end
  assign empty = (x == 32'd0);
endmodule

module lzc_tb;
  logic [31:0] x;
  logic [5:0] count;
  logic empty;

  lzc dut (.x(x), .count(count), .empty(empty));

  function [5:0] reference(input [31:0] v);
    automatic int n = 0;
    automatic int i = 0;
    automatic int done = 0;
    for (i = 31; i >= 0; i = i - 1) begin
      if (!done) begin
        if (v[i])
          done = 1;
        else
          n = n + 1;
      end
    end
    reference = n[5:0];
  endfunction

  initial begin
    automatic int i = 0;
    automatic logic [31:0] pattern = 32'h8000_0001;
    x = 32'd0;
    #1ns;
    assert (empty == 1'b1);
    assert (count == 6'd32);
    while (i < CYCLES) begin
      pattern = (pattern >> 1) ^ ((pattern & 32'd1) << 31) ^ (i * 32'd2654435761);
      x = pattern;
      #1ns;
      assert (count == reference(pattern));
      assert (empty == (pattern == 32'd0));
      i++;
    end
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
