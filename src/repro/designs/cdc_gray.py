"""Clock-domain crossing with Gray-coded pointer — Table 2 (108 LoC SV).

A counter in a fast source domain is Gray-encoded, synchronized through a
two-flop synchronizer into a slower destination domain, and decoded back.
The testbench runs both clocks at different rates and asserts that the
destination view is monotonic and never ahead of the source.
"""

NAME = "cdc_gray"
PAPER_NAME = "CDC (Gray)"
PAPER_LOC = 108
PAPER_CYCLES = 1_000_000
TOP = "cdc_gray_tb"


def source(cycles=120):
    return """
module bin2gray (input logic [7:0] b, output logic [7:0] g);
  assign g = b ^ (b >> 1);
endmodule

module gray2bin (input logic [7:0] g, output logic [7:0] b);
  always_comb begin
    automatic logic [7:0] acc = g;
    acc = acc ^ (acc >> 1);
    acc = acc ^ (acc >> 2);
    acc = acc ^ (acc >> 4);
    b = acc;
  end
endmodule

module sync2 (input clk, input logic [7:0] d, output logic [7:0] q);
  logic [7:0] meta;
  always_ff @(posedge clk) begin
    meta <= d;
    q <= meta;
  end
endmodule

module cdc_gray (input src_clk, input dst_clk, input rst,
                 output logic [7:0] src_count,
                 output logic [7:0] dst_view);
  logic [7:0] gray_src, gray_sync, dst_bin;

  always_ff @(posedge src_clk) begin
    if (rst)
      src_count <= 8'd0;
    else
      src_count <= src_count + 8'd1;
  end

  bin2gray enc (.b(src_count), .g(gray_src));
  sync2 sync (.clk(dst_clk), .d(gray_src), .q(gray_sync));
  gray2bin dec (.g(gray_sync), .b(dst_bin));

  always_ff @(posedge dst_clk) begin
    dst_view <= dst_bin;
  end
endmodule

module cdc_gray_tb;
  logic src_clk, dst_clk, rst;
  logic [7:0] src_count, dst_view;

  cdc_gray dut (.src_clk(src_clk), .dst_clk(dst_clk), .rst(rst),
                .src_count(src_count), .dst_view(dst_view));

  initial begin
    automatic int i = 0;
    while (i < CYCLES) begin
      #2ns; src_clk = 1;
      #2ns; src_clk = 0;
      i++;
    end
  end

  initial begin
    automatic int j = 0;
    automatic int prev = -1;
    automatic int view = 0;
    rst = 1;
    #2ns; dst_clk = 1;
    #2ns; dst_clk = 0;
    rst = 0;
    while (j < (CYCLES / 3)) begin
      #5ns; dst_clk = 1;
      #5ns; dst_clk = 0;
      #1ns;
      view = dst_view;
      if (prev >= 0) begin
        // The destination view may lag but only moves forward (modulo
        // the 8-bit wrap, which the cycle budget avoids).
        assert (view >= prev || (prev > 200 && view < 50));
      end
      prev = view;
      j++;
    end
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
