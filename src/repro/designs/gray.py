"""Gray encoder/decoder — the smallest design of Table 2 (17 LoC SV).

A binary→Gray encoder and Gray→binary decoder wired back-to-back; the
testbench sweeps a counter through the encoder+decoder and asserts the
round trip is the identity and consecutive Gray codes differ in one bit.
"""

NAME = "gray"
PAPER_NAME = "Gray Enc./Dec."
PAPER_LOC = 17
PAPER_CYCLES = 12_600_000
TOP = "gray_tb"


def source(cycles=256):
    return """
module gray_encode #(parameter int W = 8)
                    (input logic [W-1:0] binary,
                     output logic [W-1:0] gray);
  assign gray = binary ^ (binary >> 1);
endmodule

module gray_decode #(parameter int W = 8)
                    (input logic [W-1:0] gray,
                     output logic [W-1:0] binary);
  always_comb begin
    automatic logic [W-1:0] acc = gray;
    acc = acc ^ (acc >> 1);
    acc = acc ^ (acc >> 2);
    acc = acc ^ (acc >> 4);
    binary = acc;
  end
endmodule

module gray_tb;
  logic clk;
  logic [7:0] value, gray, decoded, prev_gray;

  gray_encode enc (.binary(value), .gray(gray));
  gray_decode dec (.gray(gray), .binary(decoded));

  function [3:0] popcount(input [7:0] x);
    automatic int n = 0;
    automatic int i = 0;
    for (i = 0; i < 8; i++) begin
      n = n + x[i];
    end
    popcount = n[3:0];
  endfunction

  initial begin
    automatic int i = 0;
    value = 8'd0;
    prev_gray = 8'd0;
    while (i < CYCLES) begin
      #1ns;
      clk = 1;
      #1ns;
      clk = 0;
      assert (decoded == value);
      if (i > 0)
        assert (popcount(gray ^ prev_gray) == 4'd1);
      prev_gray = gray;
      value = value + 8'd1;
      i++;
    end
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
