"""LFSR — Table 2 (30 LoC SV, 10M cycles in the paper).

A 16-bit Fibonacci LFSR (taps 16,15,13,4 — maximal length); the testbench
clocks it and checks each state against a software model, plus the
never-zero invariant.
"""

NAME = "lfsr"
PAPER_NAME = "LFSR"
PAPER_LOC = 30
PAPER_CYCLES = 10_000_000
TOP = "lfsr_tb"


def source(cycles=500):
    return """
module lfsr (input clk, input rst, output logic [15:0] state);
  logic feedback;
  assign feedback = state[15] ^ state[14] ^ state[12] ^ state[3];
  always_ff @(posedge clk) begin
    if (rst)
      state <= 16'hACE1;
    else
      state <= {state[14:0], feedback};
  end
endmodule

module lfsr_tb;
  logic clk, rst;
  logic [15:0] state;

  lfsr dut (.clk(clk), .rst(rst), .state(state));

  function [15:0] next_state(input [15:0] s);
    automatic logic fb = s[15] ^ s[14] ^ s[12] ^ s[3];
    next_state = {s[14:0], fb};
  endfunction

  initial begin
    automatic int i = 0;
    automatic logic [15:0] model = 16'hACE1;
    rst = 1;
    #1ns; clk = 1;
    #1ns; clk = 0;
    rst = 0;
    #1ns;
    assert (state == 16'hACE1);
    while (i < CYCLES) begin
      #1ns; clk = 1;
      #1ns; clk = 0;
      model = next_state(model);
      #1ns;
      assert (state == model);
      assert (state != 16'd0);
      i++;
    end
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
