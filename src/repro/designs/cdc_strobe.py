"""Clock-domain crossing with toggle strobe — Table 2 (122 LoC SV).

A pulse in the source domain toggles a level; the level crosses through a
two-flop synchronizer; an edge detector in the destination domain
recreates the pulse.  The testbench counts pulses on both sides and
asserts none are lost (source pulses are spaced far enough apart).
"""

NAME = "cdc_strobe"
PAPER_NAME = "CDC (strobe)"
PAPER_LOC = 122
PAPER_CYCLES = 3_500_000
TOP = "cdc_strobe_tb"


def source(cycles=100):
    return """
module strobe_tx (input clk, input pulse, output logic level);
  always_ff @(posedge clk) begin
    if (pulse)
      level <= ~level;
  end
endmodule

module strobe_rx (input clk, input level, output logic pulse);
  logic s0, s1, s2;
  always_ff @(posedge clk) begin
    s0 <= level;
    s1 <= s0;
    s2 <= s1;
  end
  assign pulse = s1 ^ s2;
endmodule

module cdc_strobe (input src_clk, input dst_clk,
                   input send, output logic received);
  logic level;
  strobe_tx tx (.clk(src_clk), .pulse(send), .level(level));
  strobe_rx rx (.clk(dst_clk), .level(level), .pulse(received));
endmodule

module cdc_strobe_tb;
  logic src_clk, dst_clk, send;
  logic received;

  cdc_strobe dut (.src_clk(src_clk), .dst_clk(dst_clk),
                  .send(send), .received(received));

  logic [15:0] sent_count, recv_count;

  always_ff @(posedge dst_clk) begin
    if (received)
      recv_count <= recv_count + 16'd1;
  end

  initial begin
    automatic int j = 0;
    // Each send occupies 32ns of source time; the 6ns destination clock
    // needs ~6 cycles per send plus drain margin.
    while (j < (CYCLES * 6) + 20) begin
      #3ns; dst_clk = 1;
      #3ns; dst_clk = 0;
      j++;
    end
  end

  initial begin
    automatic int i = 0;
    send = 0; sent_count = 0; recv_count = 0;
    while (i < CYCLES) begin
      // One send pulse, then enough idle source cycles for the level to
      // cross the synchronizer.
      send = 1;
      #4ns; src_clk = 1;
      #4ns; src_clk = 0;
      send = 0;
      sent_count = sent_count + 16'd1;
      #4ns; src_clk = 1;
      #4ns; src_clk = 0;
      #4ns; src_clk = 1;
      #4ns; src_clk = 0;
      #4ns; src_clk = 1;
      #4ns; src_clk = 0;
      i++;
    end
    // Drain: a few more destination cycles, then compare counters.
    #40ns;
    assert (recv_count == sent_count
            || (recv_count + 16'd1) == sent_count);
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
