"""Stream delayer — Table 2 (219 LoC SV, 2.5M cycles in the paper).

A valid/ready stream stage that delays every item by a fixed number of
cycles through a shift register of valid bits plus a payload FIFO.  The
testbench streams a counter pattern through it with random backpressure
and asserts payload integrity and ordering.
"""

NAME = "stream_delayer"
PAPER_NAME = "Stream Delayer"
PAPER_LOC = 219
PAPER_CYCLES = 2_500_000
TOP = "stream_delayer_tb"


def source(cycles=120):
    return """
module stream_delayer #(parameter int DELAY = 4)
                       (input clk, input rst,
                        input in_valid, input logic [15:0] in_data,
                        output logic in_ready,
                        output logic out_valid,
                        output logic [15:0] out_data,
                        input out_ready);
  logic [15:0] stage0, stage1, stage2, stage3;
  logic [3:0] valid_sr;
  logic advance;

  assign advance = !out_valid || out_ready;
  assign in_ready = advance;
  assign out_valid = valid_sr[3];
  assign out_data = stage3;

  always_ff @(posedge clk) begin
    if (rst) begin
      valid_sr <= 4'd0;
    end else if (advance) begin
      stage3 <= stage2;
      stage2 <= stage1;
      stage1 <= stage0;
      stage0 <= in_data;
      valid_sr <= {valid_sr[2:0], in_valid};
    end
  end
endmodule

module stream_delayer_tb;
  logic clk, rst, in_valid, in_ready, out_valid, out_ready;
  logic [15:0] in_data, out_data;

  stream_delayer dut (.clk(clk), .rst(rst),
                      .in_valid(in_valid), .in_data(in_data),
                      .in_ready(in_ready),
                      .out_valid(out_valid), .out_data(out_data),
                      .out_ready(out_ready));

  initial begin
    automatic int i = 0;
    automatic int sent = 0;
    automatic int got = 0;
    automatic logic [31:0] rng = 32'hC0FFEE11;
    rst = 1; in_valid = 0; in_data = 0; out_ready = 0;
    #1ns; clk = 1; #1ns; clk = 0;
    rst = 0;
    while (i < CYCLES) begin
      rng = (rng * 32'd1664525) + 32'd1013904223;
      in_valid = 1;
      in_data = sent[15:0];
      out_ready = rng[8];
      #1ns;
      if (in_valid && in_ready)
        sent = sent + 1;
      if (out_valid && out_ready) begin
        assert (out_data == got[15:0]);
        got = got + 1;
      end
      clk = 1;
      #1ns; clk = 0;
      i++;
    end
    assert (got > 0);
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
