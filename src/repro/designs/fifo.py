"""FIFO queue — Table 2 (102 LoC SV, 1M cycles in the paper).

A depth-8 synchronous FIFO with circular pointers and full/empty flags;
the testbench pushes and pops a pseudo-random pattern and checks FIFO
ordering and flag behaviour against a software queue model held in an
array.
"""

NAME = "fifo"
PAPER_NAME = "FIFO Queue"
PAPER_LOC = 102
PAPER_CYCLES = 1_000_000
TOP = "fifo_tb"


def source(cycles=150):
    return """
module fifo #(parameter int DEPTH = 8, parameter int W = 16)
             (input clk, input rst,
              input push, input logic [W-1:0] wdata,
              input pop, output logic [W-1:0] rdata,
              output logic full, output logic empty);
  logic [W-1:0] mem [8];
  logic [3:0] wptr, rptr;
  logic [3:0] count;

  assign full = (count == 4'd8);
  assign empty = (count == 4'd0);
  assign rdata = mem[rptr[2:0]];

  always_ff @(posedge clk) begin
    if (rst) begin
      wptr <= 4'd0;
      rptr <= 4'd0;
      count <= 4'd0;
    end else begin
      if (push && !full) begin
        mem[wptr[2:0]] <= wdata;
        wptr <= wptr + 4'd1;
      end
      if (pop && !empty) begin
        rptr <= rptr + 4'd1;
      end
      if ((push && !full) && !(pop && !empty))
        count <= count + 4'd1;
      else if (!(push && !full) && (pop && !empty))
        count <= count - 4'd1;
    end
  end
endmodule

module fifo_tb;
  logic clk, rst, push, pop;
  logic [15:0] wdata, rdata;
  logic full, empty;

  fifo dut (.clk(clk), .rst(rst), .push(push), .wdata(wdata),
            .pop(pop), .rdata(rdata), .full(full), .empty(empty));

  logic [15:0] model [64];

  initial begin
    automatic int i = 0;
    automatic int head = 0;
    automatic int tail = 0;
    automatic int occupancy = 0;
    automatic logic [31:0] rng = 32'hDEADBEEF;
    rst = 1; push = 0; pop = 0; wdata = 0;
    #1ns; clk = 1; #1ns; clk = 0;
    rst = 0;
    while (i < CYCLES) begin
      rng = (rng << 1) ^ ((rng >> 31) ? 32'h04C11DB7 : 32'd0) ^ i;
      push = rng[0];
      pop = rng[1];
      wdata = rng[31:16];
      #1ns;
      if (push && !full) begin
        model[tail & 63] = wdata;
        tail = tail + 1;
        occupancy = occupancy + 1;
      end
      if (pop && !empty) begin
        assert (rdata == model[head & 63]);
        head = head + 1;
        occupancy = occupancy - 1;
      end
      clk = 1;
      #1ns;
      clk = 0;
      #1ns;
      assert (empty == (occupancy == 0));
      assert (full == (occupancy == 8));
      i++;
    end
    $finish;
  end
endmodule
""".replace("CYCLES", str(cycles))
