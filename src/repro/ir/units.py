"""LLHD design units and modules.

The three unit kinds differ in execution paradigm and timing model
(Table 1 of the paper):

=========  ============  =========  =================================
Unit       Execution     Timing     Use
=========  ============  =========  =================================
Function   control flow  immediate  user-defined SSA mapping
Process    control flow  timed      behavioural circuit description
Entity     data flow     timed      structural circuit description
=========  ============  =========  =================================

A :class:`Module` is a single LLHD source text: an ordered collection of
units plus declarations of externally defined units (resolved by the
linker).
"""

from __future__ import annotations

from .types import signal_type, void_type
from .values import Argument, Block


class Unit:
    """Common base of functions, processes, and entities."""

    kind = "unit"

    def __init__(self, name):
        self.name = name
        self.module = None

    @property
    def is_function(self):
        return self.kind == "func"

    @property
    def is_process(self):
        return self.kind == "proc"

    @property
    def is_entity(self):
        return self.kind == "entity"

    def __repr__(self):
        return f"<{self.kind} @{self.name}>"


class ControlFlowUnit(Unit):
    """A unit whose body is a CFG of basic blocks (function or process)."""

    def __init__(self, name):
        super().__init__(name)
        self.blocks = []

    @property
    def entry(self):
        return self.blocks[0] if self.blocks else None

    def create_block(self, name=None, before=None):
        """Create a new block, appended or inserted before another block."""
        block = Block(name)
        block.parent = self
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        return block

    def remove_block(self, block):
        """Unlink a block; its instructions must already be cleared."""
        self.blocks.remove(block)
        block.parent = None

    def instructions(self):
        """Iterate all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions


class Function(ControlFlowUnit):
    """``func @name (T %a, ...) T_ret { ... }`` — immediate execution.

    Functions map input values to at most one return value; they may not
    interact with signals or suspend, and exist only between time steps.
    """

    kind = "func"

    def __init__(self, name, arg_types=(), arg_names=(), return_type=None):
        super().__init__(name)
        self.return_type = return_type if return_type is not None else void_type()
        self.args = []
        for i, ty in enumerate(arg_types):
            arg_name = arg_names[i] if i < len(arg_names) else f"arg{i}"
            self.args.append(Argument(ty, arg_name, self, "in"))


class Process(ControlFlowUnit):
    """``proc @name (ins) -> (outs) { ... }`` — timed control flow.

    Inputs and outputs must be of signal type.  Processes persist for the
    lifetime of the design and communicate exclusively through probing and
    driving their signals.
    """

    kind = "proc"

    def __init__(self, name, input_types=(), input_names=(),
                 output_types=(), output_names=()):
        super().__init__(name)
        self.inputs = []
        self.outputs = []
        for i, ty in enumerate(input_types):
            if not ty.is_signal:
                raise TypeError(f"process input must be a signal, got {ty}")
            nm = input_names[i] if i < len(input_names) else f"in{i}"
            self.inputs.append(Argument(ty, nm, self, "in"))
        for i, ty in enumerate(output_types):
            if not ty.is_signal:
                raise TypeError(f"process output must be a signal, got {ty}")
            nm = output_names[i] if i < len(output_names) else f"out{i}"
            self.outputs.append(Argument(ty, nm, self, "out"))

    @property
    def args(self):
        return self.inputs + self.outputs


class Entity(Unit):
    """``entity @name (ins) -> (outs) { ... }`` — timed data flow.

    The body is a set of instructions forming a data-flow graph: all are
    executed once at initialization and re-executed whenever one of their
    inputs changes.  Entities build hierarchy via ``inst``.
    """

    kind = "entity"

    def __init__(self, name, input_types=(), input_names=(),
                 output_types=(), output_names=()):
        super().__init__(name)
        self.inputs = []
        self.outputs = []
        for i, ty in enumerate(input_types):
            if not ty.is_signal:
                raise TypeError(f"entity input must be a signal, got {ty}")
            nm = input_names[i] if i < len(input_names) else f"in{i}"
            self.inputs.append(Argument(ty, nm, self, "in"))
        for i, ty in enumerate(output_types):
            if not ty.is_signal:
                raise TypeError(f"entity output must be a signal, got {ty}")
            nm = output_names[i] if i < len(output_names) else f"out{i}"
            self.outputs.append(Argument(ty, nm, self, "out"))
        self.body = Block("body")
        self.body.parent = self

    @property
    def args(self):
        return self.inputs + self.outputs

    def instructions(self):
        yield from self.body.instructions

    # Entities reuse block-based helpers through the single implicit body.
    @property
    def blocks(self):
        return [self.body]


class UnitDecl:
    """A declaration of an externally defined unit (for linking).

    ``declare @name (T1, T2) -> (T3)`` — carries only the signature.
    """

    def __init__(self, name, kind, input_types=(), output_types=(),
                 return_type=None):
        self.name = name
        self.kind = kind  # "func" | "proc" | "entity"
        self.input_types = tuple(input_types)
        self.output_types = tuple(output_types)
        self.return_type = return_type

    def __repr__(self):
        return f"<declare @{self.name}>"


class Module:
    """A single LLHD source text: an ordered collection of units.

    Only global names (``@foo``) are visible across modules; linking
    resolves declarations in one module against definitions in another
    (see :mod:`repro.ir.linker`).
    """

    def __init__(self, name="module"):
        self.name = name
        self.units = {}
        self.declarations = {}

    def add(self, unit):
        """Add a unit definition; replaces a same-named declaration."""
        if unit.name in self.units:
            raise ValueError(f"duplicate unit @{unit.name}")
        unit.module = self
        self.units[unit.name] = unit
        self.declarations.pop(unit.name, None)
        return unit

    def declare(self, decl):
        """Add an external declaration unless a definition already exists."""
        if decl.name not in self.units:
            self.declarations[decl.name] = decl
        return decl

    def get(self, name):
        """Return the unit or declaration named ``name``, or None."""
        return self.units.get(name) or self.declarations.get(name)

    def __contains__(self, name):
        return name in self.units or name in self.declarations

    def __iter__(self):
        return iter(self.units.values())

    def functions(self):
        return [u for u in self if u.is_function]

    def processes(self):
        return [u for u in self if u.is_process]

    def entities(self):
        return [u for u in self if u.is_entity]

    def remove(self, name):
        """Remove a unit definition by name."""
        unit = self.units.pop(name)
        unit.module = None
        return unit

    def __repr__(self):
        return f"<Module {self.name!r} with {len(self.units)} units>"


def entity_signature(unit):
    """Return (input_types, output_types) for a process/entity or decl."""
    if isinstance(unit, UnitDecl):
        return unit.input_types, unit.output_types
    return ([a.type for a in unit.inputs], [a.type for a in unit.outputs])


def make_signal_types(element_types):
    """Convenience: wrap each element type into a signal type."""
    return [signal_type(t) for t in element_types]
