"""Human-readable text representation of LLHD IR.

The syntax follows the paper's figures (Figure 2 and Figure 5): one unit per
top-level item, block labels terminated by ``:``, instructions indented two
spaces, and all instructions carrying enough type annotations to determine
every operand type.  The printer and :mod:`repro.ir.parser` round-trip:
``parse(print(module))`` reproduces an equivalent module (property-tested).
"""

from __future__ import annotations

import io

from .ninevalued import LogicVec
from .values import Block, TimeValue


class _Namer:
    """Assigns stable, unique local names (%foo, %foo1, %42) within a unit."""

    def __init__(self):
        self.names = {}
        self.taken = set()
        self.counter = 0

    def name_of(self, value):
        name = self.names.get(id(value))
        if name is not None:
            return name
        base = value.name
        if base is None:
            while str(self.counter) in self.taken:
                self.counter += 1
            name = str(self.counter)
            self.counter += 1
        else:
            name = base
            suffix = 0
            while name in self.taken:
                suffix += 1
                name = f"{base}{suffix}"
        self.taken.add(name)
        self.names[id(value)] = name
        return name


def print_module(module):
    """Render a whole module as LLHD assembly text."""
    out = io.StringIO()
    first = True
    for decl in module.declarations.values():
        if not first:
            out.write("\n")
        first = False
        _print_declaration(out, decl)
    for unit in module:
        if not first:
            out.write("\n")
        first = False
        print_unit(unit, out)
    return out.getvalue()


def print_unit(unit, out=None):
    """Render one unit as LLHD assembly text."""
    own = out is None
    if own:
        out = io.StringIO()
    namer = _Namer()
    if unit.is_function:
        args = ", ".join(
            f"{a.type} %{namer.name_of(a)}" for a in unit.args)
        out.write(f"func @{unit.name} ({args}) {unit.return_type} {{\n")
        _print_blocks(out, unit, namer)
    elif unit.is_process:
        ins = ", ".join(f"{a.type} %{namer.name_of(a)}" for a in unit.inputs)
        outs = ", ".join(f"{a.type} %{namer.name_of(a)}" for a in unit.outputs)
        out.write(f"proc @{unit.name} ({ins}) -> ({outs}) {{\n")
        _print_blocks(out, unit, namer)
    else:
        ins = ", ".join(f"{a.type} %{namer.name_of(a)}" for a in unit.inputs)
        outs = ", ".join(f"{a.type} %{namer.name_of(a)}" for a in unit.outputs)
        out.write(f"entity @{unit.name} ({ins}) -> ({outs}) {{\n")
        for inst in unit.body:
            out.write(f"  {format_instruction(inst, namer)}\n")
    out.write("}\n")
    if own:
        return out.getvalue()
    return None


def _print_declaration(out, decl):
    ins = ", ".join(str(t) for t in decl.input_types)
    if decl.kind == "func":
        ret = decl.return_type
        out.write(f"declare func @{decl.name} ({ins}) {ret}\n")
    else:
        outs = ", ".join(str(t) for t in decl.output_types)
        out.write(f"declare {decl.kind} @{decl.name} ({ins}) -> ({outs})\n")


def _print_blocks(out, unit, namer):
    # Pre-name blocks so forward branch references are stable.
    for block in unit.blocks:
        namer.name_of(block)
    for block in unit.blocks:
        out.write(f"{namer.name_of(block)}:\n")
        for inst in block:
            out.write(f"  {format_instruction(inst, namer)}\n")


def _const_text(value):
    if isinstance(value, TimeValue):
        return f"time {value}"
    if isinstance(value, LogicVec):
        return f'"{value.bits}"'
    return str(value)


def format_instruction(inst, namer=None):
    """Render a single instruction (used by the printer and error messages)."""
    if namer is None:
        namer = _Namer()
    n = lambda v: f"%{namer.name_of(v)}"
    op = inst.opcode
    ops = inst.operands

    def lhs():
        return f"{n(inst)} = "

    if op == "const":
        value = inst.attrs["value"]
        if inst.type.is_time:
            return f"{lhs()}const {_const_text(value)}"
        return f"{lhs()}const {inst.type} {_const_text(value)}"
    if op in ("add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
              "srem", "and", "or", "xor", "shl", "shr", "eq", "neq", "ult",
              "ugt", "ule", "uge", "slt", "sgt", "sle", "sge"):
        return f"{lhs()}{op} {ops[0].type} {n(ops[0])}, {n(ops[1])}"
    if op in ("not", "neg"):
        return f"{lhs()}{op} {ops[0].type} {n(ops[0])}"
    if op in ("zext", "sext", "trunc"):
        return f"{lhs()}{op} {ops[0].type} {n(ops[0])} to {inst.type}"
    if op == "array":
        if inst.attrs.get("splat"):
            ty = inst.type
            return f"{lhs()}[{ty.length} x {ty.element} {n(ops[0])}]"
        elems = ", ".join(n(o) for o in ops)
        return f"{lhs()}[{inst.type.element} {elems}]"
    if op == "struct":
        fields = ", ".join(f"{o.type} {n(o)}" for o in ops)
        return f"{lhs()}{{{fields}}}"
    if op == "extf":
        idx = inst.attrs.get("index")
        idx_txt = n(ops[1]) if idx is None else str(idx)
        return f"{lhs()}extf {inst.type}, {ops[0].type} {n(ops[0])}, {idx_txt}"
    if op == "insf":
        idx = inst.attrs.get("index")
        idx_txt = n(ops[2]) if idx is None else str(idx)
        return (f"{lhs()}insf {ops[0].type} {n(ops[0])}, "
                f"{ops[1].type} {n(ops[1])}, {idx_txt}")
    if op == "exts":
        return (f"{lhs()}exts {inst.type}, {ops[0].type} {n(ops[0])}, "
                f"{inst.attrs['offset']}, {inst.attrs['length']}")
    if op == "inss":
        return (f"{lhs()}inss {ops[0].type} {n(ops[0])}, "
                f"{ops[1].type} {n(ops[1])}, "
                f"{inst.attrs['offset']}, {inst.attrs['length']}")
    if op == "mux":
        return f"{lhs()}mux {inst.type} {n(ops[0])}, {n(ops[1])}"
    if op == "phi":
        pairs = ", ".join(
            f"[{n(v)}, {n(b)}]" for v, b in inst.phi_pairs())
        return f"{lhs()}phi {inst.type} {pairs}"
    if op == "sig":
        return f"{lhs()}sig {ops[0].type} {n(ops[0])}"
    if op == "prb":
        return f"{lhs()}prb {ops[0].type} {n(ops[0])}"
    if op == "drv":
        text = (f"drv {ops[0].type} {n(ops[0])}, {n(ops[1])} "
                f"after {n(ops[2])}")
        cond = inst.drv_condition()
        if cond is not None:
            text += f" if {n(cond)}"
        return text
    if op == "con":
        return f"con {ops[0].type} {n(ops[0])}, {n(ops[1])}"
    if op == "del":
        return f"{lhs()}del {ops[0].type} {n(ops[0])} after {n(ops[1])}"
    if op == "reg":
        clauses = []
        for t in inst.reg_triggers():
            clause = f"{n(t['value'])} {t['mode']} {n(t['trigger'])}"
            if t["cond"] is not None:
                clause += f" if {n(t['cond'])}"
            if t["delay"] is not None:
                clause += f" after {n(t['delay'])}"
            clauses.append(clause)
        sig = inst.reg_signal()
        return f"reg {sig.type} {n(sig)}, " + ", ".join(clauses)
    if op == "inst":
        ins = ", ".join(f"{o.type} {n(o)}" for o in inst.inst_inputs())
        outs = ", ".join(f"{o.type} {n(o)}" for o in inst.inst_outputs())
        return f"inst @{inst.callee} ({ins}) -> ({outs})"
    if op in ("var", "alloc"):
        return f"{lhs()}{op} {ops[0].type} {n(ops[0])}"
    if op == "free":
        return f"free {ops[0].type} {n(ops[0])}"
    if op == "ld":
        return f"{lhs()}ld {ops[0].type} {n(ops[0])}"
    if op == "st":
        return f"st {ops[0].type} {n(ops[0])}, {n(ops[1])}"
    if op == "call":
        args = ", ".join(f"{o.type} {n(o)}" for o in ops)
        prefix = "" if inst.type.is_void else lhs()
        return f"{prefix}call {inst.type} @{inst.callee} ({args})"
    if op == "br":
        if inst.is_conditional_branch:
            return (f"br {n(ops[0])}, {n(ops[1])}, {n(ops[2])}")
        return f"br {n(ops[0])}"
    if op == "wait":
        text = f"wait {n(ops[0])}"
        rest = ops[1:]
        if rest:
            text += " for " + ", ".join(n(o) for o in rest)
        return text
    if op == "halt":
        return "halt"
    if op == "ret":
        if ops:
            return f"ret {ops[0].type} {n(ops[0])}"
        return "ret"
    raise NotImplementedError(f"printer: unhandled opcode {op}")
