"""LLHD type system.

LLHD is strongly typed: every value carries a type.  Beyond the types found
in an imperative compiler IR (``void``, ``iN``, ``T*``, arrays, structs) the
paper defines four hardware-specific types (section 2.3):

* ``time`` — a point in (simulation) time,
* ``nN``   — an enumeration value with N distinct states,
* ``lN``   — an N-bit nine-valued logic vector (IEEE 1164),
* ``T$``   — a signal carrying a value of type T.

Types are interned: constructing the same type twice yields the same object,
so types may be compared with ``is`` or ``==`` interchangeably.
"""

from __future__ import annotations


class Type:
    """Base class of all LLHD types.

    Types are immutable and interned; identity equality holds.
    """

    _cache: dict = {}

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)

    def __repr__(self):
        return f"<{type(self).__name__} {self}>"

    # -- convenience predicates -------------------------------------------

    @property
    def is_void(self):
        return isinstance(self, VoidType)

    @property
    def is_int(self):
        return isinstance(self, IntType)

    @property
    def is_enum(self):
        return isinstance(self, EnumType)

    @property
    def is_logic(self):
        return isinstance(self, LogicType)

    @property
    def is_time(self):
        return isinstance(self, TimeType)

    @property
    def is_signal(self):
        return isinstance(self, SignalType)

    @property
    def is_pointer(self):
        return isinstance(self, PointerType)

    @property
    def is_array(self):
        return isinstance(self, ArrayType)

    @property
    def is_struct(self):
        return isinstance(self, StructType)

    @property
    def is_label(self):
        return isinstance(self, LabelType)

    @property
    def is_aggregate(self):
        return self.is_array or self.is_struct


class VoidType(Type):
    """The ``void`` type: the absence of a value."""

    def __str__(self):
        return "void"


class TimeType(Type):
    """The ``time`` type: a point in time (fs, delta, epsilon)."""

    def __str__(self):
        return "time"


class LabelType(Type):
    """The type of basic blocks when used as branch targets.

    Not part of the surface syntax; it exists so blocks can participate in
    the uniform use-list machinery.
    """

    def __str__(self):
        return "label"


class IntType(Type):
    """``iN``: an N-bit two-valued integer."""

    def __init__(self, width):
        self.width = width

    def __str__(self):
        return f"i{self.width}"


class EnumType(Type):
    """``nN``: an enumeration with N distinct values (0 .. N-1)."""

    def __init__(self, states):
        self.states = states

    def __str__(self):
        return f"n{self.states}"


class LogicType(Type):
    """``lN``: an N-bit nine-valued (IEEE 1164) logic vector."""

    def __init__(self, width):
        self.width = width

    def __str__(self):
        return f"l{self.width}"


class PointerType(Type):
    """``T*``: a pointer to stack or heap memory holding a ``T``."""

    def __init__(self, pointee):
        self.pointee = pointee

    def __str__(self):
        return f"{self.pointee}*"


class SignalType(Type):
    """``T$``: a signal (physical wire) carrying a value of type ``T``."""

    def __init__(self, element):
        self.element = element

    def __str__(self):
        return f"{self.element}$"


class ArrayType(Type):
    """``[N x T]``: an array of N elements of type T."""

    def __init__(self, length, element):
        self.length = length
        self.element = element

    def __str__(self):
        return f"[{self.length} x {self.element}]"


class StructType(Type):
    """``{T1, T2, ...}``: a structure with positional fields."""

    def __init__(self, fields):
        self.fields = tuple(fields)

    def __str__(self):
        return "{" + ", ".join(str(f) for f in self.fields) + "}"


def _intern(key, factory):
    cached = Type._cache.get(key)
    if cached is None:
        cached = factory()
        Type._cache[key] = cached
    return cached


def void_type():
    """Return the interned ``void`` type."""
    return _intern("void", VoidType)


def time_type():
    """Return the interned ``time`` type."""
    return _intern("time", TimeType)


def label_type():
    """Return the interned label type (for basic-block targets)."""
    return _intern("label", LabelType)


def int_type(width):
    """Return the interned ``iN`` type of the given bit width."""
    if width < 1:
        raise ValueError(f"integer width must be >= 1, got {width}")
    return _intern(("i", width), lambda: IntType(width))


def enum_type(states):
    """Return the interned ``nN`` type with the given number of states."""
    if states < 1:
        raise ValueError(f"enum must have >= 1 states, got {states}")
    return _intern(("n", states), lambda: EnumType(states))


def logic_type(width):
    """Return the interned ``lN`` nine-valued logic type."""
    if width < 1:
        raise ValueError(f"logic width must be >= 1, got {width}")
    return _intern(("l", width), lambda: LogicType(width))


def pointer_type(pointee):
    """Return the interned pointer type ``pointee*``."""
    return _intern(("ptr", pointee), lambda: PointerType(pointee))


def signal_type(element):
    """Return the interned signal type ``element$``."""
    if element.is_signal or element.is_pointer or element.is_void:
        raise ValueError(f"cannot form a signal of {element}")
    return _intern(("sig", element), lambda: SignalType(element))


def array_type(length, element):
    """Return the interned array type ``[length x element]``."""
    if length < 0:
        raise ValueError(f"array length must be >= 0, got {length}")
    return _intern(("arr", length, element), lambda: ArrayType(length, element))


def struct_type(fields):
    """Return the interned struct type ``{f0, f1, ...}``."""
    fields = tuple(fields)
    return _intern(("struct", fields), lambda: StructType(fields))


def parse_type(text):
    """Parse a type from its textual syntax, e.g. ``"i32$"`` or ``"[4 x i8]"``.

    This is a convenience wrapper used by tests and the REPL; the full parser
    in :mod:`repro.ir.parser` has its own type parsing integrated with the
    token stream.
    """
    from .parser import parse_type_text

    return parse_type_text(text)


def bit_width(ty):
    """Return the number of bits needed to store a value of ``ty``.

    Used by the bitcode writer and the size-accounting of Table 4, and by
    ``inss``/``exts`` on integers.  Signals and pointers report the width of
    their element/pointee.
    """
    if ty.is_int or ty.is_logic:
        return ty.width
    if ty.is_enum:
        return max(1, (ty.states - 1).bit_length())
    if ty.is_time:
        return 96
    if ty.is_array:
        return ty.length * bit_width(ty.element)
    if ty.is_struct:
        return sum(bit_width(f) for f in ty.fields)
    if ty.is_signal:
        return bit_width(ty.element)
    if ty.is_pointer:
        return bit_width(ty.pointee)
    if ty.is_void:
        return 0
    raise TypeError(f"no bit width for {ty!r}")
