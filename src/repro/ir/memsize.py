"""In-memory size accounting for LLHD modules (Table 4's last column).

Deep ``sys.getsizeof`` over the module object graph, visiting every unit,
block, instruction, operand list, use list, and attribute payload exactly
once.  Interned types are counted once per module, as in a real shared
type table.
"""

from __future__ import annotations

import sys

from .instructions import Instruction, RegTrigger
from .ninevalued import LogicVec
from .types import Type
from .units import UnitDecl
from .values import Argument, Block, TimeValue, Use


def deep_size(obj, seen=None):
    """Recursively sum ``sys.getsizeof`` over an object graph."""
    if seen is None:
        seen = set()
    key = id(obj)
    if key in seen:
        return 0
    seen.add(key)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for k, v in obj.items():
            size += deep_size(k, seen)
            size += deep_size(v, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_size(item, seen)
    elif isinstance(obj, (Instruction, Argument, Block)):
        size += deep_size(vars(obj), seen)
    elif isinstance(obj, Use):
        size += sys.getsizeof(obj.index) if obj.index not in seen else 0
    elif isinstance(obj, RegTrigger):
        size += sum(sys.getsizeof(getattr(obj, slot))
                    for slot in RegTrigger.__slots__)
    elif isinstance(obj, TimeValue):
        size += (sys.getsizeof(obj.fs) + sys.getsizeof(obj.delta)
                 + sys.getsizeof(obj.epsilon))
    elif isinstance(obj, LogicVec):
        # Four plane integers; the bits string is a lazy cache, not state.
        size += (sys.getsizeof(obj._val) + sys.getsizeof(obj._unk)
                 + sys.getsizeof(obj._weak) + sys.getsizeof(obj._aux))
    elif isinstance(obj, Type):
        size += deep_size(vars(obj), seen) if hasattr(obj, "__dict__") \
            else 0
    elif hasattr(obj, "__dict__"):
        size += deep_size(vars(obj), seen)
    return size


def module_size(module):
    """Total in-memory bytes of a module's object graph."""
    seen = set()
    total = sys.getsizeof(module)
    total += deep_size(module.units, seen)
    total += deep_size(module.declarations, seen)
    return total


def module_size_breakdown(module):
    """Per-unit in-memory sizes (shared types counted with the first unit
    that references them)."""
    seen = set()
    breakdown = {}
    for name, unit in module.units.items():
        breakdown[name] = deep_size(unit, seen)
    return breakdown
