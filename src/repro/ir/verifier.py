"""IR verifier: structural well-formedness, unit placement rules, SSA
dominance, and multi-level dialect legality.

The placement rules implement Table 1 and section 2.5 of the paper:

* Functions execute immediately — they may not suspend (``wait``/``halt``)
  or interact with signals (``sig``/``prb``/``drv``...).
* Processes may probe/drive signals and suspend, but ``reg``, ``inst``,
  ``con`` and ``del`` are limited to entities.
* Entities are pure data flow: no control flow, no phi, no memory.
"""

from __future__ import annotations

from ..analysis.dominators import DominatorTree
from .dialects import BEHAVIOURAL, level_violations
from .instructions import TERMINATORS
from .units import UnitDecl, entity_signature
from .values import Argument, Block


class VerificationError(Exception):
    """Raised when a module or unit violates IR invariants."""

    def __init__(self, issues):
        self.issues = list(issues)
        super().__init__(
            f"{len(self.issues)} verification issue(s):\n  "
            + "\n  ".join(self.issues))


# Known llhd.* intrinsics and their (arg-count, purpose).
INTRINSICS = {
    "llhd.assert": "assert a condition during simulation",
    "llhd.assert.msg": "assert with message",
    "llhd.print": "print values during simulation",
    "llhd.finish": "terminate the simulation",
}

_FUNCTION_FORBIDDEN = frozenset({
    "sig", "prb", "drv", "reg", "inst", "con", "del", "wait", "halt",
})
_PROCESS_FORBIDDEN = frozenset({"reg", "inst", "con", "del", "ret"})
_ENTITY_FORBIDDEN = frozenset({
    "br", "wait", "halt", "ret", "phi", "var", "ld", "st", "alloc", "free",
})


def verify_module(module, level=BEHAVIOURAL, am=None):
    """Verify a module; raise :class:`VerificationError` on any issue.

    ``am`` optionally supplies an :class:`~repro.analysis.AnalysisManager`
    whose cached dominator trees the SSA dominance check reuses — the
    pass manager threads its own cache through here when verifying
    between passes.
    """
    issues = []
    for unit in module:
        issues += _unit_issues(unit, module, am)
    issues += level_violations(module, level)
    if issues:
        raise VerificationError(issues)


def verify_unit(unit, module=None, am=None):
    """Verify a single unit; raise on any issue."""
    issues = _unit_issues(unit, module, am)
    if issues:
        raise VerificationError(issues)


def _unit_issues(unit, module, am=None):
    where = f"@{unit.name}"
    issues = []
    if unit.is_entity:
        issues += _check_entity(unit, where)
    else:
        issues += _check_cf_unit(unit, where, am)
    issues += _check_placement(unit, where)
    if module is not None:
        issues += _check_references(unit, module, where)
    return issues


def _check_cf_unit(unit, where, am=None):
    issues = []
    if not unit.blocks:
        issues.append(f"{where}: unit has no blocks")
        return issues
    for block in unit.blocks:
        label = f"{where}/%{block.name or '?'}"
        if not block.instructions:
            issues.append(f"{label}: empty block (needs a terminator)")
            continue
        term = block.instructions[-1]
        if term.opcode not in TERMINATORS:
            issues.append(f"{label}: block does not end in a terminator")
        for inst in block.instructions[:-1]:
            if inst.opcode in TERMINATORS:
                issues.append(
                    f"{label}: terminator '{inst.opcode}' in mid-block")
        seen_non_phi = False
        for inst in block.instructions:
            if inst.opcode == "phi":
                if seen_non_phi:
                    issues.append(f"{label}: phi after non-phi instruction")
            else:
                seen_non_phi = True
    if unit.is_function:
        issues += _check_function_returns(unit, where)
    issues += _check_phis(unit, where)
    issues += _check_dominance(unit, where, am)
    return issues


def _check_function_returns(unit, where):
    issues = []
    for block in unit.blocks:
        term = block.terminator
        if term is None:
            continue
        if term.opcode in ("wait", "halt"):
            issues.append(
                f"{where}: function may not contain '{term.opcode}'")
        if term.opcode == "ret":
            if unit.return_type.is_void:
                if term.operands:
                    issues.append(f"{where}: ret with value in void function")
            elif not term.operands:
                issues.append(f"{where}: ret without value")
            elif term.operands[0].type is not unit.return_type:
                issues.append(
                    f"{where}: ret type {term.operands[0].type} does not "
                    f"match return type {unit.return_type}")
    return issues


def _check_phis(unit, where):
    issues = []
    for block in unit.blocks:
        preds = block.predecessors()
        pred_ids = {id(p) for p in preds}
        for phi in block.phis():
            pairs = phi.phi_pairs()
            seen = set()
            for _, pred in pairs:
                if id(pred) not in pred_ids:
                    issues.append(
                        f"{where}: phi has incoming from non-predecessor "
                        f"%{pred.name or '?'}")
                seen.add(id(pred))
            for pred in preds:
                if id(pred) not in seen:
                    issues.append(
                        f"{where}: phi is missing incoming value for "
                        f"predecessor %{pred.name or '?'}")
    return issues


def _check_dominance(unit, where, am=None):
    issues = []
    domtree = am.get("domtree", unit) if am is not None \
        else DominatorTree(unit)
    reachable = {id(b) for b in domtree.order}
    for block in unit.blocks:
        if id(block) not in reachable:
            continue  # unreachable code is legal, just not checked
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                if isinstance(op, (Argument, Block)):
                    continue
                if getattr(op, "parent", None) is None:
                    issues.append(
                        f"{where}: operand of '{inst.opcode}' is detached")
                    continue
                if not domtree.value_dominates(op, inst, index):
                    issues.append(
                        f"{where}: use of %{op.name or '?'} in "
                        f"'{inst.opcode}' is not dominated by its definition")
    return issues


def _check_entity(unit, where):
    issues = []
    defined = {id(a) for a in unit.args}
    for inst in unit.body:
        if inst.opcode in TERMINATORS:
            issues.append(
                f"{where}: control flow ('{inst.opcode}') in entity")
        for op in inst.operands:
            if isinstance(op, (Argument, Block)):
                continue
            if id(op) not in defined:
                issues.append(
                    f"{where}: '{inst.opcode}' uses %{op.name or '?'} "
                    f"before its definition")
        defined.add(id(inst))
    return issues


def _check_placement(unit, where):
    forbidden = {
        "func": _FUNCTION_FORBIDDEN,
        "proc": _PROCESS_FORBIDDEN,
        "entity": _ENTITY_FORBIDDEN,
    }[unit.kind]
    issues = []
    for inst in unit.instructions():
        if inst.opcode in forbidden:
            issues.append(
                f"{where}: '{inst.opcode}' is not allowed in a {unit.kind}")
    return issues


def _check_references(unit, module, where):
    issues = []
    for inst in unit.instructions():
        if inst.opcode == "inst":
            issues += _check_inst_reference(inst, module, where)
        elif inst.opcode == "call":
            issues += _check_call_reference(inst, module, where)
    return issues


def _check_inst_reference(inst, module, where):
    callee = module.get(inst.callee)
    if callee is None:
        return [f"{where}: inst of undefined unit @{inst.callee}"]
    kind = callee.kind
    if kind == "func":
        return [f"{where}: cannot instantiate function @{inst.callee}"]
    in_types, out_types = entity_signature(callee)
    issues = []
    actual_ins = [o.type for o in inst.inst_inputs()]
    actual_outs = [o.type for o in inst.inst_outputs()]
    if list(in_types) != actual_ins:
        issues.append(
            f"{where}: inst @{inst.callee} input types {actual_ins} do not "
            f"match signature {list(in_types)}")
    if list(out_types) != actual_outs:
        issues.append(
            f"{where}: inst @{inst.callee} output types {actual_outs} do "
            f"not match signature {list(out_types)}")
    return issues


def _check_call_reference(inst, module, where):
    name = inst.callee
    if name.startswith("llhd."):
        if name not in INTRINSICS:
            return [f"{where}: unknown intrinsic @{name}"]
        return []
    callee = module.get(name)
    if callee is None:
        return [f"{where}: call to undefined function @{name}"]
    if isinstance(callee, UnitDecl):
        if callee.kind != "func":
            return [f"{where}: call to non-function @{name}"]
        expected = list(callee.input_types)
        ret = callee.return_type
    else:
        if not callee.is_function:
            return [f"{where}: call to non-function @{name}"]
        expected = [a.type for a in callee.args]
        ret = callee.return_type
    actual = [a.type for a in inst.call_args()]
    issues = []
    if expected != actual:
        issues.append(
            f"{where}: call @{name} argument types {actual} do not match "
            f"signature {expected}")
    if inst.type is not ret:
        issues.append(
            f"{where}: call @{name} result type {inst.type} does not match "
            f"return type {ret}")
    return issues
