"""The LLHD instruction set.

Instructions are SSA values (they may be used as operands) with an opcode,
an operand list, and a small attribute dictionary for non-value payloads
(constant values, static indices, callee names, trigger descriptors).

The set follows section 2.5 of the paper:

* data flow: ``const``, ``array``, ``struct``, ``insf``/``extf`` (field or
  element insert/extract), ``inss``/``exts`` (slice insert/extract),
  ``mux``, ``phi``, casts (``zext``/``sext``/``trunc``), logic and
  arithmetic, shifts, comparisons;
* signals: ``sig``, ``prb``, ``drv``, ``con``, ``del``, ``reg``;
* hierarchy: ``inst``;
* memory: ``var``, ``ld``, ``st``, ``alloc``, ``free``;
* control and time flow: ``br``, ``call``, ``ret``, ``wait``, ``halt``.
"""

from __future__ import annotations

from .values import Block, Use, Value

# -- opcode classification ----------------------------------------------------

TERMINATORS = frozenset({"br", "wait", "halt", "ret"})

UNARY_OPS = frozenset({"not", "neg"})

BINARY_OPS = frozenset({
    "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem", "srem",
    "and", "or", "xor", "shl", "shr",
})

COMPARE_OPS = frozenset({
    "eq", "neq", "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge",
})

CAST_OPS = frozenset({"zext", "sext", "trunc"})

# Instructions that must never be removed even when their result is unused.
SIDE_EFFECTS = frozenset({
    "drv", "st", "call", "inst", "con", "reg", "free",
    "br", "wait", "halt", "ret",
})

# Instructions whose result depends on mutable state, so two textually equal
# occurrences are not interchangeable (CSE must skip them).
STATEFUL = frozenset({"prb", "ld", "var", "alloc", "sig", "del", "phi"})

ALL_OPCODES = (
    TERMINATORS | UNARY_OPS | BINARY_OPS | COMPARE_OPS | CAST_OPS
    | frozenset({
        "const", "array", "struct", "insf", "extf", "inss", "exts",
        "mux", "phi", "sig", "prb", "drv", "con", "del", "reg", "inst",
        "var", "ld", "st", "alloc", "free", "call",
    })
)


class RegTrigger:
    """Descriptor of one ``reg`` trigger clause.

    A ``reg`` stores a value when a trigger fires.  The mode is one of
    ``rise``, ``fall``, ``both`` (edge-sensitive) or ``high``, ``low``
    (level-sensitive).  The fields are operand indices into the owning
    instruction; ``cond`` and ``delay`` may be None.
    """

    __slots__ = ("mode", "value", "trigger", "cond", "delay")

    MODES = ("low", "high", "rise", "fall", "both")

    def __init__(self, mode, value, trigger, cond=None, delay=None):
        if mode not in self.MODES:
            raise ValueError(f"invalid reg trigger mode {mode!r}")
        self.mode = mode
        self.value = value
        self.trigger = trigger
        self.cond = cond
        self.delay = delay


class Instruction(Value):
    """One LLHD instruction; also the SSA value it defines (if non-void)."""

    def __init__(self, opcode, type, operands=(), attrs=None, name=None):
        if opcode not in ALL_OPCODES:
            raise ValueError(f"unknown opcode {opcode!r}")
        super().__init__(type, name)
        self.opcode = opcode
        self.operands = []
        self.attrs = dict(attrs) if attrs else {}
        self.parent = None  # owning Block
        for op in operands:
            self.add_operand(op)

    # -- operand maintenance -------------------------------------------------

    def add_operand(self, value):
        index = len(self.operands)
        self.operands.append(value)
        value._add_use(Use(self, index))
        return index

    def set_operand(self, index, value):
        old = self.operands[index]
        if old is value:
            return
        old._remove_use(self, index)
        self.operands[index] = value
        value._add_use(Use(self, index))

    def drop_operands(self):
        """Remove this instruction's uses of all its operands."""
        for index, op in enumerate(self.operands):
            op._remove_use(self, index)
        self.operands = []

    def erase(self):
        """Unlink from the parent block and release all operand uses."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_operands()

    # -- generic queries -------------------------------------------------------

    @property
    def is_terminator(self):
        return self.opcode in TERMINATORS

    @property
    def has_side_effects(self):
        if self.opcode == "call":
            return True
        return self.opcode in SIDE_EFFECTS

    @property
    def is_pure(self):
        """True if the instruction may be freely duplicated, moved, or CSE'd."""
        return (self.opcode not in SIDE_EFFECTS
                and self.opcode not in STATEFUL)

    # -- opcode-specific accessors --------------------------------------------
    # These keep the flat operand layout navigable.  Layouts:
    #   br (uncond):  [dest]
    #   br (cond):    [cond, dest_false, dest_true]
    #   wait:         [dest, time?, *signals]        attrs: has_time
    #   drv:          [sig, value, delay, cond?]     attrs: has_cond
    #   call:         [*args]                        attrs: callee
    #   inst:         [*inputs, *outputs]            attrs: callee, num_inputs
    #   phi:          [v0, b0, v1, b1, ...]
    #   mux:          [array, selector]
    #   reg:          [sig, ...per trigger...]       attrs: triggers
    #   extf/insf:    [agg(, value), index?]         attrs: index (None=dynamic)
    #   exts/inss:    [agg(, value)]                 attrs: offset, length
    #   del:          [source, delay]                (result is the new signal)
    #   con:          [sigA, sigB]

    @property
    def is_conditional_branch(self):
        return self.opcode == "br" and len(self.operands) == 3

    def branch_condition(self):
        assert self.is_conditional_branch
        return self.operands[0]

    def branch_dests(self):
        """(false_dest, true_dest) for a conditional, (dest,) otherwise."""
        if self.is_conditional_branch:
            return (self.operands[1], self.operands[2])
        return (self.operands[0],)

    def wait_dest(self):
        assert self.opcode == "wait"
        return self.operands[0]

    def wait_time(self):
        assert self.opcode == "wait"
        return self.operands[1] if self.attrs.get("has_time") else None

    def wait_signals(self):
        assert self.opcode == "wait"
        start = 2 if self.attrs.get("has_time") else 1
        return self.operands[start:]

    def drv_signal(self):
        assert self.opcode == "drv"
        return self.operands[0]

    def drv_value(self):
        assert self.opcode == "drv"
        return self.operands[1]

    def drv_delay(self):
        assert self.opcode == "drv"
        return self.operands[2]

    def drv_condition(self):
        assert self.opcode == "drv"
        return self.operands[3] if self.attrs.get("has_cond") else None

    def call_args(self):
        assert self.opcode == "call"
        return list(self.operands)

    @property
    def callee(self):
        return self.attrs["callee"]

    def inst_inputs(self):
        assert self.opcode == "inst"
        return self.operands[: self.attrs["num_inputs"]]

    def inst_outputs(self):
        assert self.opcode == "inst"
        return self.operands[self.attrs["num_inputs"]:]

    def phi_pairs(self):
        """Iterate ``(value, predecessor_block)`` pairs of a phi."""
        assert self.opcode == "phi"
        ops = self.operands
        return [(ops[i], ops[i + 1]) for i in range(0, len(ops), 2)]

    def phi_value_for(self, block):
        for value, pred in self.phi_pairs():
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming edge from {block!r}")

    def reg_signal(self):
        assert self.opcode == "reg"
        return self.operands[0]

    def reg_triggers(self):
        """Iterate resolved trigger clauses as dicts of values."""
        assert self.opcode == "reg"
        ops = self.operands
        for t in self.attrs["triggers"]:
            yield {
                "mode": t.mode,
                "value": ops[t.value],
                "trigger": ops[t.trigger],
                "cond": ops[t.cond] if t.cond is not None else None,
                "delay": ops[t.delay] if t.delay is not None else None,
            }

    def ext_index(self):
        """The static index of an extf/insf, or the dynamic index value."""
        assert self.opcode in ("extf", "insf")
        if self.attrs.get("index") is not None:
            return self.attrs["index"]
        return self.operands[-1]

    @property
    def has_dynamic_index(self):
        return (self.opcode in ("extf", "insf")
                and self.attrs.get("index") is None)

    def successors(self):
        return [op for op in self.operands if isinstance(op, Block)]

    def __repr__(self):
        label = self.name if self.name is not None else "?"
        return f"<inst {self.opcode} %{label}>"
