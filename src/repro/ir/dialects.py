"""The three levels (dialects) of the multi-level IR (section 2.2).

* **Behavioural LLHD** captures circuit descriptions in higher-level HDLs,
  including simulation constructs and testbenches — the full IR.
* **Structural LLHD** limits the description to input-to-output relations:
  everything representable by an entity.
* **Netlist LLHD** further limits to entities plus signal creation
  (``sig``), connection (``con``), delay (``del``), and sub-circuit
  instantiation (``inst``).

The constructs of Netlist LLHD are a strict subset of Structural LLHD,
which is a strict subset of Behavioural LLHD; the levels are realized here
as increasingly strict verifier modes rather than separate IRs.
"""

from __future__ import annotations

BEHAVIOURAL = "behavioural"
STRUCTURAL = "structural"
NETLIST = "netlist"

LEVELS = (BEHAVIOURAL, STRUCTURAL, NETLIST)

# Opcodes allowed inside an entity at the STRUCTURAL level.
STRUCTURAL_OPCODES = frozenset({
    "const", "array", "struct", "insf", "extf", "inss", "exts", "mux",
    "not", "neg", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod",
    "urem", "srem", "and", "or", "xor", "shl", "shr",
    "eq", "neq", "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge",
    "zext", "sext", "trunc",
    "sig", "prb", "drv", "reg", "inst", "con", "del",
})

# Opcodes allowed inside an entity at the NETLIST level.  Constants are
# permitted because ``sig`` requires an initial value; ``array``/``struct``
# over constants are the aggregate form of the same thing (a memory's
# initial contents) and are checked contextually in level_violations.
NETLIST_OPCODES = frozenset({"sig", "con", "del", "inst", "const"})

_NETLIST_AGGREGATE = frozenset({"const", "array", "struct"})


def _is_constant_aggregate(inst):
    """array/struct instructions whose whole tree is constant."""
    if inst.opcode not in ("array", "struct"):
        return False
    return all(
        getattr(op, "opcode", None) in _NETLIST_AGGREGATE
        and (op.opcode == "const" or _is_constant_aggregate(op))
        for op in inst.operands)


def allowed_opcodes(level):
    """The entity-body opcode allowlist for a level (None = unrestricted)."""
    if level == BEHAVIOURAL:
        return None
    if level == STRUCTURAL:
        return STRUCTURAL_OPCODES
    if level == NETLIST:
        return NETLIST_OPCODES
    raise ValueError(f"unknown LLHD level {level!r}")


def level_violations(module, level):
    """Return a list of human-readable violations of ``level`` in ``module``.

    An empty list means the module is a valid member of the level's subset.
    """
    if level == BEHAVIOURAL:
        return []
    issues = []
    opcodes = allowed_opcodes(level)
    for unit in module:
        if not unit.is_entity:
            issues.append(
                f"@{unit.name}: {unit.kind} units are not allowed in "
                f"{level} LLHD")
            continue
        for inst in unit.instructions():
            if inst.opcode not in opcodes:
                if level == NETLIST and _is_constant_aggregate(inst):
                    continue  # aggregate constant (e.g. a sig's initial)
                issues.append(
                    f"@{unit.name}: instruction '{inst.opcode}' is not "
                    f"allowed in {level} LLHD")
    return issues


def is_at_level(module, level):
    """True if the module is valid at the given level."""
    return not level_violations(module, level)


def classify(module):
    """Return the strictest level the module belongs to."""
    if is_at_level(module, NETLIST):
        return NETLIST
    if is_at_level(module, STRUCTURAL):
        return STRUCTURAL
    return BEHAVIOURAL
