"""Convenience builder for constructing LLHD IR.

The :class:`Builder` keeps an insertion point (a block, or an entity body)
and offers one method per instruction that computes the result type,
validates operands, and appends the instruction.  This is the primary
construction API used by the Moore frontend, the passes, and tests.

Example — the accumulator flip-flop entity of Figure 5::

    ent = Entity("acc_ff", [signal_type(int_type(1)), signal_type(int_type(32))],
                 ["clk", "d"], [signal_type(int_type(32))], ["q"])
    b = Builder.at_end(ent.body)
    delay = b.const_time(TimeValue.parse("1ns"))
    clkp = b.prb(ent.inputs[0])
    dp = b.prb(ent.inputs[1])
    b.reg(ent.outputs[0], [("rise", dp, clkp, None, delay)])
"""

from __future__ import annotations

from .instructions import Instruction, RegTrigger, BINARY_OPS, COMPARE_OPS
from .ninevalued import LogicVec
from .types import (
    array_type, int_type, pointer_type, signal_type, struct_type, time_type,
    void_type,
)
from .values import Block, TimeValue, Value


class Builder:
    """Inserts instructions at a position inside a block."""

    def __init__(self, block=None, index=None):
        self.block = block
        self.index = index  # None means "append at end"

    @classmethod
    def at_end(cls, block):
        """Builder appending at the end of ``block`` (or an entity body)."""
        return cls(block, None)

    @classmethod
    def before(cls, inst):
        """Builder inserting just before ``inst``."""
        return cls(inst.parent, inst.parent.index_of(inst))

    def set_insert_point(self, block, index=None):
        self.block = block
        self.index = index

    def insert(self, inst):
        """Insert a pre-built instruction at the current position."""
        if self.block is None:
            raise RuntimeError("builder has no insertion point")
        if self.index is None:
            self.block.append(inst)
        else:
            self.block.insert(self.index, inst)
            self.index += 1
        return inst

    # -- constants ------------------------------------------------------------

    def const_int(self, ty, value, name=None):
        """``const iN value`` (also used for nN enum constants)."""
        if ty.is_int:
            value &= (1 << ty.width) - 1
        elif ty.is_enum:
            if not 0 <= value < ty.states:
                raise ValueError(f"enum value {value} out of range for {ty}")
        else:
            raise TypeError(f"const_int needs an iN or nN type, got {ty}")
        return self.insert(Instruction("const", ty, (), {"value": value}, name))

    def const_time(self, value, name=None):
        """``const time <value>`` where value is a :class:`TimeValue`."""
        if not isinstance(value, TimeValue):
            value = TimeValue.parse(value)
        return self.insert(
            Instruction("const", time_type(), (), {"value": value}, name))

    def const_logic(self, value, name=None):
        """``const lN "…"`` where value is a :class:`LogicVec` or string."""
        if not isinstance(value, LogicVec):
            value = LogicVec(value)
        from .types import logic_type

        ty = logic_type(value.width)
        return self.insert(Instruction("const", ty, (), {"value": value}, name))

    # -- integer / logic computation ----------------------------------------

    def _binary(self, op, a, b, name=None):
        if a.type is not b.type:
            raise TypeError(f"{op}: operand types differ: {a.type} vs {b.type}")
        if not (a.type.is_int or a.type.is_logic):
            raise TypeError(f"{op}: needs iN or lN operands, got {a.type}")
        return self.insert(Instruction(op, a.type, (a, b), None, name))

    def add(self, a, b, name=None):
        return self._binary("add", a, b, name)

    def sub(self, a, b, name=None):
        return self._binary("sub", a, b, name)

    def mul(self, a, b, name=None):
        return self._binary("mul", a, b, name)

    def udiv(self, a, b, name=None):
        return self._binary("udiv", a, b, name)

    def sdiv(self, a, b, name=None):
        return self._binary("sdiv", a, b, name)

    def umod(self, a, b, name=None):
        return self._binary("umod", a, b, name)

    def smod(self, a, b, name=None):
        return self._binary("smod", a, b, name)

    def urem(self, a, b, name=None):
        return self._binary("urem", a, b, name)

    def srem(self, a, b, name=None):
        return self._binary("srem", a, b, name)

    def and_(self, a, b, name=None):
        return self._binary("and", a, b, name)

    def or_(self, a, b, name=None):
        return self._binary("or", a, b, name)

    def xor(self, a, b, name=None):
        return self._binary("xor", a, b, name)

    def shl(self, a, amount, name=None):
        if not a.type.is_int and not a.type.is_logic:
            raise TypeError(f"shl: needs iN or lN value, got {a.type}")
        return self.insert(Instruction("shl", a.type, (a, amount), None, name))

    def shr(self, a, amount, name=None):
        if not a.type.is_int and not a.type.is_logic:
            raise TypeError(f"shr: needs iN or lN value, got {a.type}")
        return self.insert(Instruction("shr", a.type, (a, amount), None, name))

    def binary(self, op, a, b, name=None):
        """Generic binary arithmetic dispatch (used by frontends)."""
        if op not in BINARY_OPS:
            raise ValueError(f"not a binary op: {op}")
        if op in ("shl", "shr"):
            return self.insert(Instruction(op, a.type, (a, b), None, name))
        return self._binary(op, a, b, name)

    def not_(self, a, name=None):
        if not (a.type.is_int or a.type.is_logic):
            raise TypeError(f"not: needs iN or lN operand, got {a.type}")
        return self.insert(Instruction("not", a.type, (a,), None, name))

    def neg(self, a, name=None):
        if not (a.type.is_int or a.type.is_logic):
            raise TypeError(f"neg: needs iN or lN operand, got {a.type}")
        return self.insert(Instruction("neg", a.type, (a,), None, name))

    def compare(self, op, a, b, name=None):
        """``eq``/``neq`` on any type; ordered comparisons on iN/lN."""
        if op not in COMPARE_OPS:
            raise ValueError(f"not a comparison: {op}")
        if a.type is not b.type:
            raise TypeError(f"{op}: operand types differ: {a.type} vs {b.type}")
        if op not in ("eq", "neq") and not (a.type.is_int or a.type.is_logic):
            raise TypeError(f"{op}: ordered compare needs iN or lN, "
                            f"got {a.type}")
        return self.insert(Instruction(op, int_type(1), (a, b), None, name))

    def eq(self, a, b, name=None):
        return self.compare("eq", a, b, name)

    def neq(self, a, b, name=None):
        return self.compare("neq", a, b, name)

    def ult(self, a, b, name=None):
        return self.compare("ult", a, b, name)

    def slt(self, a, b, name=None):
        return self.compare("slt", a, b, name)

    # -- casts ------------------------------------------------------------------

    @staticmethod
    def _cast_kinds_ok(value, ty):
        """Casts stay within one value kind: iN→iN or lN→lN."""
        return (value.type.is_int and ty.is_int) or \
            (value.type.is_logic and ty.is_logic)

    def zext(self, value, ty, name=None):
        if not self._cast_kinds_ok(value, ty) or ty.width < value.type.width:
            raise TypeError(f"zext {value.type} to {ty} is invalid")
        return self.insert(Instruction("zext", ty, (value,), None, name))

    def sext(self, value, ty, name=None):
        if not self._cast_kinds_ok(value, ty) or ty.width < value.type.width:
            raise TypeError(f"sext {value.type} to {ty} is invalid")
        return self.insert(Instruction("sext", ty, (value,), None, name))

    def trunc(self, value, ty, name=None):
        if not self._cast_kinds_ok(value, ty) or ty.width > value.type.width:
            raise TypeError(f"trunc {value.type} to {ty} is invalid")
        return self.insert(Instruction("trunc", ty, (value,), None, name))

    # -- aggregates ---------------------------------------------------------------

    def array(self, elements, name=None):
        """Array literal ``[T %a, %b, ...]`` from one or more elements."""
        elements = list(elements)
        if not elements:
            raise ValueError("array literal needs >= 1 element")
        elem_ty = elements[0].type
        for e in elements:
            if e.type is not elem_ty:
                raise TypeError("array elements must have uniform type")
        ty = array_type(len(elements), elem_ty)
        return self.insert(
            Instruction("array", ty, elements, {"splat": False}, name))

    def array_splat(self, length, value, name=None):
        """Array splat ``[N x T %v]``: N copies of one value."""
        ty = array_type(length, value.type)
        return self.insert(
            Instruction("array", ty, (value,), {"splat": True}, name))

    def struct(self, fields, name=None):
        """Struct literal ``{T %a, %b, ...}``."""
        fields = list(fields)
        ty = struct_type([f.type for f in fields])
        return self.insert(Instruction("struct", ty, fields, None, name))

    @staticmethod
    def _project(ty, wrap_check=True):
        """Return (inner_ty, wrapper) where wrapper rebuilds sig/ptr around."""
        if ty.is_signal:
            return ty.element, signal_type
        if ty.is_pointer:
            return ty.pointee, pointer_type
        return ty, lambda t: t

    def extf(self, agg, index, name=None):
        """Extract field/element ``index`` (int or dynamic iN value).

        Works on arrays and structs, and projects *through* signals and
        pointers: extracting from ``[4 x i8]$`` yields an ``i8$`` sub-signal
        (section 2.5.6 of the paper).
        """
        inner, wrap = self._project(agg.type)
        if isinstance(index, Value):
            if not inner.is_array:
                raise TypeError("dynamic extf index requires an array")
            result = wrap(inner.element)
            return self.insert(Instruction(
                "extf", result, (agg, index), {"index": None}, name))
        if inner.is_array:
            if not 0 <= index < inner.length:
                raise IndexError(f"extf index {index} out of range for {inner}")
            result = wrap(inner.element)
        elif inner.is_struct:
            result = wrap(inner.fields[index])
        else:
            raise TypeError(f"extf needs an array or struct, got {agg.type}")
        return self.insert(Instruction(
            "extf", result, (agg,), {"index": index}, name))

    def insf(self, agg, value, index, name=None):
        """Insert ``value`` at field/element ``index``; yields the new aggregate."""
        ty = agg.type
        if isinstance(index, Value):
            if not ty.is_array:
                raise TypeError("dynamic insf index requires an array")
            return self.insert(Instruction(
                "insf", ty, (agg, value, index), {"index": None}, name))
        if ty.is_array:
            if value.type is not ty.element:
                raise TypeError("insf element type mismatch")
        elif ty.is_struct:
            if value.type is not ty.fields[index]:
                raise TypeError("insf field type mismatch")
        else:
            raise TypeError(f"insf needs an array or struct, got {ty}")
        return self.insert(Instruction(
            "insf", ty, (agg, value), {"index": index}, name))

    def exts(self, agg, offset, length, name=None):
        """Extract a slice: bits of an iN/lN or elements of an array.

        Projects through signals and pointers like :meth:`extf`.
        """
        inner, wrap = self._project(agg.type)
        if inner.is_array:
            result = wrap(array_type(length, inner.element))
        elif inner.is_int:
            result = wrap(int_type(length))
        elif inner.is_logic:
            from .types import logic_type

            result = wrap(logic_type(length))
        else:
            raise TypeError(f"exts needs iN, lN, or array, got {agg.type}")
        return self.insert(Instruction(
            "exts", result, (agg,), {"offset": offset, "length": length}, name))

    def inss(self, agg, value, offset, length, name=None):
        """Insert a slice into an iN/lN or array; yields the new value."""
        return self.insert(Instruction(
            "inss", agg.type, (agg, value),
            {"offset": offset, "length": length}, name))

    def mux(self, values, selector, name=None):
        """Select among the elements of an array value by a discriminator."""
        if not values.type.is_array:
            raise TypeError(f"mux needs an array of choices, got {values.type}")
        return self.insert(Instruction(
            "mux", values.type.element, (values, selector), None, name))

    def phi(self, pairs, name=None):
        """Phi node from ``[(value, predecessor_block), ...]``."""
        pairs = list(pairs)
        ty = pairs[0][0].type
        operands = []
        for value, block in pairs:
            if value.type is not ty:
                raise TypeError("phi operand types must match")
            operands += [value, block]
        return self.insert(Instruction("phi", ty, operands, None, name))

    # -- signals ------------------------------------------------------------------

    def sig(self, init, name=None):
        """Create a signal with the given initial value."""
        return self.insert(Instruction(
            "sig", signal_type(init.type), (init,), None, name))

    def prb(self, sig, name=None):
        """Probe the current value of a signal."""
        if not sig.type.is_signal:
            raise TypeError(f"prb needs a signal, got {sig.type}")
        return self.insert(Instruction(
            "prb", sig.type.element, (sig,), None, name))

    def drv(self, sig, value, delay, cond=None):
        """Drive ``value`` onto ``sig`` after ``delay`` (optionally gated)."""
        if not sig.type.is_signal:
            raise TypeError(f"drv needs a signal, got {sig.type}")
        if value.type is not sig.type.element:
            raise TypeError(
                f"drv value type {value.type} does not match signal {sig.type}")
        if not delay.type.is_time:
            raise TypeError(f"drv delay must be a time, got {delay.type}")
        operands = [sig, value, delay]
        attrs = {"has_cond": cond is not None}
        if cond is not None:
            operands.append(cond)
        return self.insert(Instruction("drv", void_type(), operands, attrs))

    def con(self, a, b):
        """Connect two signals into one net (bidirectional)."""
        if a.type is not b.type:
            raise TypeError(f"con: signal types differ: {a.type} vs {b.type}")
        return self.insert(Instruction("con", void_type(), (a, b)))

    def delayed(self, source, delay, name=None):
        """``del``: a new signal following ``source`` with a fixed delay."""
        if not source.type.is_signal:
            raise TypeError(f"del needs a signal, got {source.type}")
        return self.insert(Instruction(
            "del", source.type, (source, delay), None, name))

    def reg(self, sig, triggers):
        """Create a storage element on ``sig``.

        ``triggers`` is a list of ``(mode, value, trigger, cond, delay)``
        tuples; ``cond``/``delay`` may be None.  Modes: ``low``, ``high``,
        ``rise``, ``fall``, ``both``.
        """
        operands = [sig]
        descs = []
        for mode, value, trigger, cond, delay in triggers:
            vi = len(operands)
            operands.append(value)
            ti = len(operands)
            operands.append(trigger)
            ci = di = None
            if cond is not None:
                ci = len(operands)
                operands.append(cond)
            if delay is not None:
                di = len(operands)
                operands.append(delay)
            descs.append(RegTrigger(mode, vi, ti, ci, di))
        return self.insert(Instruction(
            "reg", void_type(), operands, {"triggers": descs}))

    # -- hierarchy -------------------------------------------------------------------

    def inst(self, callee, inputs=(), outputs=()):
        """Instantiate a process or entity, wiring inputs and outputs."""
        name = callee if isinstance(callee, str) else callee.name
        operands = list(inputs) + list(outputs)
        return self.insert(Instruction(
            "inst", void_type(), operands,
            {"callee": name, "num_inputs": len(list(inputs))}))

    # -- memory ------------------------------------------------------------------------

    def var(self, init, name=None):
        """Stack allocation initialized with ``init``; yields a pointer."""
        return self.insert(Instruction(
            "var", pointer_type(init.type), (init,), None, name))

    def alloc(self, init, name=None):
        """Heap allocation initialized with ``init``; yields a pointer."""
        return self.insert(Instruction(
            "alloc", pointer_type(init.type), (init,), None, name))

    def free(self, ptr):
        """Release a heap allocation."""
        return self.insert(Instruction("free", void_type(), (ptr,)))

    def ld(self, ptr, name=None):
        """Load the value behind a pointer."""
        if not ptr.type.is_pointer:
            raise TypeError(f"ld needs a pointer, got {ptr.type}")
        return self.insert(Instruction(
            "ld", ptr.type.pointee, (ptr,), None, name))

    def st(self, ptr, value):
        """Store a value through a pointer."""
        if not ptr.type.is_pointer:
            raise TypeError(f"st needs a pointer, got {ptr.type}")
        if value.type is not ptr.type.pointee:
            raise TypeError(
                f"st value type {value.type} does not match {ptr.type}")
        return self.insert(Instruction("st", void_type(), (ptr, value)))

    # -- control and time flow ------------------------------------------------------------

    def call(self, callee, args=(), result_type=None, name=None):
        """Call a function (or an ``llhd.*`` intrinsic)."""
        callee_name = callee if isinstance(callee, str) else callee.name
        ty = result_type if result_type is not None else void_type()
        return self.insert(Instruction(
            "call", ty, tuple(args), {"callee": callee_name}, name))

    def br(self, dest):
        """Unconditional branch."""
        return self.insert(Instruction("br", void_type(), (dest,)))

    def br_cond(self, cond, dest_false, dest_true):
        """Conditional branch: ``br %cond, %bb_false, %bb_true``."""
        if not cond.type.is_int or cond.type.width != 1:
            raise TypeError(f"branch condition must be i1, got {cond.type}")
        return self.insert(Instruction(
            "br", void_type(), (cond, dest_false, dest_true)))

    def wait(self, dest, time=None, signals=()):
        """Suspend until a signal changes and/or a time has passed."""
        operands = [dest]
        attrs = {"has_time": time is not None}
        if time is not None:
            if not time.type.is_time:
                raise TypeError(f"wait time must be a time, got {time.type}")
            operands.append(time)
        for s in signals:
            if not s.type.is_signal:
                raise TypeError(f"wait observes signals, got {s.type}")
            operands.append(s)
        return self.insert(Instruction("wait", void_type(), operands, attrs))

    def halt(self):
        """Suspend the process forever."""
        return self.insert(Instruction("halt", void_type()))

    def ret(self, value=None):
        """Return from a function (optionally with a value)."""
        operands = (value,) if value is not None else ()
        return self.insert(Instruction("ret", void_type(), operands))
