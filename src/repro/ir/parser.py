"""Parser for the human-readable LLHD assembly.

Grammar and operand layouts mirror :mod:`repro.ir.printer` exactly, so the
two round-trip.  Because LLHD text is self-describing (every instruction
carries type annotations for its operands), the parser can build typed IR in
a single pass; only phi incoming values may reference not-yet-defined
values, which are resolved through placeholders at the end of each unit.
"""

from __future__ import annotations

import re

from .builder import Builder
from .instructions import (
    BINARY_OPS, CAST_OPS, COMPARE_OPS, Instruction, UNARY_OPS,
)
from .ninevalued import LogicVec
from .types import (
    array_type, enum_type, int_type, logic_type, pointer_type, signal_type,
    struct_type, time_type, void_type,
)
from .units import Entity, Function, Module, Process, UnitDecl
from .values import TimeValue, Value


class ParseError(Exception):
    """Raised on malformed LLHD assembly, with a line number."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


_TOKEN_RE = re.compile(r"""
    (?P<ws>[ \t\r\n]+)
  | (?P<comment>;[^\n]*)
  | (?P<arrow>->)
  | (?P<timepart>\d+\.\d+[a-z]+|\d+[a-z]+\d*[a-z]*)
  | (?P<number>-?\d+)
  | (?P<global>@[A-Za-z0-9_.\-]+)
  | (?P<local>%[A-Za-z0-9_.\-]+)
  | (?P<string>"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[(){}\[\],:=*$])
""", re.VERBOSE)

# timepart matches e.g. "1ns", "2d", "0s", "1.5us", and also bare width
# suffixed idents like "32" + "x"?  No: "x" separator lexes as ident.


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text):
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line)
        kind = m.lastgroup
        value = m.group()
        line += value.count("\n")
        pos = m.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, value, line))
    tokens.append(_Token("eof", "", line))
    return tokens


class _Placeholder(Value):
    """Stand-in for a phi operand defined later in the unit."""

    def __init__(self, type, ref_name, line):
        super().__init__(type, ref_name)
        self.ref_name = ref_name
        self.line = line


class Parser:
    """Recursive-descent parser for LLHD assembly text."""

    def __init__(self, text):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    @property
    def tok(self):
        return self.tokens[self.pos]

    def advance(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def check(self, kind, text=None):
        tok = self.tok
        if tok.kind != kind:
            return False
        if text is not None and tok.text != text:
            return False
        return True

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        tok = self.accept(kind, text)
        if tok is None:
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {self.tok.text!r}", self.tok.line)
        return tok

    def error(self, message):
        raise ParseError(message, self.tok.line)

    # -- types ---------------------------------------------------------------

    def parse_type(self):
        ty = self._parse_base_type()
        while True:
            if self.accept("punct", "*"):
                ty = pointer_type(ty)
            elif self.accept("punct", "$"):
                ty = signal_type(ty)
            else:
                return ty

    def _parse_base_type(self):
        if self.accept("punct", "["):
            length = int(self.expect("number").text)
            self.expect("ident", "x")
            elem = self.parse_type()
            self.expect("punct", "]")
            return array_type(length, elem)
        if self.accept("punct", "{"):
            fields = []
            if not self.check("punct", "}"):
                fields.append(self.parse_type())
                while self.accept("punct", ","):
                    fields.append(self.parse_type())
            self.expect("punct", "}")
            return struct_type(fields)
        tok = self.expect("ident")
        name = tok.text
        if name == "void":
            return void_type()
        if name == "time":
            return time_type()
        m = re.fullmatch(r"([inl])(\d+)", name)
        if m:
            kind, width = m.group(1), int(m.group(2))
            if kind == "i":
                return int_type(width)
            if kind == "n":
                return enum_type(width)
            return logic_type(width)
        raise ParseError(f"unknown type {name!r}", tok.line)

    # -- module --------------------------------------------------------------

    def parse_module(self, name="module"):
        module = Module(name)
        while not self.check("eof"):
            if self.check("ident", "declare"):
                module.declare(self._parse_declaration())
            elif self.check("ident", "func"):
                module.add(self._parse_function())
            elif self.check("ident", "proc"):
                module.add(self._parse_process())
            elif self.check("ident", "entity"):
                module.add(self._parse_entity())
            else:
                self.error(f"expected unit, found {self.tok.text!r}")
        return module

    def _parse_declaration(self):
        self.expect("ident", "declare")
        kind = self.expect("ident").text
        if kind not in ("func", "proc", "entity"):
            self.error(f"invalid declared unit kind {kind!r}")
        name = self.expect("global").text[1:]
        self.expect("punct", "(")
        ins = []
        if not self.check("punct", ")"):
            ins.append(self.parse_type())
            while self.accept("punct", ","):
                ins.append(self.parse_type())
        self.expect("punct", ")")
        if kind == "func":
            ret = self.parse_type()
            return UnitDecl(name, kind, ins, (), ret)
        self.expect("arrow")
        self.expect("punct", "(")
        outs = []
        if not self.check("punct", ")"):
            outs.append(self.parse_type())
            while self.accept("punct", ","):
                outs.append(self.parse_type())
        self.expect("punct", ")")
        return UnitDecl(name, kind, ins, outs)

    def _parse_arg_list(self):
        """Parse ``(T %name, ...)`` returning (types, names)."""
        self.expect("punct", "(")
        types, names = [], []
        if not self.check("punct", ")"):
            while True:
                types.append(self.parse_type())
                names.append(self.expect("local").text[1:])
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        return types, names

    def _parse_function(self):
        self.expect("ident", "func")
        name = self.expect("global").text[1:]
        types, names = self._parse_arg_list()
        ret = self.parse_type()
        unit = Function(name, types, names, ret)
        self._parse_body(unit)
        return unit

    def _parse_process(self):
        self.expect("ident", "proc")
        name = self.expect("global").text[1:]
        in_types, in_names = self._parse_arg_list()
        self.expect("arrow")
        out_types, out_names = self._parse_arg_list()
        unit = Process(name, in_types, in_names, out_types, out_names)
        self._parse_body(unit)
        return unit

    def _parse_entity(self):
        self.expect("ident", "entity")
        name = self.expect("global").text[1:]
        in_types, in_names = self._parse_arg_list()
        self.expect("arrow")
        out_types, out_names = self._parse_arg_list()
        unit = Entity(name, in_types, in_names, out_types, out_names)
        self.expect("punct", "{")
        self.values = {a.name: a for a in unit.args}
        self.blocks = {}
        self.placeholders = []
        builder = Builder.at_end(unit.body)
        while not self.check("punct", "}"):
            self._parse_instruction(builder)
        self.expect("punct", "}")
        self._resolve_placeholders()
        return unit

    def _parse_body(self, unit):
        """Parse ``{ label: inst* ... }`` for control-flow units."""
        self.expect("punct", "{")
        self.values = {a.name: a for a in unit.args}
        self.blocks = {}
        self.placeholders = []
        # Pre-scan for block labels so forward branches resolve.
        depth = 1
        i = self.pos
        while depth > 0:
            tok = self.tokens[i]
            if tok.kind == "punct" and tok.text == "{":
                depth += 1
            elif tok.kind == "punct" and tok.text == "}":
                depth -= 1
            elif (tok.kind == "ident" and self.tokens[i + 1].kind == "punct"
                  and self.tokens[i + 1].text == ":" and depth == 1):
                label = tok.text
                if label in self.blocks:
                    raise ParseError(f"duplicate block label {label!r}",
                                     tok.line)
                self.blocks[label] = unit.create_block(label)
            elif tok.kind == "eof":
                self.error("unterminated unit body")
            i += 1
        builder = Builder()
        while not self.check("punct", "}"):
            label_tok = self.expect("ident")
            self.expect("punct", ":")
            block = self.blocks[label_tok.text]
            builder.set_insert_point(block)
            while not self.check("punct", "}") and not self._at_label():
                self._parse_instruction(builder)
        self.expect("punct", "}")
        self._resolve_placeholders()

    def _at_label(self):
        return (self.tok.kind == "ident"
                and self.tokens[self.pos + 1].kind == "punct"
                and self.tokens[self.pos + 1].text == ":")

    def _resolve_placeholders(self):
        for ph in self.placeholders:
            value = self.values.get(ph.ref_name)
            if value is None:
                raise ParseError(f"undefined value %{ph.ref_name}", ph.line)
            if value.type is not ph.type:
                raise ParseError(
                    f"%{ph.ref_name} has type {value.type}, "
                    f"expected {ph.type}", ph.line)
            ph.replace_all_uses_with(value)

    # -- values ----------------------------------------------------------------

    def _define(self, name, value):
        if name in self.values:
            raise ParseError(f"redefinition of %{name}", self.tok.line)
        value.name = name
        self.values[name] = value
        return value

    def _value(self, expected_type=None):
        """Parse ``%name`` and resolve it against the symbol table."""
        tok = self.expect("local")
        name = tok.text[1:]
        value = self.values.get(name)
        if value is None:
            raise ParseError(f"undefined value %{name}", tok.line)
        if expected_type is not None and value.type is not expected_type:
            raise ParseError(
                f"%{name} has type {value.type}, expected {expected_type}",
                tok.line)
        return value

    def _value_or_placeholder(self, expected_type):
        """Parse ``%name``; allow forward references (phi operands)."""
        tok = self.expect("local")
        name = tok.text[1:]
        value = self.values.get(name)
        if value is not None:
            if value.type is not expected_type:
                raise ParseError(
                    f"%{name} has type {value.type}, "
                    f"expected {expected_type}", tok.line)
            return value
        ph = _Placeholder(expected_type, name, tok.line)
        self.placeholders.append(ph)
        return ph

    def _block_ref(self):
        tok = self.expect("local")
        name = tok.text[1:]
        block = self.blocks.get(name)
        if block is None:
            raise ParseError(f"undefined block %{name}", tok.line)
        return block

    def _typed_value(self):
        """Parse ``T %name`` and check the annotation."""
        ty = self.parse_type()
        return self._value(ty)

    # -- instructions -------------------------------------------------------------

    _ALIASES = {"div": "udiv", "mod": "umod", "rem": "urem"}

    def _parse_instruction(self, builder):
        result_name = None
        if self.check("local"):
            result_name = self.advance().text[1:]
            self.expect("punct", "=")
            if self.check("punct", "["):
                return self._parse_array_literal(builder, result_name)
            if self.check("punct", "{"):
                return self._parse_struct_literal(builder, result_name)
        tok = self.expect("ident")
        op = self._ALIASES.get(tok.text, tok.text)
        handler = getattr(self, f"_inst_{op}", None)
        if handler is None and op in BINARY_OPS | COMPARE_OPS:
            handler = self._inst_binary_like
        elif handler is None and op in UNARY_OPS:
            handler = self._inst_unary
        elif handler is None and op in CAST_OPS:
            handler = self._inst_cast
        if handler is None:
            raise ParseError(f"unknown instruction {op!r}", tok.line)
        inst = handler(builder, op)
        if result_name is not None:
            if inst.type.is_void:
                raise ParseError(
                    f"{op} produces no result to bind", tok.line)
            self._define(result_name, inst)
        return inst

    def _parse_array_literal(self, builder, result_name):
        self.expect("punct", "[")
        # Splat form: [N x T %v]; literal form: [T %a, %b, ...]
        if (self.check("number")
                and self.tokens[self.pos + 1].kind == "ident"
                and self.tokens[self.pos + 1].text == "x"):
            length = int(self.advance().text)
            self.expect("ident", "x")
            ty = self.parse_type()
            value = self._value(ty)
            self.expect("punct", "]")
            inst = builder.array_splat(length, value)
        else:
            ty = self.parse_type()
            elems = [self._value(ty)]
            while self.accept("punct", ","):
                elems.append(self._value(ty))
            self.expect("punct", "]")
            inst = builder.array(elems)
        return self._define(result_name, inst)

    def _parse_struct_literal(self, builder, result_name):
        self.expect("punct", "{")
        fields = []
        if not self.check("punct", "}"):
            while True:
                fields.append(self._typed_value())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", "}")
        return self._define(result_name, builder.struct(fields))

    # Individual instruction parsers. Each returns the created Instruction.

    def _inst_const(self, builder, op):
        if self.check("ident", "time"):
            self.advance()
            value = self._parse_time_literal()
            return builder.const_time(value)
        ty = self.parse_type()
        if ty.is_logic:
            text = self.expect("string").text[1:-1]
            vec = LogicVec(text)
            if vec.width != ty.width:
                self.error(f"logic constant width {vec.width} != {ty}")
            return builder.const_logic(vec)
        value = int(self.expect("number").text)
        return builder.const_int(ty, value)

    def _parse_time_literal(self):
        fs = delta = eps = 0
        saw = False
        while True:
            if self.check("timepart"):
                text = self.advance().text
                saw = True
                if text.endswith("d") and text[:-1].isdigit():
                    delta = int(text[:-1])
                elif text.endswith("e") and text[:-1].isdigit():
                    eps = int(text[:-1])
                else:
                    fs = TimeValue.parse(text).fs
            elif self.check("number", "0"):
                # bare "0" is not a valid unit; require 0s
                self.error("time literal needs a unit (e.g. 0s)")
            else:
                break
        if not saw:
            self.error("expected time literal")
        return TimeValue(fs, delta, eps)

    def _inst_binary_like(self, builder, op):
        ty = self.parse_type()
        a = self._value(ty)
        self.expect("punct", ",")
        if op in ("shl", "shr"):
            b = self._value()
            return builder.binary(op, a, b)
        b = self._value(ty)
        if op in COMPARE_OPS:
            return builder.compare(op, a, b)
        return builder.binary(op, a, b)

    def _inst_unary(self, builder, op):
        ty = self.parse_type()
        a = self._value(ty)
        if op == "not":
            return builder.not_(a)
        return builder.neg(a)

    def _inst_cast(self, builder, op):
        ty = self.parse_type()
        a = self._value(ty)
        self.expect("ident", "to")
        to = self.parse_type()
        return getattr(builder, op)(a, to)

    def _inst_extf(self, builder, op):
        self.parse_type()  # result type (redundant; recomputed)
        self.expect("punct", ",")
        agg = self._typed_value()
        self.expect("punct", ",")
        if self.check("local"):
            index = self._value()
        else:
            index = int(self.expect("number").text)
        return builder.extf(agg, index)

    def _inst_insf(self, builder, op):
        agg = self._typed_value()
        self.expect("punct", ",")
        value = self._typed_value()
        self.expect("punct", ",")
        if self.check("local"):
            index = self._value()
        else:
            index = int(self.expect("number").text)
        return builder.insf(agg, value, index)

    def _inst_exts(self, builder, op):
        self.parse_type()
        self.expect("punct", ",")
        agg = self._typed_value()
        self.expect("punct", ",")
        offset = int(self.expect("number").text)
        self.expect("punct", ",")
        length = int(self.expect("number").text)
        return builder.exts(agg, offset, length)

    def _inst_inss(self, builder, op):
        agg = self._typed_value()
        self.expect("punct", ",")
        value = self._typed_value()
        self.expect("punct", ",")
        offset = int(self.expect("number").text)
        self.expect("punct", ",")
        length = int(self.expect("number").text)
        return builder.inss(agg, value, offset, length)

    def _inst_mux(self, builder, op):
        self.parse_type()  # element type
        arr = self._value()
        self.expect("punct", ",")
        sel = self._value()
        return builder.mux(arr, sel)

    def _inst_phi(self, builder, op):
        ty = self.parse_type()
        pairs = []
        while True:
            self.expect("punct", "[")
            value = self._value_or_placeholder(ty)
            self.expect("punct", ",")
            block = self._block_ref()
            self.expect("punct", "]")
            pairs.append((value, block))
            if not self.accept("punct", ","):
                break
        return builder.phi(pairs)

    def _inst_sig(self, builder, op):
        init = self._typed_value()
        return builder.sig(init)

    def _inst_prb(self, builder, op):
        sig = self._typed_value()
        return builder.prb(sig)

    def _inst_drv(self, builder, op):
        sig = self._typed_value()
        self.expect("punct", ",")
        value = self._value(sig.type.element)
        self.expect("ident", "after")
        delay = self._value()
        cond = None
        if self.accept("ident", "if"):
            cond = self._value()
        return builder.drv(sig, value, delay, cond)

    def _inst_con(self, builder, op):
        a = self._typed_value()
        self.expect("punct", ",")
        b = self._value(a.type)
        return builder.con(a, b)

    def _inst_del(self, builder, op):
        src = self._typed_value()
        self.expect("ident", "after")
        delay = self._value()
        return builder.delayed(src, delay)

    def _inst_reg(self, builder, op):
        sig = self._typed_value()
        triggers = []
        while self.accept("punct", ","):
            value = self._value(sig.type.element)
            mode_tok = self.expect("ident")
            if mode_tok.text not in ("low", "high", "rise", "fall", "both"):
                raise ParseError(
                    f"invalid reg trigger mode {mode_tok.text!r}",
                    mode_tok.line)
            trigger = self._value()
            cond = delay = None
            if self.accept("ident", "if"):
                cond = self._value()
            if self.accept("ident", "after"):
                delay = self._value()
            triggers.append((mode_tok.text, value, trigger, cond, delay))
        if not triggers:
            self.error("reg needs at least one trigger clause")
        return builder.reg(sig, triggers)

    def _inst_inst(self, builder, op):
        callee = self.expect("global").text[1:]
        self.expect("punct", "(")
        inputs = []
        if not self.check("punct", ")"):
            while True:
                inputs.append(self._typed_value())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        self.expect("arrow")
        self.expect("punct", "(")
        outputs = []
        if not self.check("punct", ")"):
            while True:
                outputs.append(self._typed_value())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        return builder.inst(callee, inputs, outputs)

    def _inst_var(self, builder, op):
        return builder.var(self._typed_value())

    def _inst_alloc(self, builder, op):
        return builder.alloc(self._typed_value())

    def _inst_free(self, builder, op):
        return builder.free(self._typed_value())

    def _inst_ld(self, builder, op):
        return builder.ld(self._typed_value())

    def _inst_st(self, builder, op):
        ptr = self._typed_value()
        self.expect("punct", ",")
        value = self._value(ptr.type.pointee)
        return builder.st(ptr, value)

    def _inst_call(self, builder, op):
        ty = self.parse_type()
        callee = self.expect("global").text[1:]
        self.expect("punct", "(")
        args = []
        if not self.check("punct", ")"):
            while True:
                args.append(self._typed_value())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        return builder.call(callee, args, ty)

    def _inst_br(self, builder, op):
        first = self.expect("local").text[1:]
        if self.accept("punct", ","):
            cond = self.values.get(first)
            if cond is None:
                self.error(f"undefined value %{first}")
            dest_false = self._block_ref()
            self.expect("punct", ",")
            dest_true = self._block_ref()
            return builder.br_cond(cond, dest_false, dest_true)
        block = self.blocks.get(first)
        if block is None:
            self.error(f"undefined block %{first}")
        return builder.br(block)

    def _inst_wait(self, builder, op):
        dest = self._block_ref()
        time = None
        signals = []
        if self.accept("ident", "for"):
            while True:
                value = self._value()
                if value.type.is_time:
                    if time is not None:
                        self.error("wait has more than one time operand")
                    time = value
                else:
                    signals.append(value)
                if not self.accept("punct", ","):
                    break
        return builder.wait(dest, time, signals)

    def _inst_halt(self, builder, op):
        return builder.halt()

    def _inst_ret(self, builder, op):
        if self.check("ident") and not self._at_label():
            # "ret T %v" — a type follows
            value = self._typed_value()
            return builder.ret(value)
        if self.check("punct", "[") or self.check("punct", "{"):
            value = self._typed_value()
            return builder.ret(value)
        return builder.ret()


def parse_module(text, name="module"):
    """Parse LLHD assembly text into a :class:`Module`."""
    return Parser(text).parse_module(name)


def parse_type_text(text):
    """Parse a standalone type, e.g. ``"i32$"``."""
    parser = Parser(text)
    ty = parser.parse_type()
    if not parser.check("eof"):
        parser.error("trailing input after type")
    return ty
