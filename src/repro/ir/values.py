"""SSA values, uses, arguments, blocks, and the ``time`` constant value.

LLHD adheres to SSA form: every value has a single, static definition, which
maps directly onto digital circuits where every wire has a single driver.
The in-memory design follows LLVM: instructions *are* values, operands are
explicit references, and every value maintains a use list so passes can
rewrite the graph with ``replace_all_uses_with``.
"""

from __future__ import annotations

from .types import label_type


class TimeValue:
    """A point in time or a delay: ``(femtoseconds, delta, epsilon)``.

    LLHD models simulation time as physical time in femtoseconds plus two
    sub-physical ordering dimensions: the *delta* step orders zero-time
    iterations (as in VHDL delta cycles), and the *epsilon* step orders
    drive application inside one delta.
    """

    __slots__ = ("fs", "delta", "epsilon")

    _UNITS = {"s": 10**15, "ms": 10**12, "us": 10**9, "ns": 10**6,
              "ps": 10**3, "fs": 1}

    def __init__(self, fs=0, delta=0, epsilon=0):
        self.fs = fs
        self.delta = delta
        self.epsilon = epsilon

    @classmethod
    def parse(cls, text):
        """Parse a physical time literal such as ``"2ns"`` or ``"1.5us"``."""
        text = text.strip()
        for unit in sorted(cls._UNITS, key=len, reverse=True):
            if text.endswith(unit):
                num = text[: -len(unit)]
                scale = cls._UNITS[unit]
                if "." in num:
                    whole, frac = num.split(".", 1)
                    fs = int(whole or 0) * scale
                    fs += int(frac) * scale // 10 ** len(frac)
                else:
                    fs = int(num) * scale
                return cls(fs)
        raise ValueError(f"invalid time literal {text!r}")

    def as_tuple(self):
        return (self.fs, self.delta, self.epsilon)

    @property
    def is_zero(self):
        return self.fs == 0 and self.delta == 0 and self.epsilon == 0

    def __eq__(self, other):
        return (isinstance(other, TimeValue)
                and self.as_tuple() == other.as_tuple())

    def __lt__(self, other):
        return self.as_tuple() < other.as_tuple()

    def __le__(self, other):
        return self.as_tuple() <= other.as_tuple()

    def __hash__(self):
        return hash(("TimeValue",) + self.as_tuple())

    def __str__(self):
        parts = [format_fs(self.fs)]
        if self.delta or self.epsilon:
            parts.append(f"{self.delta}d")
        if self.epsilon:
            parts.append(f"{self.epsilon}e")
        return " ".join(parts)

    def __repr__(self):
        return f"TimeValue({self.fs}, {self.delta}, {self.epsilon})"


def format_fs(fs):
    """Format femtoseconds using the largest exact unit, e.g. ``2000000 -> 2ns``."""
    if fs == 0:
        return "0s"
    for unit, scale in sorted(TimeValue._UNITS.items(), key=lambda kv: -kv[1]):
        if fs % scale == 0:
            return f"{fs // scale}{unit}"
    return f"{fs}fs"


class Use:
    """One use of a value: ``user.operands[index] is value``."""

    __slots__ = ("user", "index")

    def __init__(self, user, index):
        self.user = user
        self.index = index

    def __repr__(self):
        return f"Use({self.user!r}, {self.index})"


class Value:
    """Base class for everything that can appear as an operand."""

    #: Monotonic creation counter.  ``serial`` gives every value a total
    #: order that tracks construction order — unlike ``id()``, which the
    #: allocator hands out arbitrarily, so two compiles of the same
    #: source agree on relative serials.  Passes that need a
    #: deterministic tie-break (e.g. DNF term ordering in deseq) sort by
    #: it; anything ordered by ``id()`` would flip run to run and leak
    #: into the emitted IR, breaking bitcode-hash-keyed caches.
    _next_serial = 0

    def __init__(self, type, name=None):
        self.type = type
        self.name = name
        self.uses = []
        self.serial = Value._next_serial
        Value._next_serial += 1

    @property
    def is_used(self):
        return bool(self.uses)

    def users(self):
        """Iterate over the distinct instructions using this value."""
        seen = set()
        for use in self.uses:
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    def replace_all_uses_with(self, new):
        """Rewrite every use of this value to refer to ``new`` instead."""
        if new is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, new)

    def _add_use(self, use):
        self.uses.append(use)

    def _remove_use(self, user, index):
        for i, use in enumerate(self.uses):
            if use.user is user and use.index == index:
                del self.uses[i]
                return
        raise AssertionError(f"use of {self!r} by {user!r}[{index}] not found")

    def __repr__(self):
        label = self.name if self.name is not None else "?"
        return f"<{type(self).__name__} %{label}: {self.type}>"


class Argument(Value):
    """A unit input or output argument.

    For processes and entities, ``direction`` distinguishes input signals
    from output signals; functions only have inputs.
    """

    def __init__(self, type, name, parent=None, direction="in"):
        super().__init__(type, name)
        self.parent = parent
        self.direction = direction


class Block(Value):
    """A basic block: an ordered list of instructions ending in a terminator.

    Blocks are values of label type so that branch instructions can refer to
    them through the regular operand/use machinery — this is what lets TCFE
    retarget edges with ``replace_all_uses_with``.
    """

    def __init__(self, name=None):
        super().__init__(label_type(), name)
        self.instructions = []
        self.parent = None  # owning unit

    # -- structural editing -------------------------------------------------

    def append(self, inst):
        """Append an instruction, maintaining parent links."""
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index, inst):
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst):
        """Unlink an instruction from this block (operand uses kept)."""
        self.instructions.remove(inst)
        inst.parent = None

    def index_of(self, inst):
        return self.instructions.index(inst)

    # -- queries --------------------------------------------------------------

    @property
    def terminator(self):
        """The terminator instruction, or None for (unfinished) blocks."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self):
        """Successor blocks in terminator operand order."""
        term = self.terminator
        if term is None:
            return []
        return [op for op in term.operands if isinstance(op, Block)]

    def predecessors(self):
        """Predecessor blocks (distinct, in discovery order)."""
        preds = []
        seen = set()
        for use in self.uses:
            user = use.user
            if user.is_terminator and user.parent is not None:
                pred = user.parent
                if id(pred) not in seen:
                    seen.add(id(pred))
                    preds.append(pred)
        return preds

    def phis(self):
        """The phi instructions at the head of this block."""
        out = []
        for inst in self.instructions:
            if inst.opcode == "phi":
                out.append(inst)
            else:
                break
        return out

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return f"<Block %{self.name or '?'} ({len(self.instructions)} insts)>"
