"""IEEE 1164 nine-valued logic.

The ``lN`` type models the states a physical signal wire may be in, beyond
the fundamental 0 and 1: drive strength, drive collisions, floating gates,
and unknown values.  The nine values are:

====== =============================
``U``  uninitialized
``X``  forcing unknown
``0``  forcing zero
``1``  forcing one
``Z``  high impedance
``W``  weak unknown
``L``  weak zero
``H``  weak one
``-``  don't care
====== =============================

This module provides the standard resolution function (used when multiple
drivers connect to one signal, e.g. through ``con``), the logical operation
tables, and :class:`LogicVec`, an immutable N-bit nine-valued vector.

Tables are transcribed from IEEE 1164-1993 and property-tested in
``tests/ir/test_ninevalued.py`` (commutativity, associativity, identity,
De Morgan over the 01 subset, resolution lattice behaviour).
"""

from __future__ import annotations

VALUES = "UX01ZWLH-"
_INDEX = {c: i for i, c in enumerate(VALUES)}

# Resolution table: the value observed on a wire driven by two sources.
# Rows/columns in the order of VALUES. IEEE 1164 std_logic resolution.
RESOLVE_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "U", "U", "U", "U", "U", "U"],  # U
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # X
    ["U", "X", "0", "X", "0", "0", "0", "0", "X"],  # 0
    ["U", "X", "X", "1", "1", "1", "1", "1", "X"],  # 1
    ["U", "X", "0", "1", "Z", "W", "L", "H", "X"],  # Z
    ["U", "X", "0", "1", "W", "W", "W", "W", "X"],  # W
    ["U", "X", "0", "1", "L", "W", "L", "W", "X"],  # L
    ["U", "X", "0", "1", "H", "W", "W", "H", "X"],  # H
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # -
]

# AND table (IEEE 1164 "and").
AND_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "0", "U", "U", "U", "0", "U", "U"],  # U
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # X
    ["0", "0", "0", "0", "0", "0", "0", "0", "0"],  # 0
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # 1
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # Z
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # W
    ["0", "0", "0", "0", "0", "0", "0", "0", "0"],  # L
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # H
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # -
]

# OR table (IEEE 1164 "or").
OR_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "1", "U", "U", "U", "1", "U"],  # U
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # X
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # 0
    ["1", "1", "1", "1", "1", "1", "1", "1", "1"],  # 1
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # Z
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # W
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # L
    ["1", "1", "1", "1", "1", "1", "1", "1", "1"],  # H
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # -
]

# XOR table (IEEE 1164 "xor").
XOR_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "U", "U", "U", "U", "U", "U"],  # U
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # X
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # 0
    ["U", "X", "1", "0", "X", "X", "1", "0", "X"],  # 1
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # Z
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # W
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # L
    ["U", "X", "1", "0", "X", "X", "1", "0", "X"],  # H
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # -
]

# NOT table.
NOT_TABLE = {
    "U": "U", "X": "X", "0": "1", "1": "0", "Z": "X",
    "W": "X", "L": "1", "H": "0", "-": "X",
}

# Conversion to the X01 subset.
TO_X01 = {
    "U": "X", "X": "X", "0": "0", "1": "1", "Z": "X",
    "W": "X", "L": "0", "H": "1", "-": "X",
}


def resolve_bits(a, b):
    """Resolve two single-bit logic values driven onto the same wire."""
    return RESOLVE_TABLE[_INDEX[a]][_INDEX[b]]


def and_bits(a, b):
    """Nine-valued AND of two single-bit values."""
    return AND_TABLE[_INDEX[a]][_INDEX[b]]


def or_bits(a, b):
    """Nine-valued OR of two single-bit values."""
    return OR_TABLE[_INDEX[a]][_INDEX[b]]


def xor_bits(a, b):
    """Nine-valued XOR of two single-bit values."""
    return XOR_TABLE[_INDEX[a]][_INDEX[b]]


def not_bit(a):
    """Nine-valued NOT of a single-bit value."""
    return NOT_TABLE[a]


class LogicVec:
    """An immutable N-bit nine-valued logic vector.

    Bits are stored MSB-first as a string over :data:`VALUES`, matching the
    textual constant syntax ``const l4 "01XZ"``.
    """

    __slots__ = ("bits",)

    def __init__(self, bits):
        if not bits:
            raise ValueError("logic vector must have >= 1 bit")
        for b in bits:
            if b not in _INDEX:
                raise ValueError(f"invalid logic value {b!r}")
        object.__setattr__(self, "bits", str(bits))

    def __setattr__(self, name, value):
        raise AttributeError("LogicVec is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_int(cls, value, width):
        """Build a vector from an integer, two's-complement truncated."""
        value &= (1 << width) - 1
        return cls(format(value, f"0{width}b"))

    @classmethod
    def filled(cls, bit, width):
        """Build a vector with all bits set to ``bit`` (e.g. all-``X``)."""
        return cls(bit * width)

    # -- queries -----------------------------------------------------------

    @property
    def width(self):
        return len(self.bits)

    @property
    def is_two_valued(self):
        """True if every bit maps cleanly onto 0 or 1 (including L/H)."""
        return all(TO_X01[b] in "01" for b in self.bits)

    def to_int(self):
        """Interpret as an unsigned integer; requires :attr:`is_two_valued`."""
        if not self.is_two_valued:
            raise ValueError(f"logic vector {self.bits!r} has no integer value")
        return int("".join(TO_X01[b] for b in self.bits), 2)

    def to_x01(self):
        """Map every bit into the {X, 0, 1} subset."""
        return LogicVec("".join(TO_X01[b] for b in self.bits))

    # -- bitwise operations --------------------------------------------------

    def _zip(self, other, table):
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")
        return LogicVec("".join(table(a, b) for a, b in zip(self.bits, other.bits)))

    def and_(self, other):
        return self._zip(other, and_bits)

    def or_(self, other):
        return self._zip(other, or_bits)

    def xor(self, other):
        return self._zip(other, xor_bits)

    def not_(self):
        return LogicVec("".join(not_bit(b) for b in self.bits))

    def resolve(self, other):
        """Bitwise resolution with another driver's value."""
        return self._zip(other, resolve_bits)

    # -- dunder plumbing -----------------------------------------------------

    def __eq__(self, other):
        return isinstance(other, LogicVec) and self.bits == other.bits

    def __hash__(self):
        return hash(("LogicVec", self.bits))

    def __str__(self):
        return self.bits

    def __repr__(self):
        return f'LogicVec("{self.bits}")'


def resolve_many(values):
    """Resolve a non-empty list of :class:`LogicVec` drivers into one value."""
    it = iter(values)
    acc = next(it)
    for v in it:
        acc = acc.resolve(v)
    return acc
