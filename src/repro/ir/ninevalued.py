"""IEEE 1164 nine-valued logic, bit-plane packed.

The ``lN`` type models the states a physical signal wire may be in, beyond
the fundamental 0 and 1: drive strength, drive collisions, floating gates,
and unknown values.  The nine values are:

====== =============================
``U``  uninitialized
``X``  forcing unknown
``0``  forcing zero
``1``  forcing one
``Z``  high impedance
``W``  weak unknown
``L``  weak zero
``H``  weak one
``-``  don't care
====== =============================

Representation
--------------

:class:`LogicVec` packs an N-bit vector into **four parallel width-bit
integers** (bit planes), the dense machine layout the paper's llhd-sim
uses for signal state instead of one heap object per bit:

======== =====================================================
``val``  1 where the X01 interpretation of the bit is ``1``
         (states ``1 H Z -``; for ``Z``/``-`` the bit serves
         only to distinguish states inside the unknown group)
``unk``  1 where the bit is not two-valued (``U X Z W -``)
``weak`` 1 for the weak-strength states (``W L H``)
``aux``  1 for ``U`` and ``-`` (disambiguates the unknown group)
======== =====================================================

Every state has a unique ``(unk, val, weak, aux)`` tuple::

    0=0000  1=0100  L=0010  H=0110  X=1000
    Z=1100  W=1010  U=1001  -=1101      (order: unk val weak aux)

All bitwise operations — AND/OR/XOR/NOT, the IEEE 1164 resolution
function, X01 normalization, zero/sign extension, truncation, slicing and
splicing — are O(1) whole-vector integer expressions on the planes; no
per-bit Python loop survives.  Useful derived masks::

    hi = val & ~unk          # bits that read as 1   (1, H)
    lo = ~val & ~unk & M     # bits that read as 0   (0, L)
    uu = unk & aux & ~val    # uninitialized bits    (U)

The external interface is unchanged: ``bits`` is still the MSB-first
string over :data:`VALUES` (materialized lazily, and what the printer and
bitcode serialize), ``from_int``/``filled``/the text constructor behave
exactly as before, and equality/hashing agree with the string semantics.

The packed operations are property- and exhaustively tested against the
verbatim IEEE 1164-1993 tables, which live in ``tests/ir/oracle1164.py``
as a test-only reference oracle (all 81 operand pairs per binary table,
resolution lattice laws, and random wide vectors against the bitwise
zip of the oracle).
"""

from __future__ import annotations

VALUES = "UX01ZWLH-"

# Conversion to the X01 subset (kept here because it is interface, not
# implementation: eq/neq and ``to_x01`` are specified in terms of it).
TO_X01 = {
    "U": "X", "X": "X", "0": "0", "1": "1", "Z": "X",
    "W": "X", "L": "0", "H": "1", "-": "X",
}

# Per-state plane membership, in VALUES order  U X 0 1 Z W L H -
_VAL_TR = str.maketrans(VALUES, "000110011")
_UNK_TR = str.maketrans(VALUES, "110011001")
_WEAK_TR = str.maketrans(VALUES, "000001110")
_AUX_TR = str.maketrans(VALUES, "100000001")
_VALID = frozenset(VALUES)

# Rendering: plane bits -> state character.  The 4-bit code is
# val | unk<<1 | weak<<2 | aux<<3; invalid combinations cannot be
# constructed through the public API.
_CODE_CHARS = ["0", "1", "X", "Z", "L", "H", "W", "?",
               "?", "?", "U", "-", "?", "?", "?", "?"]


class LogicVec:
    """An immutable N-bit nine-valued logic vector (bit-plane packed).

    Bits are presented MSB-first through :attr:`bits` as a string over
    :data:`VALUES`, matching the textual constant syntax ``const l4
    "01XZ"``; bit 0 (the last character) is the least significant bit of
    each plane integer.

    Immutability is part of the public contract — every operation
    returns a new vector, ``bits``/``width`` are read-only properties,
    and equality/hashing assume the planes never change.  It is enforced
    at the API surface, not with a ``__setattr__`` guard: a guard forces
    every internal write through ``object.__setattr__`` and measured
    ~2× on the hot whole-vector operations, defeating the point of the
    packed representation.  The underscore plane slots are write-once
    internals; nothing outside this module may assign them.
    """

    __slots__ = ("_width", "_val", "_unk", "_weak", "_aux", "_bits")

    def __init__(self, bits):
        bits = str(bits)
        if not bits:
            raise ValueError("logic vector must have >= 1 bit")
        if not _VALID.issuperset(bits):
            for b in bits:
                if b not in _VALID:
                    raise ValueError(f"invalid logic value {b!r}")
        self._width = len(bits)
        self._val = int(bits.translate(_VAL_TR), 2)
        self._unk = int(bits.translate(_UNK_TR), 2)
        self._weak = int(bits.translate(_WEAK_TR), 2)
        self._aux = int(bits.translate(_AUX_TR), 2)
        self._bits = bits

    @classmethod
    def _make(cls, width, val, unk, weak, aux):
        """Internal constructor from already-canonical planes."""
        self = object.__new__(cls)
        self._width = width
        self._val = val
        self._unk = unk
        self._weak = weak
        self._aux = aux
        self._bits = None
        return self

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_int(cls, value, width):
        """Build a vector from an integer, two's-complement truncated."""
        if width < 1:
            raise ValueError("logic vector must have >= 1 bit")
        return cls._make(width, value & ((1 << width) - 1), 0, 0, 0)

    @classmethod
    def filled(cls, bit, width):
        """Build a vector with all bits set to ``bit`` (e.g. all-``X``)."""
        if bit not in _VALID or len(bit) != 1:
            raise ValueError(f"invalid logic value {bit!r}")
        if width < 1:
            raise ValueError("logic vector must have >= 1 bit")
        m = (1 << width) - 1
        return cls._make(
            width,
            m if bit in "1HZ-" else 0,
            m if bit in "UXZW-" else 0,
            m if bit in "WLH" else 0,
            m if bit in "U-" else 0)

    # -- queries -----------------------------------------------------------

    @property
    def width(self):
        return self._width

    @property
    def bits(self):
        """The MSB-first string form (materialized lazily, then cached)."""
        b = self._bits
        if b is None:
            width, val, unk, weak, aux = \
                self._width, self._val, self._unk, self._weak, self._aux
            if unk == 0 and weak == 0:
                b = format(val, f"0{width}b")
            else:
                chars = _CODE_CHARS
                b = "".join(
                    chars[(val >> j) & 1 | ((unk >> j) & 1) << 1
                          | ((weak >> j) & 1) << 2 | ((aux >> j) & 1) << 3]
                    for j in range(width - 1, -1, -1))
            self._bits = b
        return b

    @property
    def is_two_valued(self):
        """True if every bit maps cleanly onto 0 or 1 (including L/H)."""
        return self._unk == 0

    def to_int(self):
        """Interpret as an unsigned integer; requires :attr:`is_two_valued`."""
        if self._unk:
            raise ValueError(f"logic vector {self.bits!r} has no integer value")
        return self._val

    def to_x01(self):
        """Map every bit into the {X, 0, 1} subset."""
        unk = self._unk
        return LogicVec._make(self._width, self._val & ~unk, unk, 0, 0)

    # -- bitwise operations --------------------------------------------------

    def _check_width(self, other):
        if self._width != other._width:
            raise ValueError(
                f"width mismatch: {self._width} vs {other._width}")

    def and_(self, other):
        """Nine-valued AND: 0 dominates, then U, then X; weak reads 01."""
        self._check_width(other)
        m = (1 << self._width) - 1
        known_a, known_b = ~self._unk, ~other._unk
        lo = (~self._val & known_a | ~other._val & known_b) & m
        r1 = self._val & known_a & other._val & known_b
        uu = (self._unk & self._aux & ~self._val
              | other._unk & other._aux & ~other._val) & ~lo
        return LogicVec._make(self._width, r1, m & ~(lo | r1), 0, uu)

    def or_(self, other):
        """Nine-valued OR: 1 dominates, then U, then X."""
        self._check_width(other)
        m = (1 << self._width) - 1
        known_a, known_b = ~self._unk, ~other._unk
        r1 = self._val & known_a | other._val & known_b
        lo = ~self._val & known_a & ~other._val & known_b & m
        uu = (self._unk & self._aux & ~self._val
              | other._unk & other._aux & ~other._val) & ~r1
        return LogicVec._make(self._width, r1, m & ~(lo | r1), 0, uu)

    def xor(self, other):
        """Nine-valued XOR: U dominates; any other unknown gives X."""
        self._check_width(other)
        m = (1 << self._width) - 1
        uu = (self._unk & self._aux & ~self._val
              | other._unk & other._aux & ~other._val)
        both2 = m & ~self._unk & ~other._unk
        r1 = (self._val ^ other._val) & both2
        return LogicVec._make(self._width, r1, m & ~both2, 0, uu)

    def not_(self):
        """Nine-valued NOT: inverts 01/LH, keeps U, maps the rest to X."""
        m = (1 << self._width) - 1
        unk = self._unk
        return LogicVec._make(
            self._width, ~self._val & ~unk & m, unk,
            0, unk & self._aux & ~self._val)

    def resolve(self, other):
        """Bitwise IEEE 1164 resolution with another driver's value."""
        self._check_width(other)
        m = (1 << self._width) - 1
        a_unk, b_unk = self._unk, other._unk
        a_val, b_val = self._val, other._val
        a_weak, b_weak = self._weak, other._weak
        a_aux, b_aux = self._aux, other._aux
        uu = a_unk & a_aux & ~a_val | b_unk & b_aux & ~b_val
        # X and '-' force the result to X against everything but U.
        badx = (a_unk & ~a_weak & (~a_val | a_aux)
                | b_unk & ~b_weak & (~b_val | b_aux)) & ~uu
        rem = m & ~uu & ~badx
        # Forcing 0/1 beat weak and Z; a forcing conflict is X.
        f0a = ~a_val & ~a_unk & ~a_weak
        f1a = a_val & ~a_unk & ~a_weak
        f0b = ~b_val & ~b_unk & ~b_weak
        f1b = b_val & ~b_unk & ~b_weak
        any0 = (f0a | f0b) & rem
        any1 = (f1a | f1b) & rem
        conflict = any0 & any1
        r0f = any0 & ~any1
        r1f = any1 & ~any0
        # Neither driver forcing: both in {Z, W, L, H}.
        nf = rem & ~any0 & ~any1
        za = a_unk & a_val & ~a_aux
        zb = b_unk & b_val & ~b_aux
        wa, wb = a_unk & a_weak, b_unk & b_weak
        la, lb = ~a_unk & ~a_val & a_weak, ~b_unk & ~b_val & b_weak
        ha, hb = ~a_unk & a_val & a_weak, ~b_unk & b_val & b_weak
        r_z = za & zb & nf
        r_w = nf & (wa | wb | la & hb | ha & lb)
        r_l = nf & (la & (lb | zb) | za & lb)
        r_h = nf & (ha & (hb | zb) | za & hb)
        return LogicVec._make(
            self._width,
            r1f | r_z | r_h,
            uu | badx | conflict | r_z | r_w,
            r_w | r_l | r_h,
            uu)

    # -- width changes -------------------------------------------------------

    def zext(self, width):
        """Zero-extend to ``width`` bits (pad with ``0`` above the MSB)."""
        if width < self._width:
            raise ValueError(f"zext {self._width} to {width} is invalid")
        return LogicVec._make(width, self._val, self._unk, self._weak,
                              self._aux)

    def sext(self, width):
        """Sign-extend to ``width`` bits by replicating the MSB.

        A nine-valued MSB replicates as-is: an ``X`` sign bit yields
        ``X`` padding, matching IEEE 1164 intuition.
        """
        w = self._width
        if width < w:
            raise ValueError(f"sext {w} to {width} is invalid")
        pad = ((1 << (width - w)) - 1) << w
        j = w - 1
        return LogicVec._make(
            width,
            self._val | (pad if (self._val >> j) & 1 else 0),
            self._unk | (pad if (self._unk >> j) & 1 else 0),
            self._weak | (pad if (self._weak >> j) & 1 else 0),
            self._aux | (pad if (self._aux >> j) & 1 else 0))

    def trunc(self, width):
        """Truncate to the low ``width`` bits."""
        if width > self._width:
            raise ValueError(f"trunc {self._width} to {width} is invalid")
        m = (1 << width) - 1
        return LogicVec._make(width, self._val & m, self._unk & m,
                              self._weak & m, self._aux & m)

    # -- slicing / splicing ---------------------------------------------------

    def slice_(self, offset, length):
        """The ``length``-bit slice starting at LSB-based bit ``offset``."""
        m = (1 << length) - 1
        return LogicVec._make(
            length,
            (self._val >> offset) & m,
            (self._unk >> offset) & m,
            (self._weak >> offset) & m,
            (self._aux >> offset) & m)

    def splice(self, offset, other):
        """A copy with ``other`` written at LSB-based bit ``offset``."""
        if offset < 0 or offset + other._width > self._width:
            raise ValueError(
                f"splice of {other._width} bits at offset {offset} "
                f"does not fit a {self._width}-bit vector")
        keep = ~(((1 << other._width) - 1) << offset)
        return LogicVec._make(
            self._width,
            self._val & keep | other._val << offset,
            self._unk & keep | other._unk << offset,
            self._weak & keep | other._weak << offset,
            self._aux & keep | other._aux << offset)

    def concat(self, low):
        """This vector as the high bits above ``low``."""
        shift = low._width
        return LogicVec._make(
            self._width + shift,
            self._val << shift | low._val,
            self._unk << shift | low._unk,
            self._weak << shift | low._weak,
            self._aux << shift | low._aux)

    # -- dunder plumbing -----------------------------------------------------

    def __eq__(self, other):
        if isinstance(other, LogicVec):
            return (self._width == other._width
                    and self._val == other._val
                    and self._unk == other._unk
                    and self._weak == other._weak
                    and self._aux == other._aux)
        return False

    def __hash__(self):
        return hash(("LogicVec", self._width, self._val, self._unk,
                     self._weak, self._aux))

    def __str__(self):
        return self.bits

    def __repr__(self):
        return f'LogicVec("{self.bits}")'


# -- lane-widened (batched) plane helpers -----------------------------------
#
# Batch simulation packs K independent stimulus lanes into one LogicVec of
# width K*W, lane-strided: lane k occupies bits [k*W, (k+1)*W).  Because
# every nine-valued table op is a bitwise plane expression, a lane-widened
# vector runs AND/OR/XOR/NOT/resolve for all K lanes in the same single
# integer expression a scalar vector uses.  The helpers below are the only
# lane-aware primitives: replicate (broadcast), extract, insert, uniformity
# test, and lane-mask expansion.

_LANE_ONES = {}


def lane_ones(width, lanes):
    """The integer with bit ``k*width`` set for every lane k.

    Multiplying a W-bit lane value by this constant replicates it into
    all K lane positions at once.
    """
    key = (width, lanes)
    ones = _LANE_ONES.get(key)
    if ones is None:
        ones = 0
        for k in range(lanes):
            ones |= 1 << (k * width)
        _LANE_ONES[key] = ones
    return ones


def lane_broadcast_planes(width, lanes, val, unk, weak, aux):
    """Lane-widen scalar planes by replication; returns a LogicVec."""
    ones = lane_ones(width, lanes)
    return LogicVec._make(
        width * lanes, val * ones, unk * ones, weak * ones, aux * ones)


def lane_broadcast(value, lanes):
    """Replicate a scalar ``LogicVec`` into all K lanes of a batched one."""
    if lanes == 1:
        return value
    return lane_broadcast_planes(
        value._width, lanes, value._val, value._unk, value._weak, value._aux)


def lane_slice(value, lane, width):
    """Extract lane ``lane`` (scalar width ``width``) from a batched vector."""
    return value.slice_(lane * width, width)


def lane_splice(value, lane, scalar):
    """Write a scalar vector into lane ``lane`` of a batched vector."""
    return value.splice(lane * scalar._width, scalar)


def lane_uniform(value, width, lanes):
    """True if every lane of a batched vector holds the same scalar value."""
    if lanes == 1:
        return True
    ones = lane_ones(width, lanes)
    m = (1 << width) - 1
    return (value._val == (value._val & m) * ones
            and value._unk == (value._unk & m) * ones
            and value._weak == (value._weak & m) * ones
            and value._aux == (value._aux & m) * ones)


def expand_lane_mask(lane_mask, width, lanes):
    """Expand a K-bit lane mask into a K*W-bit per-lane field mask."""
    if width == 1:
        return lane_mask
    field = (1 << width) - 1
    out = 0
    m = lane_mask
    while m:
        low = m & -m
        out |= field << ((low.bit_length() - 1) * width)
        m ^= low
    return out


def lane_blend(old, new, lane_mask, width, lanes):
    """Per-lane select: lanes set in ``lane_mask`` take ``new``'s value."""
    if lane_mask == 0:
        return old
    if lane_mask == (1 << lanes) - 1:
        return new
    mexp = expand_lane_mask(lane_mask, width, lanes)
    keep = ~mexp
    return LogicVec._make(
        old._width,
        old._val & keep | new._val & mexp,
        old._unk & keep | new._unk & mexp,
        old._weak & keep | new._weak & mexp,
        old._aux & keep | new._aux & mexp)


def resolve_many(values):
    """Resolve a non-empty list of :class:`LogicVec` drivers into one value.

    Single pass over the drivers: each contributes its per-category bit
    masks (U, forcing-X, forcing 0/1, weak W/L/H — Z is the resolution
    identity and contributes nothing), and the masks combine once at the
    end.  This is O(drivers) plane operations total, independent of how
    the pairwise fold would associate, and agrees with the pairwise fold
    exactly because IEEE 1164 resolution is associative and commutative.
    """
    first = None
    width = m = 0
    anyU = anyX = any0 = any1 = anyW = anyL = anyH = 0
    n = 0
    for v in values:
        n += 1
        if first is None:
            first = v
            width = v._width
            m = (1 << width) - 1
        elif v._width != width:
            raise ValueError(f"width mismatch: {width} vs {v._width}")
        unk, val, weak, aux = v._unk, v._val, v._weak, v._aux
        uu = unk & aux & ~val
        anyU |= uu
        # X and '-' force the result to X against everything but U.
        anyX |= unk & ~weak & (~val | aux) & ~uu
        known = ~unk & ~weak
        any0 |= ~val & known & m
        any1 |= val & known
        anyW |= unk & weak
        anyL |= ~unk & ~val & weak
        anyH |= ~unk & val & weak
    if n == 1:
        return first
    if first is None:
        raise ValueError("resolve_many of an empty driver list")
    rem = m & ~anyU
    x = (anyX | (any0 & any1)) & rem
    rem &= ~x
    f0 = any0 & rem
    f1 = any1 & rem
    # Neither U/X nor forcing: all drivers in {Z, W, L, H}.
    nf = rem & ~f0 & ~f1
    r_w = nf & (anyW | (anyL & anyH))
    r_l = nf & anyL & ~r_w
    r_h = nf & anyH & ~r_w
    r_z = nf & ~r_w & ~r_l & ~r_h
    return LogicVec._make(
        width,
        f1 | r_z | r_h,
        anyU | x | r_z | r_w,
        r_w | r_l | r_h,
        anyU)


# -- single-bit helpers ---------------------------------------------------------
#
# The classic table-lookup interface, preserved for tests and callers that
# work one bit at a time.  The 81-entry maps are derived from the packed
# plane operations at import; the verbatim IEEE 1164 tables live in
# tests/ir/oracle1164.py and the test suite asserts these agree with them
# for every operand pair.

def _derive(op):
    return {(a, b): getattr(LogicVec(a), op)(LogicVec(b)).bits
            for a in VALUES for b in VALUES}


_AND = _derive("and_")
_OR = _derive("or_")
_XOR = _derive("xor")
_RESOLVE = _derive("resolve")
_NOT = {a: LogicVec(a).not_().bits for a in VALUES}


def resolve_bits(a, b):
    """Resolve two single-bit logic values driven onto the same wire."""
    return _RESOLVE[a, b]


def and_bits(a, b):
    """Nine-valued AND of two single-bit values."""
    return _AND[a, b]


def or_bits(a, b):
    """Nine-valued OR of two single-bit values."""
    return _OR[a, b]


def xor_bits(a, b):
    """Nine-valued XOR of two single-bit values."""
    return _XOR[a, b]


def not_bit(a):
    """Nine-valued NOT of a single-bit value."""
    return _NOT[a]
