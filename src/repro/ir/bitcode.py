"""Binary on-disk ("bitcode") representation of LLHD modules.

The paper plans a bitcode format and *estimates* its size for Table 4
"based on a strategy similar to LLVM's bitcode, considering techniques
such as run-length encoding for numbers, interning of strings and types,
compact encodings for frequently-used primitive types and value
references".  This module implements that strategy for real:

* LEB128 varints for all numbers,
* an interned type table (each distinct type stored once),
* an interned string table for names,
* per-unit value references as dense varint indices,
* a compact opcode byte.

``write_module``/``read_module`` round-trip (property-tested), so Table 4's
"Bitcode" column in this reproduction is measured, not estimated.
"""

from __future__ import annotations

import io
import struct

from .instructions import ALL_OPCODES, Instruction, RegTrigger
from .ninevalued import LogicVec
from .types import (
    array_type, enum_type, int_type, logic_type, pointer_type, signal_type,
    struct_type, time_type, void_type,
)
from .units import Entity, Function, Module, Process, UnitDecl
from .values import Argument, Block, TimeValue

MAGIC = b"LLHD"
VERSION = 1

_OPCODES = sorted(ALL_OPCODES)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}

_UNIT_FUNC, _UNIT_PROC, _UNIT_ENTITY, _UNIT_DECL = range(4)
_DECL_KINDS = {"func": 0, "proc": 1, "entity": 2}
_DECL_KIND_NAMES = {v: k for k, v in _DECL_KINDS.items()}

# Type tags.
(_T_VOID, _T_TIME, _T_INT, _T_ENUM, _T_LOGIC, _T_POINTER, _T_SIGNAL,
 _T_ARRAY, _T_STRUCT) = range(9)

# Constant payload tags.
_C_INT, _C_TIME, _C_LOGIC = range(3)


class BitcodeError(Exception):
    """Raised on malformed bitcode input."""


def write_varint(out, value):
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def read_varint(data):
    result = 0
    shift = 0
    while True:
        byte = data.read(1)
        if not byte:
            raise BitcodeError("truncated varint")
        b = byte[0]
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7


def _write_string(out, text, string_table):
    index = string_table.setdefault(text, len(string_table))
    write_varint(out, index)


class _TypeTable:
    def __init__(self):
        self.index = {}
        self.entries = []

    def intern(self, ty):
        key = id(ty)
        if key in self.index:
            return self.index[key]
        # Intern children first so entries are topologically ordered.
        if ty.is_pointer:
            child = (self.intern(ty.pointee),)
            entry = (_T_POINTER,) + child
        elif ty.is_signal:
            entry = (_T_SIGNAL, self.intern(ty.element))
        elif ty.is_array:
            entry = (_T_ARRAY, ty.length, self.intern(ty.element))
        elif ty.is_struct:
            entry = (_T_STRUCT, tuple(self.intern(f) for f in ty.fields))
        elif ty.is_void:
            entry = (_T_VOID,)
        elif ty.is_time:
            entry = (_T_TIME,)
        elif ty.is_int:
            entry = (_T_INT, ty.width)
        elif ty.is_enum:
            entry = (_T_ENUM, ty.states)
        elif ty.is_logic:
            entry = (_T_LOGIC, ty.width)
        else:
            raise BitcodeError(f"cannot serialize type {ty!r}")
        index = len(self.entries)
        self.entries.append(entry)
        self.index[key] = index
        return index

    def write(self, out):
        write_varint(out, len(self.entries))
        for entry in self.entries:
            write_varint(out, entry[0])
            tag = entry[0]
            if tag in (_T_INT, _T_ENUM, _T_LOGIC, _T_POINTER, _T_SIGNAL):
                write_varint(out, entry[1])
            elif tag == _T_ARRAY:
                write_varint(out, entry[1])
                write_varint(out, entry[2])
            elif tag == _T_STRUCT:
                write_varint(out, len(entry[1]))
                for f in entry[1]:
                    write_varint(out, f)

    @staticmethod
    def read(data):
        count = read_varint(data)
        types = []
        for _ in range(count):
            tag = read_varint(data)
            if tag == _T_VOID:
                types.append(void_type())
            elif tag == _T_TIME:
                types.append(time_type())
            elif tag == _T_INT:
                types.append(int_type(read_varint(data)))
            elif tag == _T_ENUM:
                types.append(enum_type(read_varint(data)))
            elif tag == _T_LOGIC:
                types.append(logic_type(read_varint(data)))
            elif tag == _T_POINTER:
                types.append(pointer_type(types[read_varint(data)]))
            elif tag == _T_SIGNAL:
                types.append(signal_type(types[read_varint(data)]))
            elif tag == _T_ARRAY:
                length = read_varint(data)
                types.append(array_type(length, types[read_varint(data)]))
            elif tag == _T_STRUCT:
                n = read_varint(data)
                fields = [types[read_varint(data)] for _ in range(n)]
                types.append(struct_type(fields))
            else:
                raise BitcodeError(f"unknown type tag {tag}")
        return types


def write_module(module):
    """Serialize a module to bytes."""
    types = _TypeTable()
    strings = {}
    body = io.StringIO  # placeholder to appease linters
    payload = io.BytesIO()

    units = list(module.declarations.values()) + list(module.units.values())
    write_varint(payload, len(units))
    for unit in units:
        _write_unit(payload, unit, types, strings)

    head = io.BytesIO()
    head.write(MAGIC)
    write_varint(head, VERSION)
    types.write(head)
    # String table, sorted by assigned index.
    write_varint(head, len(strings))
    for text, _ in sorted(strings.items(), key=lambda kv: kv[1]):
        encoded = text.encode("utf-8")
        write_varint(head, len(encoded))
        head.write(encoded)
    head.write(payload.getvalue())
    return head.getvalue()


def _write_unit(out, unit, types, strings):
    if isinstance(unit, UnitDecl):
        write_varint(out, _UNIT_DECL)
        _write_string(out, unit.name, strings)
        write_varint(out, _DECL_KINDS[unit.kind])
        write_varint(out, len(unit.input_types))
        for ty in unit.input_types:
            write_varint(out, types.intern(ty))
        if unit.kind == "func":
            write_varint(out, types.intern(unit.return_type))
        else:
            write_varint(out, len(unit.output_types))
            for ty in unit.output_types:
                write_varint(out, types.intern(ty))
        return
    kind = {_UNIT_FUNC: None}  # readability only
    if unit.is_function:
        write_varint(out, _UNIT_FUNC)
    elif unit.is_process:
        write_varint(out, _UNIT_PROC)
    else:
        write_varint(out, _UNIT_ENTITY)
    _write_string(out, unit.name, strings)

    value_index = {}

    def assign(value):
        value_index[id(value)] = len(value_index)

    if unit.is_function:
        write_varint(out, len(unit.args))
        for arg in unit.args:
            write_varint(out, types.intern(arg.type))
            _write_string(out, arg.name or "", strings)
            assign(arg)
        write_varint(out, types.intern(unit.return_type))
    else:
        for group in (unit.inputs, unit.outputs):
            write_varint(out, len(group))
            for arg in group:
                write_varint(out, types.intern(arg.type))
                _write_string(out, arg.name or "", strings)
                assign(arg)

    blocks = unit.blocks
    block_index = {id(b): i for i, b in enumerate(blocks)}
    if not unit.is_entity:
        write_varint(out, len(blocks))
        for block in blocks:
            _write_string(out, block.name or "", strings)
    # Pre-assign instruction result indices (after args) in order, so
    # forward references (phis) encode as plain indices.
    for block in blocks:
        for inst in block.instructions:
            assign(inst)

    for block in blocks:
        write_varint(out, len(block.instructions))
        for inst in block.instructions:
            _write_instruction(out, inst, types, strings, value_index,
                               block_index)


def _write_instruction(out, inst, types, strings, value_index, block_index):
    write_varint(out, _OPCODE_INDEX[inst.opcode])
    write_varint(out, types.intern(inst.type))
    _write_string(out, inst.name or "", strings)
    write_varint(out, len(inst.operands))
    for op in inst.operands:
        if isinstance(op, Block):
            write_varint(out, 1)
            write_varint(out, block_index[id(op)])
        else:
            write_varint(out, 0)
            write_varint(out, value_index[id(op)])
    _write_attrs(out, inst, types, strings)


def _write_attrs(out, inst, types, strings):
    attrs = inst.attrs
    op = inst.opcode
    if op == "const":
        value = attrs["value"]
        if isinstance(value, TimeValue):
            write_varint(out, _C_TIME)
            write_varint(out, value.fs)
            write_varint(out, value.delta)
            write_varint(out, value.epsilon)
        elif isinstance(value, LogicVec):
            write_varint(out, _C_LOGIC)
            _write_string(out, value.bits, strings)
        else:
            write_varint(out, _C_INT)
            write_varint(out, value)
    elif op == "array":
        write_varint(out, 1 if attrs.get("splat") else 0)
    elif op in ("extf", "insf"):
        index = attrs.get("index")
        write_varint(out, 0 if index is None else 1)
        if index is not None:
            write_varint(out, index)
    elif op in ("exts", "inss"):
        write_varint(out, attrs["offset"])
        write_varint(out, attrs["length"])
    elif op in ("call", "inst"):
        _write_string(out, attrs["callee"], strings)
        if op == "inst":
            write_varint(out, attrs["num_inputs"])
    elif op == "wait":
        write_varint(out, 1 if attrs.get("has_time") else 0)
    elif op == "drv":
        write_varint(out, 1 if attrs.get("has_cond") else 0)
    elif op == "reg":
        triggers = attrs["triggers"]
        write_varint(out, len(triggers))
        for t in triggers:
            write_varint(out, RegTrigger.MODES.index(t.mode))
            write_varint(out, t.value)
            write_varint(out, t.trigger)
            write_varint(out, 0 if t.cond is None else t.cond + 1)
            write_varint(out, 0 if t.delay is None else t.delay + 1)


def read_module(data, name="module"):
    """Deserialize bytes produced by :func:`write_module`."""
    stream = io.BytesIO(data)
    if stream.read(4) != MAGIC:
        raise BitcodeError("bad magic")
    version = read_varint(stream)
    if version != VERSION:
        raise BitcodeError(f"unsupported bitcode version {version}")
    types = _TypeTable.read(stream)
    n_strings = read_varint(stream)
    strings = []
    for _ in range(n_strings):
        length = read_varint(stream)
        strings.append(stream.read(length).decode("utf-8"))
    module = Module(name)
    n_units = read_varint(stream)
    for _ in range(n_units):
        _read_unit(stream, module, types, strings)
    return module


def _read_unit(stream, module, types, strings):
    tag = read_varint(stream)
    uname = strings[read_varint(stream)]
    if tag == _UNIT_DECL:
        kind = _DECL_KIND_NAMES[read_varint(stream)]
        n_in = read_varint(stream)
        ins = [types[read_varint(stream)] for _ in range(n_in)]
        if kind == "func":
            ret = types[read_varint(stream)]
            module.declare(UnitDecl(uname, kind, ins, (), ret))
        else:
            n_out = read_varint(stream)
            outs = [types[read_varint(stream)] for _ in range(n_out)]
            module.declare(UnitDecl(uname, kind, ins, outs))
        return

    values = []
    if tag == _UNIT_FUNC:
        n_args = read_varint(stream)
        arg_types, arg_names = [], []
        for _ in range(n_args):
            arg_types.append(types[read_varint(stream)])
            arg_names.append(strings[read_varint(stream)] or None)
        ret = types[read_varint(stream)]
        unit = Function(uname, arg_types, arg_names, ret)
        values.extend(unit.args)
    else:
        groups = []
        for _ in range(2):
            n = read_varint(stream)
            g_types, g_names = [], []
            for _ in range(n):
                g_types.append(types[read_varint(stream)])
                g_names.append(strings[read_varint(stream)] or None)
            groups.append((g_types, g_names))
        cls = Process if tag == _UNIT_PROC else Entity
        unit = cls(uname, groups[0][0], groups[0][1],
                   groups[1][0], groups[1][1])
        values.extend(unit.args)

    if tag == _UNIT_ENTITY:
        blocks = [unit.body]
    else:
        n_blocks = read_varint(stream)
        blocks = []
        for _ in range(n_blocks):
            bname = strings[read_varint(stream)] or None
            blocks.append(unit.create_block(bname))

    # First pass: create instruction shells so forward refs resolve.
    pending = []
    for block in blocks:
        n_insts = read_varint(stream)
        shells = []
        for _ in range(n_insts):
            opcode = _OPCODES[read_varint(stream)]
            ty = types[read_varint(stream)]
            iname = strings[read_varint(stream)] or None
            n_ops = read_varint(stream)
            operand_refs = []
            for _ in range(n_ops):
                is_block = read_varint(stream)
                operand_refs.append((is_block, read_varint(stream)))
            attrs = _read_attrs(stream, opcode, strings)
            inst = Instruction(opcode, ty, (), attrs, iname)
            values.append(inst)
            shells.append((inst, operand_refs))
        pending.append((block, shells))
    for block, shells in pending:
        for inst, operand_refs in shells:
            for is_block, index in operand_refs:
                target = blocks[index] if is_block else values[index]
                inst.add_operand(target)
            block.append(inst)
    module.add(unit)


def _read_attrs(stream, opcode, strings):
    if opcode == "const":
        tag = read_varint(stream)
        if tag == _C_TIME:
            fs = read_varint(stream)
            delta = read_varint(stream)
            eps = read_varint(stream)
            return {"value": TimeValue(fs, delta, eps)}
        if tag == _C_LOGIC:
            return {"value": LogicVec(strings[read_varint(stream)])}
        return {"value": read_varint(stream)}
    if opcode == "array":
        return {"splat": bool(read_varint(stream))}
    if opcode in ("extf", "insf"):
        has_index = read_varint(stream)
        if has_index:
            return {"index": read_varint(stream)}
        return {"index": None}
    if opcode in ("exts", "inss"):
        offset = read_varint(stream)
        return {"offset": offset, "length": read_varint(stream)}
    if opcode in ("call", "inst"):
        callee = strings[read_varint(stream)]
        if opcode == "inst":
            return {"callee": callee, "num_inputs": read_varint(stream)}
        return {"callee": callee}
    if opcode == "wait":
        return {"has_time": bool(read_varint(stream))}
    if opcode == "drv":
        return {"has_cond": bool(read_varint(stream))}
    if opcode == "reg":
        n = read_varint(stream)
        triggers = []
        for _ in range(n):
            mode = RegTrigger.MODES[read_varint(stream)]
            value = read_varint(stream)
            trig = read_varint(stream)
            cond = read_varint(stream)
            delay = read_varint(stream)
            triggers.append(RegTrigger(
                mode, value, trig,
                None if cond == 0 else cond - 1,
                None if delay == 0 else delay - 1))
        return {"triggers": triggers}
    return {}
