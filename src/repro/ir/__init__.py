"""The LLHD intermediate representation: types, values, units, and tooling.

Import surface::

    from repro.ir import (
        Module, Function, Process, Entity, Builder,
        int_type, signal_type, TimeValue,
        parse_module, print_module, verify_module,
    )
"""

from .builder import Builder
from .dialects import (
    BEHAVIOURAL, NETLIST, STRUCTURAL, classify, is_at_level,
    level_violations,
)
from .instructions import Instruction, RegTrigger
from .linker import link_modules
from .ninevalued import LogicVec
from .parser import ParseError, parse_module, parse_type_text
from .printer import format_instruction, print_module, print_unit
from .types import (
    array_type, bit_width, enum_type, int_type, logic_type, parse_type,
    pointer_type, signal_type, struct_type, time_type, void_type,
)
from .units import Entity, Function, Module, Process, UnitDecl
from .values import Argument, Block, TimeValue, Use, Value
from .verifier import VerificationError, verify_module, verify_unit

__all__ = [
    "Argument", "BEHAVIOURAL", "Block", "Builder", "Entity", "Function",
    "Instruction", "LogicVec", "Module", "NETLIST", "ParseError", "Process",
    "RegTrigger", "STRUCTURAL", "TimeValue", "UnitDecl", "Use", "Value",
    "VerificationError", "array_type", "bit_width", "classify", "enum_type",
    "format_instruction", "int_type", "is_at_level", "level_violations",
    "link_modules", "logic_type", "parse_module", "parse_type",
    "parse_type_text", "pointer_type", "print_module", "print_unit",
    "signal_type", "struct_type", "time_type", "verify_module",
    "verify_unit", "void_type",
]
