"""Module linker (section 2.3 of the paper).

Multiple modules can be combined by a linker, which resolves references in
one module (declarations, ``declare @foo ...``) against the definitions
made in another.  Only global names are visible across modules; local and
anonymous names never clash.
"""

from __future__ import annotations

from .units import Module, UnitDecl, entity_signature


class LinkError(Exception):
    """Raised on duplicate definitions or unresolved/mismatched references."""


def link_modules(modules, name="linked"):
    """Link modules into a new one; definitions replace declarations.

    Raises :class:`LinkError` on duplicate definitions, signature mismatches
    between a declaration and its definition, or (with ``allow_unresolved``
    unset) declarations that no module defines.
    """
    linked = Module(name)
    # First pass: collect all definitions, rejecting duplicates.
    for module in modules:
        for unit in module:
            if unit.name in linked.units:
                raise LinkError(f"duplicate definition of @{unit.name}")
            linked.units[unit.name] = unit
            unit.module = linked
    # Second pass: resolve declarations against definitions.
    for module in modules:
        for decl in module.declarations.values():
            definition = linked.units.get(decl.name)
            if definition is None:
                existing = linked.declarations.get(decl.name)
                if existing is not None and not _decl_compatible(existing,
                                                                 decl):
                    raise LinkError(
                        f"conflicting declarations of @{decl.name}")
                linked.declarations[decl.name] = decl
                continue
            _check_decl_against_definition(decl, definition)
    return linked


def _decl_compatible(a, b):
    return (a.kind == b.kind
            and a.input_types == b.input_types
            and a.output_types == b.output_types
            and a.return_type == b.return_type)


def _check_decl_against_definition(decl, definition):
    if decl.kind != definition.kind:
        raise LinkError(
            f"@{decl.name}: declared as {decl.kind} but defined as "
            f"{definition.kind}")
    if definition.is_function:
        arg_types = tuple(a.type for a in definition.args)
        if decl.input_types != arg_types:
            raise LinkError(f"@{decl.name}: argument types differ")
        if decl.return_type is not definition.return_type:
            raise LinkError(f"@{decl.name}: return types differ")
        return
    in_types, out_types = entity_signature(definition)
    if decl.input_types != tuple(in_types):
        raise LinkError(f"@{decl.name}: input types differ")
    if decl.output_types != tuple(out_types):
        raise LinkError(f"@{decl.name}: output types differ")


def resolve(module, name):
    """Look up a unit, following a declaration to nothing if undefined."""
    found = module.get(name)
    if isinstance(found, UnitDecl):
        return None
    return found
