"""Recursive-descent parser for the Moore SystemVerilog subset."""

from __future__ import annotations

from . import ast
from .lexer import MooreSyntaxError, Token, parse_based_literal, tokenize

# Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def tok(self):
        return self.tokens[self.pos]

    def peek(self, offset=1):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def check(self, kind, text=None):
        tok = self.tok
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        tok = self.accept(kind, text)
        if tok is None:
            want = text if text is not None else kind
            raise MooreSyntaxError(
                f"expected {want!r}, found {self.tok.text!r}", self.tok.line)
        return tok

    def error(self, message):
        raise MooreSyntaxError(message, self.tok.line)

    # -- entry point ------------------------------------------------------------

    def parse_source(self):
        source = ast.SourceFile()
        while not self.check("eof"):
            source.modules.append(self.parse_module())
        return source

    # -- modules -----------------------------------------------------------------

    def parse_module(self):
        line = self.expect("keyword", "module").line
        name = self.expect("ident").text
        module = ast.ModuleDecl(name=name, line=line)
        if self.accept("punct", "#"):
            self.expect("punct", "(")
            while not self.check("punct", ")"):
                self.accept("keyword", "parameter")
                self._skip_data_type_prefix()
                pname = self.expect("ident").text
                default = None
                if self.accept("punct", "="):
                    default = self.parse_expr()
                module.parameters.append(
                    ast.Parameter(name=pname, default=default,
                                  line=self.tok.line))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        if self.accept("punct", "("):
            direction = "input"
            data_type = ast.DataType(base="logic")
            while not self.check("punct", ")"):
                if self.tok.kind == "keyword" and self.tok.text in (
                        "input", "output", "inout"):
                    direction = self.advance().text
                    data_type = self.parse_data_type(allow_empty=True)
                elif self._at_data_type():
                    data_type = self.parse_data_type(allow_empty=True)
                pname = self.expect("ident").text
                ptype = self._with_unpacked_dims(data_type)
                module.ports.append(ast.Port(
                    name=pname, direction=direction, data_type=ptype,
                    line=self.tok.line))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        self.expect("punct", ";")
        while not self.check("keyword", "endmodule"):
            item = self.parse_module_item()
            if item is not None:
                if isinstance(item, list):
                    module.items.extend(item)
                else:
                    module.items.append(item)
        self.expect("keyword", "endmodule")
        return module

    def _skip_data_type_prefix(self):
        """Skip the type part of ``parameter int W`` / ``parameter W``."""
        if self.tok.kind == "keyword" and self.tok.text in (
                "int", "integer", "logic", "bit"):
            self.advance()
            if self.check("punct", "["):
                self._parse_packed_range()

    def _at_data_type(self):
        return (self.tok.kind == "keyword"
                and self.tok.text in ("logic", "bit", "wire", "reg", "int",
                                      "integer"))

    def parse_data_type(self, allow_empty=False):
        line = self.tok.line
        base = "logic"
        if self._at_data_type():
            base = self.advance().text
            if base in ("wire", "reg"):
                base = "logic"
        elif not allow_empty and not self.check("punct", "["):
            self.error(f"expected data type, found {self.tok.text!r}")
        signed = False
        if self.accept("keyword", "signed"):
            signed = True
        elif self.accept("keyword", "unsigned"):
            signed = False
        packed = None
        if self.check("punct", "["):
            packed = self._parse_packed_range()
        return ast.DataType(base=base, packed=packed, signed=signed,
                            line=line)

    def _parse_packed_range(self):
        self.expect("punct", "[")
        msb = self.parse_expr()
        self.expect("punct", ":")
        lsb = self.parse_expr()
        self.expect("punct", "]")
        return (msb, lsb)

    def _with_unpacked_dims(self, data_type):
        """Parse trailing unpacked dims ``[N]`` or ``[hi:lo]`` after a name."""
        dims = []
        while self.check("punct", "["):
            self.advance()
            first = self.parse_expr()
            if self.accept("punct", ":"):
                second = self.parse_expr()
                dims.append(("range", first, second))
            else:
                dims.append(("size", first, None))
            self.expect("punct", "]")
        if not dims:
            return data_type
        return ast.DataType(base=data_type.base, packed=data_type.packed,
                            unpacked=dims, signed=data_type.signed,
                            line=data_type.line)

    # -- module items ------------------------------------------------------------------

    def parse_module_item(self):
        tok = self.tok
        if tok.kind == "keyword":
            if tok.text in ("parameter", "localparam"):
                return self._parse_parameter_item()
            if tok.text == "assign":
                return self._parse_continuous_assign()
            if tok.text in ("always", "always_ff", "always_comb",
                            "always_latch", "initial", "final"):
                return self._parse_always()
            if tok.text == "function":
                return self._parse_function()
            if tok.text == "genvar":
                self.advance()
                self.expect("ident")
                self.expect("punct", ";")
                return None
            if tok.text == "generate":
                self.advance()
                items = []
                while not self.check("keyword", "endgenerate"):
                    item = self.parse_module_item()
                    if item is not None:
                        items.append(item)
                self.expect("keyword", "endgenerate")
                return items
            if tok.text == "for":
                return self._parse_generate_for()
            if self._at_data_type():
                return self._parse_net_decls()
        if tok.kind == "ident":
            return self._parse_instantiation()
        self.error(f"unexpected token {tok.text!r} in module body")

    def _parse_parameter_item(self):
        self.advance()  # parameter | localparam
        self._skip_data_type_prefix()
        params = []
        while True:
            name = self.expect("ident").text
            self.expect("punct", "=")
            value = self.parse_expr()
            params.append(ast.Parameter(name=name, default=value,
                                        line=self.tok.line))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        return params

    def _parse_continuous_assign(self):
        line = self.expect("keyword", "assign").line
        delay = None
        if self.accept("punct", "#"):
            delay = self._parse_delay_value()
        assigns = []
        while True:
            target = self.parse_expr()
            self.expect("punct", "=")
            value = self.parse_expr()
            assigns.append(ast.ContinuousAssign(
                target=target, value=value, delay=delay, line=line))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        return assigns

    def _parse_delay_value(self):
        if self.tok.kind == "time":
            return ast.TimeLiteral(text=self.advance().text,
                                   line=self.tok.line)
        if self.tok.kind == "number":
            # Bare number: interpreted in the default timescale (1ns).
            text = self.advance().text
            return ast.TimeLiteral(text=f"{text}ns", line=self.tok.line)
        self.error("expected delay value after '#'")

    def _parse_always(self):
        tok = self.advance()
        kind = tok.text
        events = None
        if self.accept("punct", "@"):
            events = self._parse_event_list()
        body = self.parse_statement()
        return ast.AlwaysBlock(kind=kind, events=events, body=body,
                               line=tok.line)

    def _parse_event_list(self):
        if self.accept("punct", "*"):
            return []
        self.expect("punct", "(")
        if self.accept("punct", "*"):
            self.expect("punct", ")")
            return []
        events = []
        while True:
            edge = None
            if self.tok.kind == "keyword" and self.tok.text in (
                    "posedge", "negedge"):
                edge = self.advance().text
            signal = self.parse_expr()
            events.append(ast.EventExpr(edge=edge, signal=signal))
            if not (self.accept("keyword", "or")
                    or self.accept("punct", ",")):
                break
        self.expect("punct", ")")
        return events

    def _parse_function(self):
        line = self.expect("keyword", "function").line
        self.accept("keyword", "automatic")
        return_type = None
        if self.check("keyword", "void"):
            self.advance()
        elif self._at_data_type() or self.check("punct", "["):
            return_type = self.parse_data_type(allow_empty=True)
        name = self.expect("ident").text
        args = []
        if self.accept("punct", "("):
            direction_seen = ast.DataType(base="logic")
            while not self.check("punct", ")"):
                if self.tok.kind == "keyword" and self.tok.text in (
                        "input", "output"):
                    if self.tok.text == "output":
                        self.error("function output arguments are not "
                                   "supported")
                    self.advance()
                if self._at_data_type() or self.check("punct", "["):
                    direction_seen = self.parse_data_type(allow_empty=True)
                arg_name = self.expect("ident").text
                args.append((arg_name, direction_seen))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        self.expect("punct", ";")
        body = ast.Block(line=line)
        while not self.check("keyword", "endfunction"):
            body.statements.append(self.parse_statement())
        self.expect("keyword", "endfunction")
        return ast.FunctionDecl(name=name, return_type=return_type,
                                args=args, body=body, line=line)

    def _parse_net_decls(self):
        data_type = self.parse_data_type()
        decls = []
        while True:
            name = self.expect("ident").text
            full_type = self._with_unpacked_dims(data_type)
            init = None
            if self.accept("punct", "="):
                init = self.parse_expr()
            decls.append(ast.NetDecl(name=name, data_type=full_type,
                                     init=init, line=self.tok.line))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        return decls

    def _parse_instantiation(self):
        line = self.tok.line
        module_name = self.expect("ident").text
        param_overrides = []
        if self.accept("punct", "#"):
            self.expect("punct", "(")
            param_overrides = self._parse_connection_list()
            self.expect("punct", ")")
        instance_name = self.expect("ident").text
        self.expect("punct", "(")
        wildcard = False
        connections = []
        if self.check("punct", ".") and self.peek().text == "*":
            self.advance()
            self.advance()
            wildcard = True
            if self.accept("punct", ","):
                connections = self._parse_connection_list()
        elif not self.check("punct", ")"):
            connections = self._parse_connection_list()
        self.expect("punct", ")")
        self.expect("punct", ";")
        return ast.Instantiation(
            module=module_name, name=instance_name,
            param_overrides=param_overrides, connections=connections,
            wildcard=wildcard, line=line)

    def _parse_connection_list(self):
        connections = []
        while True:
            if self.accept("punct", "."):
                if self.accept("punct", "*"):
                    connections.append(("*", None))
                else:
                    name = self.expect("ident").text
                    self.expect("punct", "(")
                    expr = None
                    if not self.check("punct", ")"):
                        expr = self.parse_expr()
                    self.expect("punct", ")")
                    connections.append((name, expr))
            else:
                connections.append((None, self.parse_expr()))
            if not self.accept("punct", ","):
                break
        return connections

    def _parse_generate_for(self):
        line = self.expect("keyword", "for").line
        self.expect("punct", "(")
        self.accept("keyword", "genvar")
        genvar = self.expect("ident").text
        self.expect("punct", "=")
        init = self.parse_expr()
        self.expect("punct", ";")
        cond = self.parse_expr()
        self.expect("punct", ";")
        step = self._parse_for_step(genvar)
        self.expect("punct", ")")
        label = ""
        items = []
        if self.accept("keyword", "begin"):
            if self.accept("punct", ":"):
                label = self.expect("ident").text
            while not self.check("keyword", "end"):
                item = self.parse_module_item()
                if item is not None:
                    if isinstance(item, list):
                        items.extend(item)
                    else:
                        items.append(item)
            self.expect("keyword", "end")
        else:
            items.append(self.parse_module_item())
        return ast.GenerateFor(genvar=genvar, init=init, cond=cond,
                               step=step, items=items, label=label,
                               line=line)

    def _parse_for_step(self, _genvar):
        expr = self.parse_expr()
        if isinstance(expr, ast.PostIncrement):
            return expr
        if self.accept("punct", "="):
            value = self.parse_expr()
            return ast.Assign(target=expr, value=value, blocking=True,
                              line=self.tok.line)
        if self.tok.text in _COMPOUND_ASSIGN:
            op = self.advance().text
            value = self.parse_expr()
            return ast.Assign(target=expr, value=value, blocking=True,
                              op=op[:-1], line=self.tok.line)
        return ast.ExprStmt(expr=expr, line=self.tok.line)

    # -- statements -----------------------------------------------------------------------

    def parse_statement(self):
        tok = self.tok
        if tok.kind == "keyword":
            if tok.text == "begin":
                return self._parse_begin_end()
            if tok.text == "if":
                return self._parse_if()
            if tok.text in ("case", "casez"):
                return self._parse_case()
            if tok.text == "for":
                return self._parse_for_statement()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "do":
                return self._parse_do_while()
            if tok.text == "return":
                self.advance()
                value = None
                if not self.check("punct", ";"):
                    value = self.parse_expr()
                self.expect("punct", ";")
                return ast.ReturnStmt(value=value, line=tok.line)
            if tok.text == "assert":
                return self._parse_assert()
            if tok.text == "automatic" or self._at_data_type():
                return self._parse_local_var()
        if tok.kind == "punct" and tok.text == "#":
            self.advance()
            amount = self._parse_delay_value()
            if self.accept("punct", ";"):
                return ast.Delay(amount=amount, line=tok.line)
            # "#1ns x = e" — delayed statement prefix (delay, then assign)
            stmt = self.parse_statement()
            block = ast.Block(line=tok.line)
            block.statements = [ast.Delay(amount=amount, line=tok.line),
                                stmt]
            return block
        if tok.kind == "punct" and tok.text == "@":
            self.advance()
            events = self._parse_event_list()
            self.expect("punct", ";")
            return ast.EventWait(events=events, line=tok.line)
        if tok.kind == "punct" and tok.text == ";":
            self.advance()
            return ast.Block(line=tok.line)
        return self._parse_assign_or_expr_statement()

    def _parse_begin_end(self):
        line = self.expect("keyword", "begin").line
        if self.accept("punct", ":"):
            self.expect("ident")
        block = ast.Block(line=line)
        while not self.check("keyword", "end"):
            block.statements.append(self.parse_statement())
        self.expect("keyword", "end")
        if self.accept("punct", ":"):
            self.expect("ident")
        return block

    def _parse_if(self):
        line = self.expect("keyword", "if").line
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then_body = self.parse_statement()
        else_body = None
        if self.accept("keyword", "else"):
            else_body = self.parse_statement()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body,
                      line=line)

    def _parse_case(self):
        tok = self.advance()
        wildcard = tok.text == "casez"
        self.expect("punct", "(")
        subject = self.parse_expr()
        self.expect("punct", ")")
        items = []
        while not self.check("keyword", "endcase"):
            if self.accept("keyword", "default"):
                self.accept("punct", ":")
                items.append((None, self.parse_statement()))
            else:
                labels = [self.parse_expr()]
                while self.accept("punct", ","):
                    labels.append(self.parse_expr())
                self.expect("punct", ":")
                items.append((labels, self.parse_statement()))
        self.expect("keyword", "endcase")
        return ast.Case(subject=subject, items=items, wildcard=wildcard,
                        line=tok.line)

    def _parse_for_statement(self):
        line = self.expect("keyword", "for").line
        self.expect("punct", "(")
        init = None
        if not self.check("punct", ";"):
            if self._at_data_type() or self.check("keyword", "automatic"):
                init = self._parse_local_var(consume_semicolon=False)
            else:
                init = self._parse_assignment(consume_semicolon=False)
        self.expect("punct", ";")
        cond = None
        if not self.check("punct", ";"):
            cond = self.parse_expr()
        self.expect("punct", ";")
        step = None
        if not self.check("punct", ")"):
            step = self._parse_for_step(None)
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body,
                       line=line)

    def _parse_while(self):
        line = self.expect("keyword", "while").line
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.While(cond=cond, body=body, line=line)

    def _parse_do_while(self):
        line = self.expect("keyword", "do").line
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        self.expect("punct", ";")
        return ast.DoWhile(body=body, cond=cond, line=line)

    def _parse_assert(self):
        line = self.expect("keyword", "assert").line
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        message = None
        if self.accept("keyword", "else"):
            # `assert(...) else $error("...")` — keep the message.
            expr = self.parse_expr()
            if isinstance(expr, ast.SystemCall) and expr.args:
                message = expr.args[0]
        self.expect("punct", ";")
        return ast.AssertStmt(cond=cond, message=message, line=line)

    def _parse_local_var(self, consume_semicolon=True):
        automatic = bool(self.accept("keyword", "automatic"))
        data_type = self.parse_data_type()
        stmts = []
        while True:
            name = self.expect("ident").text
            full_type = self._with_unpacked_dims(data_type)
            init = None
            if self.accept("punct", "="):
                init = self.parse_expr()
            stmts.append(ast.VarDecl(name=name, data_type=full_type,
                                     init=init, automatic=automatic,
                                     line=self.tok.line))
            if not self.accept("punct", ","):
                break
        if consume_semicolon:
            self.expect("punct", ";")
        if len(stmts) == 1:
            return stmts[0]
        block = ast.Block(line=stmts[0].line)
        block.statements = stmts
        return block

    def _parse_assign_or_expr_statement(self):
        stmt = self._parse_assignment(consume_semicolon=True)
        return stmt

    def _parse_assignment(self, consume_semicolon):
        line = self.tok.line
        # Parse the target as a postfix expression only: parsing a full
        # expression would swallow `<=` of a nonblocking assignment as a
        # less-or-equal comparison.
        target = self._parse_postfix()
        if isinstance(target, ast.PostIncrement):
            if consume_semicolon:
                self.expect("punct", ";")
            return ast.ExprStmt(expr=target, line=line)
        if isinstance(target, (ast.SystemCall, ast.FunctionCall)):
            if consume_semicolon:
                self.expect("punct", ";")
            return ast.ExprStmt(expr=target, line=line)
        if self.tok.text in _COMPOUND_ASSIGN:
            op = self.advance().text
            value = self.parse_expr()
            if consume_semicolon:
                self.expect("punct", ";")
            return ast.Assign(target=target, value=value, blocking=True,
                              op=op[:-1], line=line)
        blocking = True
        if self.accept("punct", "="):
            blocking = True
        elif self.accept("punct", "<="):
            blocking = False
        else:
            self.error(f"expected assignment, found {self.tok.text!r}")
        delay = None
        if self.accept("punct", "#"):
            delay = self._parse_delay_value()
        value = self.parse_expr()
        if consume_semicolon:
            self.expect("punct", ";")
        return ast.Assign(target=target, value=value, blocking=blocking,
                          delay=delay, line=line)

    # -- expressions ---------------------------------------------------------------------

    def parse_expr(self):
        return self._parse_ternary()

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self.accept("punct", "?"):
            if_true = self.parse_expr()
            self.expect("punct", ":")
            if_false = self.parse_expr()
            return ast.Ternary(cond=cond, if_true=if_true,
                               if_false=if_false, line=self.tok.line)
        return cond

    def _parse_binary(self, min_precedence):
        lhs = self._parse_unary()
        while True:
            op = self.tok.text
            # `<=` in expression position is less-or-equal only when it
            # cannot start a nonblocking assignment — the statement parser
            # disambiguates by context; here it's always a comparison.
            precedence = _BINARY_PRECEDENCE.get(op)
            if self.tok.kind != "punct" or precedence is None \
                    or precedence < min_precedence:
                return lhs
            self.advance()
            rhs = self._parse_binary(precedence + 1)
            lhs = ast.Binary(op=op, lhs=lhs, rhs=rhs, line=self.tok.line)

    def _parse_unary(self):
        tok = self.tok
        if tok.kind == "punct" and tok.text in ("!", "~", "-", "+", "&",
                                                "|", "^"):
            self.advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(op=tok.text, operand=operand, line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            if self.check("punct", "["):
                self.advance()
                first = self.parse_expr()
                if self.accept("punct", ":"):
                    second = self.parse_expr()
                    self.expect("punct", "]")
                    expr = ast.PartSelect(base=expr, msb=first, lsb=second,
                                          line=self.tok.line)
                else:
                    self.expect("punct", "]")
                    expr = ast.Index(base=expr, index=first,
                                     line=self.tok.line)
            elif self.check("punct", "++") or self.check("punct", "--"):
                op = self.advance().text
                expr = ast.PostIncrement(target=expr, op=op,
                                         line=self.tok.line)
            else:
                return expr

    def _parse_primary(self):
        tok = self.tok
        if tok.kind == "number":
            self.advance()
            return ast.Number(value=int(tok.text.replace("_", "")),
                              width=None, line=tok.line)
        if tok.kind == "based":
            self.advance()
            width, value, has_xz = parse_based_literal(tok.text)
            return ast.Number(value=value, width=width, has_xz=has_xz,
                              line=tok.line)
        if tok.kind == "unbased":
            self.advance()
            return ast.UnbasedUnsized(fill=tok.text[1].lower(),
                                      line=tok.line)
        if tok.kind == "time":
            self.advance()
            return ast.TimeLiteral(text=tok.text, line=tok.line)
        if tok.kind == "string":
            self.advance()
            return ast.StringLiteral(value=tok.text[1:-1], line=tok.line)
        if tok.kind == "system":
            self.advance()
            args = []
            if self.accept("punct", "("):
                while not self.check("punct", ")"):
                    args.append(self.parse_expr())
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", ")")
            return ast.SystemCall(name=tok.text, args=args, line=tok.line)
        if tok.kind == "ident":
            self.advance()
            if self.check("punct", "("):
                self.advance()
                args = []
                while not self.check("punct", ")"):
                    args.append(self.parse_expr())
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", ")")
                return ast.FunctionCall(name=tok.text, args=args,
                                        line=tok.line)
            return ast.Identifier(name=tok.text, line=tok.line)
        if tok.kind == "punct" and tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        if tok.kind == "punct" and tok.text == "{":
            return self._parse_concat()
        self.error(f"unexpected token {tok.text!r} in expression")

    def _parse_concat(self):
        line = self.expect("punct", "{").line
        first = self.parse_expr()
        if self.check("punct", "{"):
            # Replication: {N{value}}
            self.advance()
            value = self.parse_expr()
            self.expect("punct", "}")
            self.expect("punct", "}")
            return ast.Replicate(count=first, value=value, line=line)
        parts = [first]
        while self.accept("punct", ","):
            parts.append(self.parse_expr())
        self.expect("punct", "}")
        return ast.Concat(parts=parts, line=line)


def parse_source(text):
    """Parse SystemVerilog source text into an AST."""
    return Parser(text).parse_source()
