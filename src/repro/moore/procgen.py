"""Statement codegen: always/initial blocks → LLHD processes, and
SystemVerilog functions → LLHD functions.

All mutable state (locals and blocking-assigned module signals) lives in
``var`` cells during codegen, so no phi construction is needed here; the
mem2reg pass promotes the cells to SSA form during lowering.  Shadow cells
for blocking-assigned signals are initialized from a probe at the top of
each activation and flushed back with delta-delay drives at every
suspension point (see codegen module docstring).
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.ninevalued import LogicVec
from ..ir.types import int_type, logic_type
from ..ir.units import Process
from ..ir.values import TimeValue
from . import ast
from .codegen import ExprContext, MooreError, TypedValue, _const_eval, \
    _try_const, _width_of

_ZERO_DELAY = TimeValue(0)


def collect_written(node, out):
    """Base identifiers assigned anywhere below ``node``."""
    if isinstance(node, ast.Assign):
        base = node.target
        while isinstance(base, (ast.Index, ast.PartSelect)):
            base = base.base
        if isinstance(base, ast.Identifier):
            out.add(base.name)
        collect_reads(node.value, out_reads := set())
    for child in _children(node):
        collect_written(child, out)


def collect_reads(node, out):
    """All identifier names appearing below ``node``."""
    if isinstance(node, ast.Identifier):
        out.add(node.name)
    for child in _children(node):
        collect_reads(child, out)


def _children(node):
    if node is None or isinstance(node, (int, str, bool)):
        return
    if isinstance(node, (list, tuple)):
        for item in node:
            yield from _children_of_value(item)
        return
    for field_name in getattr(node, "__dataclass_fields__", {}):
        yield from _children_of_value(getattr(node, field_name))


def _children_of_value(value):
    if isinstance(value, (list, tuple)):
        for item in value:
            yield from _children_of_value(item)
    elif hasattr(value, "__dataclass_fields__"):
        yield value


class _Lvalue:
    """A resolved assignment target inside a process or function."""

    def __init__(self, kind, base, steps, element_ty, signal_name=None,
                 dirty=None):
        self.kind = kind            # "signal" | "cell"
        self.base = base            # signal value or cell pointer value
        self.steps = steps          # list of ("extf", idx) / ("exts", o, l)
        self.element_ty = element_ty
        self.signal_name = signal_name
        self.dirty = dirty          # dirty-flag cell for shadowed signals


class BodyGen(ExprContext):
    """Shared statement generator for processes and functions."""

    def __init__(self, elab, unit):
        super().__init__(elab, Builder())
        self.unit = unit
        self.block = None
        self._block_count = 0

    # -- block plumbing ---------------------------------------------------------

    def new_block(self, name):
        self._block_count += 1
        return self.unit.create_block(f"{name}{self._block_count}")

    def set_block(self, block):
        self.block = block
        self.builder.set_insert_point(block)

    # -- statement dispatch ----------------------------------------------------

    def stmt(self, node):
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise MooreError(f"unsupported statement {type(node).__name__}",
                             getattr(node, "line", None))
        method(node)

    def _stmt_Block(self, node):
        for sub in node.statements:
            self.stmt(sub)

    def _stmt_VarDecl(self, node):
        ty, signed = self.elab.lower_type(node.data_type)
        if node.init is not None:
            init = self.adapt(self.expr(node.init, _width_of(ty)), ty)
            init_value = init.value
        else:
            init_value = self._default_const(ty)
        cell = self.builder.var(init_value, name=node.name)
        self.declare_local(node.name, cell, ty, signed)

    def _default_const(self, ty, value=0):
        if ty.is_int:
            return self.builder.const_int(ty, value)
        if ty.is_logic:
            return self.builder.const_logic(
                LogicVec.from_int(value, ty.width))
        if ty.is_array:
            element = self._default_const(ty.element, value)
            return self.builder.array_splat(ty.length, element)
        raise MooreError(f"cannot build default value of type {ty}")

    def _stmt_Assign(self, node):
        lvalue = self.lvalue(node.target)
        hint = _width_of(lvalue.element_ty)
        value = self.expr(node.value, hint)
        if node.op:
            current = self.read_lvalue(lvalue)
            value = self._apply_compound(node.op, current, value)
        value = self.adapt(value, lvalue.element_ty)
        if node.blocking:
            if node.delay is not None:
                raise MooreError("blocking assignment delays are not "
                                 "supported", node.line)
            self.write_lvalue(lvalue, value)
        else:
            delay = TimeValue.parse(node.delay.text) \
                if node.delay is not None else _ZERO_DELAY
            self.drive_lvalue(lvalue, value, delay, node.line)

    def _apply_compound(self, op, current, value):
        fake = ast.Binary(op=op)
        arith = {"+": "add", "-": "sub", "*": "mul", "&": "and",
                 "|": "or", "^": "xor"}
        if op in arith:
            a, b = self._unify(current, value)
            return TypedValue(
                self.builder.binary(arith[op], a.value, b.value),
                a.signed and b.signed)
        if op in ("<<", ">>"):
            method = self.builder.shl if op == "<<" else self.builder.shr
            return TypedValue(method(current.value, value.value),
                              current.signed)
        raise MooreError(f"unsupported compound assignment {op}=")

    def _stmt_If(self, node):
        cond = self.to_bool(self.expr(node.cond))
        then_block = self.new_block("if.then")
        join = self.new_block("if.join")
        if node.else_body is not None:
            else_block = self.new_block("if.else")
            self.builder.br_cond(cond, else_block, then_block)
            self.set_block(else_block)
            self.stmt(node.else_body)
            self.builder.br(join)
        else:
            self.builder.br_cond(cond, join, then_block)
        self.set_block(then_block)
        self.stmt(node.then_body)
        self.builder.br(join)
        self.set_block(join)

    def _stmt_Case(self, node):
        subject = self.expr(node.subject)
        done = self.new_block("case.join")
        default_body = None
        arms = []
        for labels, body in node.items:
            if labels is None:
                default_body = body
            else:
                arms.append((labels, body))
        for labels, body in arms:
            conds = []
            for label in labels:
                conds.append(self._case_match(subject, label, node.wildcard))
            cond = conds[0]
            for extra in conds[1:]:
                cond = self.builder.or_(cond, extra)
            body_block = self.new_block("case.arm")
            next_block = self.new_block("case.next")
            self.builder.br_cond(cond, next_block, body_block)
            self.set_block(body_block)
            self.stmt(body)
            self.builder.br(done)
            self.set_block(next_block)
        if default_body is not None:
            self.stmt(default_body)
        self.builder.br(done)
        self.set_block(done)

    def _case_match(self, subject, label, wildcard):
        if wildcard and isinstance(label, ast.Number) and label.has_xz:
            # casez: x/z bits are don't-care. Recover the mask from the
            # literal text at parse time is lost; treat x bits as 0-mask
            # by rebuilding from the stored value: conservative fallback —
            # compare the non-wildcard low bits only is not recoverable,
            # so match everything with the same defined bits via equality
            # on the masked value.
            width = label.width or subject.width
            mask_value = label.value  # defined bits (x already zeroed)
            label_tv = self.const(width, label.value)
            a, b = self._unify(subject, label_tv)
            return self.builder.eq(a.value, b.value)
        label_tv = self.expr(label, subject.width)
        a, b = self._unify(subject, label_tv)
        return self.builder.eq(a.value, b.value)

    def _stmt_For(self, node):
        if node.init is not None:
            self.stmt(node.init)
        header = self.new_block("for.head")
        body = self.new_block("for.body")
        exit_block = self.new_block("for.exit")
        self.builder.br(header)
        self.set_block(header)
        if node.cond is not None:
            cond = self.to_bool(self.expr(node.cond))
            self.builder.br_cond(cond, exit_block, body)
        else:
            self.builder.br(body)
        self.set_block(body)
        self.stmt(node.body)
        if node.step is not None:
            if isinstance(node.step, ast.PostIncrement):
                self._post_increment(node.step)
            else:
                self.stmt(node.step)
        self.builder.br(header)
        self.set_block(exit_block)

    def _stmt_While(self, node):
        header = self.new_block("while.head")
        body = self.new_block("while.body")
        exit_block = self.new_block("while.exit")
        self.builder.br(header)
        self.set_block(header)
        cond = self.to_bool(self.expr(node.cond))
        self.builder.br_cond(cond, exit_block, body)
        self.set_block(body)
        self.stmt(node.body)
        self.builder.br(header)
        self.set_block(exit_block)

    def _stmt_DoWhile(self, node):
        body = self.new_block("do.body")
        exit_block = self.new_block("do.exit")
        self.builder.br(body)
        self.set_block(body)
        self.stmt(node.body)
        cond = self.to_bool(self.expr(node.cond))
        self.builder.br_cond(cond, exit_block, body)
        self.set_block(exit_block)

    def _stmt_ExprStmt(self, node):
        expr = node.expr
        if isinstance(expr, ast.PostIncrement):
            self._post_increment(expr)
            return
        if isinstance(expr, ast.SystemCall):
            self._system_statement(expr)
            return
        if isinstance(expr, ast.FunctionCall):
            self.call(expr.name, expr.args, expr.line, statement=True)
            return
        raise MooreError("expression has no effect", node.line)

    def _post_increment(self, expr):
        lvalue = self.lvalue(expr.target)
        current = self.read_lvalue(lvalue)
        one = self.const(current.width, 1)
        if expr.op == "++":
            updated = self.builder.add(current.value, one.value)
        else:
            updated = self.builder.sub(current.value, one.value)
        self.write_lvalue(lvalue, TypedValue(updated, current.signed))
        return current

    def _expr_PostIncrement(self, node, width_hint):
        return self._post_increment(node)

    def _system_statement(self, node):
        if node.name in ("$display", "$write", "$error", "$warning",
                         "$info"):
            args = [self.expr(a).value for a in node.args
                    if not isinstance(a, ast.StringLiteral)]
            self.builder.call("llhd.print", args, None)
            return
        if node.name in ("$finish", "$stop"):
            self.builder.call("llhd.finish", [], None)
            return
        raise MooreError(f"unsupported system task {node.name}", node.line)

    def _stmt_AssertStmt(self, node):
        cond = self.to_bool(self.expr(node.cond))
        self.builder.call("llhd.assert", [cond], None)

    # -- interface for subclasses -----------------------------------------------

    def declare_local(self, name, cell, ty, signed):
        raise NotImplementedError

    def lvalue(self, expr):
        raise NotImplementedError

    def read_lvalue(self, lvalue):
        """Load the current value of a resolved lvalue."""
        base = lvalue.base
        if lvalue.kind == "cell":
            value = base
            for step in lvalue.steps:
                value = self._project_ptr(value, step)
            return TypedValue(self.builder.ld(value), False)
        probed = self._probe_target(lvalue)
        return TypedValue(probed, False)

    def _probe_target(self, lvalue):
        target = lvalue.base
        for step in lvalue.steps:
            target = self._project_sig(target, step)
        return self.builder.prb(target)

    def _project_ptr(self, pointer, step):
        if step[0] == "extf":
            return self.builder.extf(pointer, step[1])
        return self.builder.exts(pointer, step[1], step[2])

    def _project_sig(self, signal, step):
        if step[0] == "extf":
            return self.builder.extf(signal, step[1])
        return self.builder.exts(signal, step[1], step[2])

    def _resolve_projection(self, expr, base_lvalue):
        """Extend an lvalue with Index/PartSelect steps."""
        if isinstance(expr, ast.Index):
            inner = self._resolve_projection(expr.base, base_lvalue)
            ty = inner.element_ty
            index = _try_const(expr.index, self.elab.params)
            if ty.is_array:
                if index is None:
                    index = self.expr(expr.index).value
                inner.steps.append(("extf", index))
                inner.element_ty = ty.element
                return inner
            if index is None:
                raise MooreError(
                    "dynamic bit-select assignment targets are not "
                    "supported; assign the full vector", expr.line)
            inner.steps.append(("exts", index, 1))
            inner.element_ty = logic_type(1) if ty.is_logic else int_type(1)
            return inner
        if isinstance(expr, ast.PartSelect):
            inner = self._resolve_projection(expr.base, base_lvalue)
            msb = _const_eval(expr.msb, self.elab.params)
            lsb = _const_eval(expr.lsb, self.elab.params)
            lo, width = min(msb, lsb), abs(msb - lsb) + 1
            inner.steps.append(("exts", lo, width))
            if inner.element_ty.is_array:
                from ..ir.types import array_type

                inner.element_ty = array_type(width,
                                              inner.element_ty.element)
            elif inner.element_ty.is_logic:
                inner.element_ty = logic_type(width)
            else:
                inner.element_ty = int_type(width)
            return inner
        return base_lvalue(expr)


class ProcessBodyGen(BodyGen):
    """Generates one LLHD process from an always/initial block."""

    def __init__(self, elab, always_ast, name):
        self.always = always_ast
        self.name = name
        written, read = set(), set()
        collect_written(always_ast.body, written)
        collect_reads(always_ast.body, read)
        if always_ast.events:
            for event in always_ast.events:
                collect_reads(event.signal, read)
        self.written_signals = [n for n in elab.signals if n in written]
        read_signals = {n for n in elab.signals if n in read}
        self.input_signals = [n for n in elab.signals
                              if n in read_signals and n not in written]
        # Blocking-assigned module signals get shadow cells.
        self.shadowed = self._find_blocking_targets(always_ast.body,
                                                    set(elab.signals))
        in_types = [elab.signals[n].type for n in self.input_signals]
        out_types = [elab.signals[n].type for n in self.written_signals]
        unit = Process(name, in_types, self.input_signals,
                       out_types, self.written_signals)
        super().__init__(elab, unit)
        self.bindings = {}
        for arg, n in zip(unit.inputs, self.input_signals):
            ty, signed = elab.signal_types[n]
            self.bindings[n] = ["sig", arg, ty, signed]
        for arg, n in zip(unit.outputs, self.written_signals):
            ty, signed = elab.signal_types[n]
            self.bindings[n] = ["sig", arg, ty, signed]
        self.shadow_cells = {}

    def _find_blocking_targets(self, node, signal_names, out=None):
        if out is None:
            out = set()
        if isinstance(node, ast.Assign) and node.blocking:
            base = node.target
            while isinstance(base, (ast.Index, ast.PartSelect)):
                base = base.base
            if isinstance(base, ast.Identifier) \
                    and base.name in signal_names:
                out.add(base.name)
        if isinstance(node, ast.ExprStmt) \
                and isinstance(node.expr, ast.PostIncrement):
            base = node.expr.target
            if isinstance(base, ast.Identifier) \
                    and base.name in signal_names:
                out.add(base.name)
        if isinstance(node, (ast.While, ast.DoWhile)):
            reads = set()
            collect_reads(node.cond, reads)
        for child in _children(node):
            self._find_blocking_targets(child, signal_names, out)
        # PostIncrement inside expressions (e.g. while (i++ < n)).
        if isinstance(node, ast.PostIncrement):
            base = node.target
            if isinstance(base, ast.Identifier) \
                    and base.name in signal_names:
                out.add(base.name)
        return out

    # -- activation scaffolding -------------------------------------------------

    def run(self):
        kind = self.always.kind
        events = self.always.events
        if kind == "initial" or kind == "final":
            entry = self.new_block("entry")
            self.set_block(entry)
            self._init_shadows()
            self.stmt(self.always.body)
            self._flush_shadows()
            self.builder.halt()
        elif kind in ("always_comb", "always_latch") or (
                events is not None and not any(e.edge for e in events)):
            entry = self.new_block("entry")
            self.set_block(entry)
            self._init_shadows()
            self.stmt(self.always.body)
            self._flush_shadows()
            observed = [b[1] for b in self.bindings.values()
                        if b[0] in ("sig", "shadow")]
            self.builder.wait(entry, None, observed)
        elif events:
            self._edge_triggered(events)
        else:
            # Plain `always` without sensitivity: free-running loop
            # (clock generators); must contain delays to be well-formed.
            entry = self.new_block("loop")
            self.set_block(entry)
            self._init_shadows()
            self.stmt(self.always.body)
            self._flush_shadows()
            self.builder.br(entry)
        parent_inputs = [self.elab.signals[n] for n in self.input_signals]
        parent_outputs = [self.elab.signals[n] for n in self.written_signals]
        return self.unit, parent_inputs, parent_outputs

    def _edge_term(self, old, news, edge):
        """An i1 "this edge fired" term from old/new trigger values.

        Two-valued triggers keep the change-and-level pattern of Figure 5.
        Nine-valued triggers compare X01 levels against the edge's target
        level, so ``X``/``Z`` phases match neither edge while ``X → 1``
        still counts as a rising edge (IEEE 1800 semantics).
        """
        if news.type.is_logic:
            target = self.builder.const_logic("1" if edge == "posedge"
                                              else "0")
            now_at = self.builder.eq(news, target)
            was_at = self.builder.eq(old, target)
            return self.builder.and_(now_at, self.builder.not_(was_at))
        changed = self.builder.neq(old, news)
        if edge == "posedge":
            return self.builder.and_(changed, news)
        return self.builder.and_(changed, self.builder.not_(news))

    def _edge_triggered(self, events):
        init = self.new_block("init")
        check = self.new_block("check")
        body = self.new_block("body")
        self.set_block(init)
        olds = []
        observed = []
        for event in events:
            signal = self._event_signal(event)
            observed.append(signal)
            if event.edge is not None:
                olds.append(self.builder.prb(signal))
            else:
                olds.append(None)
        self.builder.wait(check, None, observed)
        self.set_block(check)
        fire = None
        for event, old, signal in zip(events, olds, observed):
            news = self.builder.prb(signal)
            if event.edge is None:
                term = None  # any change on a plain event wakes us anyway
                continue
            term = self._edge_term(old, news, event.edge)
            fire = term if fire is None else self.builder.or_(fire, term)
        if fire is None:
            self.builder.br(body)
        else:
            self.builder.br_cond(fire, init, body)
        self.set_block(body)
        self._init_shadows()
        self.stmt(self.always.body)
        self._flush_shadows()
        self.builder.br(init)

    def _event_signal(self, event):
        expr = event.signal
        if isinstance(expr, ast.Identifier):
            binding = self.bindings.get(expr.name)
            if binding is None or binding[0] not in ("sig", "shadow"):
                raise MooreError(
                    f"sensitivity on non-signal {expr.name!r}",
                    getattr(expr, "line", None))
            return binding[1]
        raise MooreError("unsupported sensitivity expression",
                         getattr(expr, "line", None))

    def _init_shadows(self):
        for name in sorted(self.shadowed):
            binding = self.bindings[name]
            probed = self.builder.prb(binding[1])
            cell = self.builder.var(probed, name=f"{name}_sh")
            zero = self.builder.const_int(int_type(1), 0)
            dirty = self.builder.var(zero, name=f"{name}_dirty")
            self.shadow_cells[name] = (cell, dirty)

    def _flush_shadows(self):
        """Drive each shadow back to its signal — but only if it was
        written since the last flush.  An unconditional flush would
        re-drive stale values over other drivers of the same signal
        (e.g. a counter incremented by an always_ff while the testbench
        merely initialized it)."""
        zero_time = None
        for name in sorted(self.shadowed):
            cell, dirty = self.shadow_cells[name]
            was_written = self.builder.ld(dirty)
            value = self.builder.ld(cell)
            if zero_time is None:
                zero_time = self.builder.const_time(TimeValue(0))
            self.builder.drv(self.bindings[name][1], value, zero_time,
                             was_written)
            fresh = self.builder.const_int(int_type(1), 0)
            self.builder.st(dirty, fresh)

    # -- identifier access -----------------------------------------------------------

    def declare_local(self, name, cell, ty, signed):
        self.bindings[name] = ["local", cell, ty, signed]

    def _shadow_value(self, name):
        """The current value of a shadowed signal: the process's own
        unflushed write if dirty, the live signal value otherwise."""
        cell, dirty = self.shadow_cells[name]
        signal = self.bindings[name][1]
        was_written = self.builder.ld(dirty)
        live = self.builder.prb(signal)
        own = self.builder.ld(cell)
        choices = self.builder.array([live, own])
        return self.builder.mux(choices, was_written)

    def read(self, name, line=None):
        if name in self.shadowed:
            signed = self.bindings[name][3]
            return TypedValue(self._shadow_value(name), signed)
        binding = self.bindings.get(name)
        if binding is not None:
            kind, value, ty, signed = binding
            if kind == "sig":
                return TypedValue(self.builder.prb(value), signed)
            return TypedValue(self.builder.ld(value), signed)
        if name in self.elab.params:
            return self.const(32, self.elab.params[name], signed=True)
        raise MooreError(f"unknown identifier {name!r}", line)

    def call(self, name, args, line=None, statement=False):
        info = self.elab.functions.get(name)
        if info is None:
            raise MooreError(f"unknown function {name!r}", line)
        llhd_name, ret_ty, ret_signed, arg_types, arg_signed = info
        values = []
        for arg_expr, ty in zip(args, arg_types):
            tv = self.adapt(self.expr(arg_expr, _width_of(ty)), ty)
            values.append(tv.value)
        result = self.builder.call(llhd_name, values, ret_ty)
        if ret_ty.is_void:
            return None
        return TypedValue(result, ret_signed)

    # -- lvalues ----------------------------------------------------------------------

    def lvalue(self, expr):
        def base_lvalue(node):
            if not isinstance(node, ast.Identifier):
                raise MooreError("unsupported assignment target",
                                 getattr(node, "line", None))
            name = node.name
            if name in self.shadowed:
                cell, dirty = self.shadow_cells[name]
                _, _, ty, _ = self.bindings[name]
                return _Lvalue("cell", cell, [], ty, signal_name=name,
                               dirty=dirty)
            binding = self.bindings.get(name)
            if binding is None:
                raise MooreError(f"unknown assignment target {name!r}",
                                 node.line)
            kind, value, ty, _signed = binding
            if kind == "sig":
                return _Lvalue("signal", value, [], ty, signal_name=name)
            return _Lvalue("cell", value, [], ty)

        return self._resolve_projection(expr, base_lvalue)

    def write_lvalue(self, lvalue, value):
        if lvalue.kind == "cell":
            if lvalue.dirty is not None and lvalue.steps:
                # Read-modify-write of part of a shadowed signal: refresh
                # the shadow from the live value first, or the untouched
                # parts would flush stale data over other drivers.
                root = self._shadow_value(lvalue.signal_name)
                self.builder.st(lvalue.base, root)
            target = lvalue.base
            for step in lvalue.steps:
                target = self._project_ptr(target, step)
            self.builder.st(target, value.value)
            if lvalue.dirty is not None:
                one = self.builder.const_int(int_type(1), 1)
                self.builder.st(lvalue.dirty, one)
            return
        # Blocking write to a signal that somehow has no shadow: model as
        # an immediate (delta) drive.
        self.drive_lvalue(lvalue, value, _ZERO_DELAY, None)

    def drive_lvalue(self, lvalue, value, delay, line):
        name = lvalue.signal_name
        if name is None:
            raise MooreError("nonblocking assignment to a local variable",
                             line)
        signal = self.bindings[name][1]
        target = signal
        for step in lvalue.steps:
            target = self._project_sig(target, step)
        delay_const = self.builder.const_time(delay)
        self.builder.drv(target, value.value, delay_const)

    # -- timing statements ---------------------------------------------------------------

    def _stmt_Delay(self, node):
        self._flush_shadows()
        amount = self.builder.const_time(TimeValue.parse(node.amount.text))
        resume = self.new_block("after")
        self.builder.wait(resume, amount, [])
        self.set_block(resume)

    def _stmt_EventWait(self, node):
        self._flush_shadows()
        wait_block = self.new_block("evwait")
        check = self.new_block("evcheck")
        cont = self.new_block("evcont")
        self.builder.br(wait_block)
        self.set_block(wait_block)
        olds = []
        observed = []
        for event in node.events:
            signal = self._event_signal(event)
            observed.append(signal)
            olds.append(self.builder.prb(signal)
                        if event.edge is not None else None)
        self.builder.wait(check, None, observed)
        self.set_block(check)
        fire = None
        for event, old, signal in zip(node.events, olds, observed):
            if event.edge is None:
                continue
            news = self.builder.prb(signal)
            term = self._edge_term(old, news, event.edge)
            fire = term if fire is None else self.builder.or_(fire, term)
        if fire is None:
            self.builder.br(cont)
        else:
            self.builder.br_cond(fire, wait_block, cont)
        self.set_block(cont)


class FunctionBodyGen(BodyGen):
    """Generates the body of an LLHD function from a SV function."""

    def __init__(self, elab, func, decl, ret_ty, ret_signed, arg_signed):
        super().__init__(elab, func)
        self.decl = decl
        self.ret_ty = ret_ty
        self.ret_signed = ret_signed
        self.bindings = {}
        written = set()
        collect_written(decl.body, written)
        self._written = written
        self._arg_signed = arg_signed
        self.ret_cell = None
        self.exit_block = None

    def run(self):
        entry = self.new_block("entry")
        self.exit_block = self.new_block("exit")
        self.set_block(entry)
        for arg, (name, _), signed in zip(self.unit.args,
                                          self.decl.args,
                                          self._arg_signed):
            if name in self._written:
                cell = self.builder.var(arg, name=name)
                self.bindings[name] = ["local", cell, arg.type, signed]
            else:
                self.bindings[name] = ["value", arg, arg.type, signed]
        if not self.ret_ty.is_void:
            init = self._default_const(self.ret_ty)
            self.ret_cell = self.builder.var(init, name="retval")
            self.bindings[self.decl.name] = [
                "local", self.ret_cell, self.ret_ty, self.ret_signed]
        self.stmt(self.decl.body)
        self.builder.br(self.exit_block)
        self.set_block(self.exit_block)
        if self.ret_ty.is_void:
            self.builder.ret()
        else:
            result = self.builder.ld(self.ret_cell)
            self.builder.ret(result)
        # Keep the exit block last for readability.
        self.unit.blocks.remove(self.exit_block)
        self.unit.blocks.append(self.exit_block)

    def declare_local(self, name, cell, ty, signed):
        self.bindings[name] = ["local", cell, ty, signed]

    def read(self, name, line=None):
        binding = self.bindings.get(name)
        if binding is not None:
            kind, value, ty, signed = binding
            if kind == "value":
                return TypedValue(value, signed)
            return TypedValue(self.builder.ld(value), signed)
        if name in self.elab.params:
            return self.const(32, self.elab.params[name], signed=True)
        raise MooreError(f"unknown identifier {name!r}", line)

    def call(self, name, args, line=None, statement=False):
        info = self.elab.functions.get(name)
        if info is None:
            raise MooreError(f"unknown function {name!r}", line)
        llhd_name, ret_ty, ret_signed, arg_types, arg_signed = info
        values = []
        for arg_expr, ty in zip(args, arg_types):
            tv = self.adapt(self.expr(arg_expr, _width_of(ty)), ty)
            values.append(tv.value)
        result = self.builder.call(llhd_name, values, ret_ty)
        if ret_ty.is_void:
            return None
        return TypedValue(result, ret_signed)

    def lvalue(self, expr):
        def base_lvalue(node):
            if not isinstance(node, ast.Identifier):
                raise MooreError("unsupported assignment target",
                                 getattr(node, "line", None))
            binding = self.bindings.get(node.name)
            if binding is None or binding[0] == "value":
                raise MooreError(
                    f"cannot assign to {node.name!r} in a function",
                    node.line)
            return _Lvalue("cell", binding[1], [], binding[2])

        return self._resolve_projection(expr, base_lvalue)

    def write_lvalue(self, lvalue, value):
        target = lvalue.base
        for step in lvalue.steps:
            target = self._project_ptr(target, step)
        self.builder.st(target, value.value)

    def drive_lvalue(self, lvalue, value, delay, line):
        raise MooreError("nonblocking assignment inside a function", line)

    def _stmt_ReturnStmt(self, node):
        if node.value is not None:
            value = self.adapt(self.expr(node.value,
                                         _width_of(self.ret_ty)),
                               self.ret_ty)
            self.builder.st(self.ret_cell, value.value)
        dead = self.new_block("postret")
        self.builder.br(self.exit_block)
        self.set_block(dead)
