"""Abstract syntax tree for the Moore SystemVerilog subset.

Plain dataclasses; the codegen walks these directly.  Source line numbers
are kept on every node for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# -- expressions -----------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class Number(Expr):
    value: int = 0
    width: Optional[int] = None   # None: unsized decimal
    has_xz: bool = False


@dataclass
class UnbasedUnsized(Expr):
    """'0 / '1 / 'x: fills the context width."""
    fill: str = "0"


@dataclass
class TimeLiteral(Expr):
    text: str = "0s"


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class Ternary(Expr):
    cond: Expr = None
    if_true: Expr = None
    if_false: Expr = None


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class PartSelect(Expr):
    base: Expr = None
    msb: Expr = None
    lsb: Expr = None


@dataclass
class Concat(Expr):
    parts: list = field(default_factory=list)


@dataclass
class Replicate(Expr):
    count: Expr = None
    value: Expr = None


@dataclass
class FunctionCall(Expr):
    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class SystemCall(Expr):
    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class PostIncrement(Expr):
    target: Expr = None
    op: str = "++"


# -- statements --------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    statements: list = field(default_factory=list)
    declarations: list = field(default_factory=list)   # local automatic vars


@dataclass
class Assign(Stmt):
    target: Expr = None
    value: Expr = None
    blocking: bool = True
    delay: Optional[Expr] = None
    op: Optional[str] = None      # compound: "+=", "-=", ...


@dataclass
class If(Stmt):
    cond: Expr = None
    then_body: Stmt = None
    else_body: Optional[Stmt] = None


@dataclass
class Case(Stmt):
    subject: Expr = None
    items: list = field(default_factory=list)   # [(labels|None, Stmt)]
    wildcard: bool = False                      # casez


@dataclass
class For(Stmt):
    init: Stmt = None
    cond: Expr = None
    step: Stmt = None
    body: Stmt = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class Delay(Stmt):
    amount: Expr = None


@dataclass
class EventWait(Stmt):
    """@(posedge clk) as a statement inside a process body."""
    events: list = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class AssertStmt(Stmt):
    cond: Expr = None
    message: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    name: str = ""
    data_type: "DataType" = None
    init: Optional[Expr] = None
    automatic: bool = False


# -- module items ----------------------------------------------------------------------

@dataclass
class DataType:
    """A (possibly packed/unpacked-array) data type."""
    base: str = "logic"           # logic | bit | int | integer
    packed: Optional[tuple] = None   # (msb Expr, lsb Expr)
    unpacked: list = field(default_factory=list)  # [(size Expr)] per dim
    signed: bool = False
    line: int = 0


@dataclass
class Port:
    name: str = ""
    direction: str = "input"
    data_type: DataType = None
    line: int = 0


@dataclass
class Parameter:
    name: str = ""
    default: Optional[Expr] = None
    line: int = 0


@dataclass
class NetDecl:
    name: str = ""
    data_type: DataType = None
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class ContinuousAssign:
    target: Expr = None
    value: Expr = None
    delay: Optional[Expr] = None
    line: int = 0


@dataclass
class EventExpr:
    """posedge clk / negedge rst / plain signal in a sensitivity list."""
    edge: Optional[str] = None     # "posedge" | "negedge" | None
    signal: Expr = None


@dataclass
class AlwaysBlock:
    kind: str = "always"   # always | always_ff | always_comb | initial
    events: Optional[list] = None  # sensitivity list (None = always_comb/*)
    body: Stmt = None
    line: int = 0


@dataclass
class FunctionDecl:
    name: str = ""
    return_type: Optional[DataType] = None
    args: list = field(default_factory=list)   # [(name, DataType)]
    body: Stmt = None
    declarations: list = field(default_factory=list)
    line: int = 0


@dataclass
class Instantiation:
    module: str = ""
    name: str = ""
    param_overrides: list = field(default_factory=list)  # [(name|None, Expr)]
    connections: list = field(default_factory=list)      # [(name|None, Expr)]
    wildcard: bool = False                               # .*
    line: int = 0


@dataclass
class GenerateFor:
    genvar: str = ""
    init: Expr = None
    cond: Expr = None
    step: Expr = None
    items: list = field(default_factory=list)
    label: str = ""
    line: int = 0


@dataclass
class ModuleDecl:
    name: str = ""
    parameters: list = field(default_factory=list)
    ports: list = field(default_factory=list)
    items: list = field(default_factory=list)
    line: int = 0


@dataclass
class SourceFile:
    modules: list = field(default_factory=list)
