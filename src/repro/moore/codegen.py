"""Code generation: Moore AST → Behavioural LLHD.

Mapping (section 3 of the paper):

* SystemVerilog modules → LLHD entities (hierarchy, §3.1);
* ``always``/``always_ff``/``always_comb``/``initial`` blocks → LLHD
  processes, instantiated from the entity (§3.2), with edge-sensitive
  lists generating the canonical probe/wait/compare pattern of Figure 5;
* continuous assigns → probe/compute/drive data flow in the entity body;
* functions → LLHD functions;
* parameters and generate-for are elaborated (unrolled) here, as the
  paper prescribes (§3.3) — LLHD itself has no meta-programming layer.

Variable semantics: inside a process, blocking-assigned module signals are
*shadowed* in a stack cell (``var``) initialized from a probe at the top
of each activation; reads go through the shadow, and the accumulated value
is flushed to the signal with a delta-delay drive at each suspension
point.  ``mem2reg`` later promotes the shadows to SSA, which is what makes
Moore-generated processes lowerable by the §4 pipeline.

Width semantics are simplified relative to IEEE 1800: operands widen to
the larger operand (zero- or sign-extended by signedness), assignments
truncate/extend to the target; ``bit`` and ``logic`` both map to ``iN``
(two-valued — the IR's nine-valued ``lN`` remains available through the
builder API).  These deviations are documented in DESIGN.md.
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.ninevalued import LogicVec
from ..ir.types import (
    array_type, int_type, logic_type, signal_type, void_type,
)
from ..ir.units import Entity, Function, Module, Process
from ..ir.values import TimeValue
from . import ast
from .lexer import MooreSyntaxError
from .parser import parse_source


class MooreError(Exception):
    """Raised on semantic errors during elaboration/codegen."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class TypedValue:
    """An LLHD value plus SystemVerilog signedness."""

    __slots__ = ("value", "signed")

    def __init__(self, value, signed=False):
        self.value = value
        self.signed = signed

    @property
    def width(self):
        return self.value.type.width


def compile_source(source, top=None, module_name="moore", four_state=False):
    """Compile SystemVerilog source text to a Behavioural LLHD module.

    All modules in the source are elaborated with their default
    parameters; parametrized instantiations produce specialized entities
    with mangled names.  ``top`` is accepted for symmetry but elaboration
    is whole-source.

    With ``four_state=True``, every data-typed value lowers to the
    nine-valued ``lN`` type instead of the two-valued ``iN`` — the
    IEEE 1164 simulation mode, where ``'x``/``'z`` literals and unknown
    propagation are live.  Conditions, edge tests, and comparisons
    produce ``i1`` as before (an unknown condition is false).
    """
    tree = parse_source(source)
    generator = CodeGenerator(tree, module_name, four_state=four_state)
    return generator.compile()


class CodeGenerator:
    def __init__(self, tree, module_name="moore", four_state=False):
        self.tree = tree
        self.module = Module(module_name)
        self.module_asts = {m.name: m for m in tree.modules}
        self.four_state = four_state
        self.elaborated = {}   # (name, frozen params) -> entity name
        self._specializations = 0

    def compile(self):
        for module_ast in self.tree.modules:
            self.elaborate(module_ast.name, {})
        return self.module

    def elaborate(self, name, param_overrides):
        """Elaborate a module with parameter overrides; returns entity name."""
        module_ast = self.module_asts.get(name)
        if module_ast is None:
            raise MooreError(f"unknown module {name!r}")
        params = {}
        for parameter in module_ast.parameters:
            if parameter.name in param_overrides:
                params[parameter.name] = param_overrides[parameter.name]
            elif parameter.default is not None:
                params[parameter.name] = _const_eval(parameter.default, {})
            else:
                raise MooreError(
                    f"module {name}: parameter {parameter.name} has no "
                    f"value", parameter.line)
        key = (name, tuple(sorted(params.items())))
        if key in self.elaborated:
            return self.elaborated[key]
        if param_overrides:
            self._specializations += 1
            entity_name = f"{name}__{self._specializations}"
        else:
            entity_name = name
        self.elaborated[key] = entity_name
        ModuleElaborator(self, module_ast, params, entity_name).run()
        return entity_name


def _const_eval(expr, env):
    """Evaluate an elaboration-time constant expression."""
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Identifier):
        if expr.name in env:
            return env[expr.name]
        raise MooreError(f"{expr.name!r} is not an elaboration constant",
                         expr.line)
    if isinstance(expr, ast.Unary):
        value = _const_eval(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
        raise MooreError(f"constant unary {expr.op!r} unsupported",
                         expr.line)
    if isinstance(expr, ast.Binary):
        a = _const_eval(expr.lhs, env)
        b = _const_eval(expr.rhs, env)
        ops = {
            "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
            "/": lambda: a // b, "%": lambda: a % b,
            "<<": lambda: a << b, ">>": lambda: a >> b,
            "<": lambda: int(a < b), "<=": lambda: int(a <= b),
            ">": lambda: int(a > b), ">=": lambda: int(a >= b),
            "==": lambda: int(a == b), "!=": lambda: int(a != b),
            "&": lambda: a & b, "|": lambda: a | b, "^": lambda: a ^ b,
            "&&": lambda: int(bool(a) and bool(b)),
            "||": lambda: int(bool(a) or bool(b)),
        }
        if expr.op not in ops:
            raise MooreError(f"constant binary {expr.op!r} unsupported",
                             expr.line)
        return ops[expr.op]()
    if isinstance(expr, ast.Ternary):
        return (_const_eval(expr.if_true, env)
                if _const_eval(expr.cond, env)
                else _const_eval(expr.if_false, env))
    if isinstance(expr, ast.SystemCall) and expr.name == "$clog2":
        value = _const_eval(expr.args[0], env)
        return max(1, (max(value - 1, 0)).bit_length())
    raise MooreError("expression is not an elaboration constant",
                     getattr(expr, "line", None))


class ModuleElaborator:
    """Elaborates one module (with bound parameters) into an entity."""

    def __init__(self, generator, module_ast, params, entity_name):
        self.generator = generator
        self.module_ast = module_ast
        self.params = dict(params)
        self.four_state = generator.four_state
        self.entity_name = entity_name
        self.signals = {}       # name -> LLHD value of signal type
        self.signal_types = {}  # name -> (element type, signed)
        self.functions = {}     # local name -> llhd function name
        self.entity = None
        self.builder = None
        self._prb_cache = {}
        self._const_cache = {}
        self._process_count = 0

    # -- types ----------------------------------------------------------------

    def data_type(self, width):
        """The scalar data type for ``width`` bits: iN, or lN four-state."""
        return logic_type(width) if self.four_state else int_type(width)

    def lower_type(self, data_type):
        env = self.params
        if data_type is None:
            return self.data_type(1), False
        base_width = 1
        signed = data_type.signed
        if data_type.base in ("int", "integer"):
            base_width = 32
            signed = True
        if data_type.packed is not None:
            msb = _const_eval(data_type.packed[0], env)
            lsb = _const_eval(data_type.packed[1], env)
            base_width = abs(msb - lsb) + 1
        ty = self.data_type(base_width)
        for dim in reversed(data_type.unpacked or []):
            kind, first, second = dim
            if kind == "size":
                length = _const_eval(first, env)
            else:
                hi = _const_eval(first, env)
                lo = _const_eval(second, env)
                length = abs(hi - lo) + 1
            ty = array_type(length, ty)
        return ty, signed

    # -- elaboration -------------------------------------------------------------

    def run(self):
        in_types, in_names, out_types, out_names = [], [], [], []
        port_info = []
        for port in self.module_ast.ports:
            ty, signed = self.lower_type(port.data_type)
            sig_ty = signal_type(ty)
            if port.direction == "input":
                in_types.append(sig_ty)
                in_names.append(port.name)
            else:
                out_types.append(sig_ty)
                out_names.append(port.name)
            port_info.append((port.name, ty, signed))
        self.entity = Entity(self.entity_name, in_types, in_names,
                             out_types, out_names)
        self.generator.module.add(self.entity)
        self.builder = Builder.at_end(self.entity.body)
        in_iter = iter(self.entity.inputs)
        out_iter = iter(self.entity.outputs)
        for port, (name, ty, signed) in zip(self.module_ast.ports,
                                            port_info):
            arg = next(in_iter) if port.direction == "input" \
                else next(out_iter)
            self.signals[name] = arg
            self.signal_types[name] = (ty, signed)
        self._process_items(self.module_ast.items, self.params)

    def _process_items(self, items, env):
        for item in items:
            self._process_item(item, env)

    def _process_item(self, item, env):
        if isinstance(item, ast.Parameter):
            self.params[item.name] = _const_eval(item.default, env)
        elif isinstance(item, ast.NetDecl):
            self._declare_net(item, env)
        elif isinstance(item, ast.ContinuousAssign):
            self._continuous_assign(item)
        elif isinstance(item, ast.AlwaysBlock):
            self._always_block(item)
        elif isinstance(item, ast.FunctionDecl):
            self._function_decl(item)
        elif isinstance(item, ast.Instantiation):
            self._instantiate(item, env)
        elif isinstance(item, ast.GenerateFor):
            self._generate_for(item, env)
        else:
            raise MooreError(f"unsupported module item {type(item).__name__}",
                             getattr(item, "line", None))

    def _declare_net(self, item, env):
        ty, signed = self.lower_type(item.data_type)
        init_value = 0
        if item.init is not None:
            init_value = _const_eval(item.init, env)
        init = self._default_const(ty, init_value)
        sig = self.builder.sig(init, name=item.name)
        self.signals[item.name] = sig
        self.signal_types[item.name] = (ty, signed)

    def _default_const(self, ty, value=0):
        if ty.is_int:
            return self.builder.const_int(ty, value)
        if ty.is_logic:
            return self.builder.const_logic(
                LogicVec.from_int(value, ty.width))
        if ty.is_array:
            element = self._default_const(ty.element, value)
            return self.builder.array_splat(ty.length, element)
        raise MooreError(f"cannot build initial value of type {ty}")

    # -- continuous assigns (entity data flow) -----------------------------------

    def _entity_read(self, name, line=None):
        sig = self.signals.get(name)
        if sig is None:
            if name in self.params:
                return TypedValue(
                    self._default_const(self.data_type(32),
                                        self.params[name]), True)
            raise MooreError(f"unknown identifier {name!r}", line)
        cached = self._prb_cache.get(name)
        if cached is None:
            cached = self.builder.prb(sig, name=f"{name}p")
            self._prb_cache[name] = cached
        signed = self.signal_types[name][1]
        return TypedValue(cached, signed)

    def _continuous_assign(self, item):
        ctx = EntityExprContext(self)
        target, element_ty = self._entity_lvalue(item.target, ctx)
        value = ctx.expr(item.value, width_hint=_width_of(element_ty))
        value = ctx.adapt(value, element_ty)
        delay = self.builder.const_time(
            TimeValue.parse(item.delay.text) if item.delay is not None
            else TimeValue(0))
        self.builder.drv(target, value.value, delay)

    def _entity_lvalue(self, expr, ctx):
        if isinstance(expr, ast.Identifier):
            sig = self.signals.get(expr.name)
            if sig is None:
                raise MooreError(f"unknown signal {expr.name!r}", expr.line)
            return sig, sig.type.element
        if isinstance(expr, ast.Index):
            base, base_ty = self._entity_lvalue(expr.base, ctx)
            index = _try_const(expr.index, self.params)
            if base_ty.is_array:
                if index is not None:
                    proj = self.builder.extf(base, index)
                else:
                    idx = ctx.expr(expr.index)
                    proj = self.builder.extf(base, idx.value)
                return proj, base_ty.element
            if index is None:
                raise MooreError(
                    "dynamic bit-select on assignment targets must be "
                    "constant in continuous assigns", expr.line)
            return self.builder.exts(base, index, 1), int_type(1)
        if isinstance(expr, ast.PartSelect):
            base, base_ty = self._entity_lvalue(expr.base, ctx)
            msb = _const_eval(expr.msb, self.params)
            lsb = _const_eval(expr.lsb, self.params)
            lo, width = min(msb, lsb), abs(msb - lsb) + 1
            proj = self.builder.exts(base, lo, width)
            return proj, proj.type.element
        raise MooreError("unsupported assignment target", expr.line)

    # -- instantiation -----------------------------------------------------------------

    def _instantiate(self, item, env):
        overrides = {}
        child_ast = self.generator.module_asts.get(item.module)
        if child_ast is None:
            raise MooreError(f"unknown module {item.module!r}", item.line)
        param_names = [p.name for p in child_ast.parameters]
        for i, (name, expr) in enumerate(item.param_overrides):
            key = name if name is not None else param_names[i]
            overrides[key] = _const_eval(expr, env)
        entity_name = self.generator.elaborate(item.module, overrides)
        child = self.generator.module.get(entity_name)

        port_names = [p.name for p in child_ast.ports]
        connections = {}
        if item.wildcard:
            for port in port_names:
                if port in self.signals:
                    connections[port] = self.signals[port]
        positional = 0
        for name, expr in item.connections:
            if name == "*":
                for port in port_names:
                    if port not in connections and port in self.signals:
                        connections[port] = self.signals[port]
                continue
            if name is None:
                name = port_names[positional]
                positional += 1
            if expr is None:
                continue
            connections[name] = self._port_signal(expr)
        child_arg_types = {a.name: a.type for a in child.args}
        inputs, outputs = [], []
        for port in child_ast.ports:
            bound = connections.get(port.name)
            if bound is None:
                init = self._default_const(
                    child_arg_types[port.name].element)
                bound = self.builder.sig(
                    init, name=f"{item.name}_{port.name}")
            if port.direction == "input":
                inputs.append(bound)
            else:
                outputs.append(bound)
        self.builder.inst(entity_name, inputs, outputs)

    def _port_signal(self, expr):
        if isinstance(expr, ast.Identifier) and expr.name in self.signals:
            return self.signals[expr.name]
        if isinstance(expr, ast.Index):
            ctx = EntityExprContext(self)
            base = self._port_signal(expr.base)
            index = _try_const(expr.index, self.params)
            if base.type.element.is_array:
                if index is None:
                    idx = ctx.expr(expr.index)
                    return self.builder.extf(base, idx.value)
                return self.builder.extf(base, index)
            if index is None:
                raise MooreError("dynamic port bit-select unsupported",
                                 expr.line)
            return self.builder.exts(base, index, 1)
        if isinstance(expr, ast.PartSelect):
            base = self._port_signal(expr.base)
            msb = _const_eval(expr.msb, self.params)
            lsb = _const_eval(expr.lsb, self.params)
            return self.builder.exts(base, min(msb, lsb),
                                     abs(msb - lsb) + 1)
        if isinstance(expr, (ast.Number, ast.UnbasedUnsized)):
            value = expr.value if isinstance(expr, ast.Number) else (
                0 if expr.fill == "0" else -1)
            width = expr.width if isinstance(expr, ast.Number) \
                and expr.width else 32
            const = self._default_const(self.data_type(width), value)
            return self.builder.sig(const)
        raise MooreError("unsupported port connection expression",
                         getattr(expr, "line", None))

    # -- generate ---------------------------------------------------------------------------

    def _generate_for(self, item, env):
        value = _const_eval(item.init, env)
        iterations = 0
        while True:
            loop_env = dict(env)
            loop_env[item.genvar] = value
            if not _const_eval(item.cond, loop_env):
                break
            iterations += 1
            if iterations > 4096:
                raise MooreError("generate-for exceeds 4096 iterations",
                                 item.line)
            saved = self.params.get(item.genvar)
            self.params[item.genvar] = value
            for sub in item.items:
                if isinstance(sub, ast.Instantiation):
                    sub = ast.Instantiation(
                        module=sub.module, name=f"{sub.name}_{value}",
                        param_overrides=sub.param_overrides,
                        connections=sub.connections,
                        wildcard=sub.wildcard, line=sub.line)
                self._process_item(sub, loop_env)
            if saved is None:
                self.params.pop(item.genvar, None)
            else:
                self.params[item.genvar] = saved
            # Step: evaluate the step statement on the genvar.
            value = self._eval_genvar_step(item.step, item.genvar, value,
                                           loop_env)

    def _eval_genvar_step(self, step, genvar, value, env):
        if isinstance(step, ast.PostIncrement):
            return value + (1 if step.op == "++" else -1)
        if isinstance(step, ast.Assign):
            env = dict(env)
            env[genvar] = value
            if step.op:
                return _const_eval(
                    ast.Binary(op=step.op, lhs=ast.Identifier(name=genvar),
                               rhs=step.value), env)
            return _const_eval(step.value, env)
        raise MooreError("unsupported generate-for step")

    # -- functions --------------------------------------------------------------------------

    def _function_decl(self, item):
        llhd_name = f"{self.entity_name}_{item.name}"
        arg_types = []
        arg_signed = []
        arg_names = []
        for name, data_type in item.args:
            ty, signed = self.lower_type(data_type)
            arg_types.append(ty)
            arg_signed.append(signed)
            arg_names.append(name)
        if item.return_type is not None:
            ret_ty, ret_signed = self.lower_type(item.return_type)
        else:
            ret_ty, ret_signed = void_type(), False
        func = Function(llhd_name, arg_types, arg_names, ret_ty)
        self.generator.module.add(func)
        self.functions[item.name] = (llhd_name, ret_ty, ret_signed,
                                     arg_types, arg_signed)
        from .procgen import FunctionBodyGen

        FunctionBodyGen(self, func, item, ret_ty, ret_signed,
                        arg_signed).run()

    # -- always blocks ------------------------------------------------------------------------

    def _always_block(self, item):
        from .procgen import ProcessBodyGen

        self._process_count += 1
        name = f"{self.entity_name}_{item.kind}_{self._process_count}"
        gen = ProcessBodyGen(self, item, name)
        process, inputs, outputs = gen.run()
        self.generator.module.add(process)
        self.builder.inst(process.name, inputs, outputs)


def _width_of(ty):
    return ty.width if ty.is_int else None


def _try_const(expr, env):
    try:
        return _const_eval(expr, env)
    except MooreError:
        return None


# ------------------------------------------------------------------------------
# Expression contexts
# ------------------------------------------------------------------------------


class ExprContext:
    """Shared expression codegen; subclasses provide identifier access."""

    def __init__(self, elaborator, builder):
        self.elab = elaborator
        self.builder = builder

    # subclass interface -------------------------------------------------------

    def read(self, name, line=None):
        raise NotImplementedError

    def call(self, name, args, line=None):
        raise NotImplementedError

    # helpers ---------------------------------------------------------------------

    def data_type(self, width):
        return self.elab.data_type(width)

    def const(self, width, value, signed=False):
        if self.elab.four_state:
            return TypedValue(self.builder.const_logic(
                LogicVec.from_int(value, width)), signed)
        return TypedValue(
            self.builder.const_int(int_type(width), value), signed)

    def _const_like(self, ty, value):
        """A constant of ``ty``'s kind (iN or lN) with the given value."""
        if ty.is_logic:
            return self.builder.const_logic(
                LogicVec.from_int(value, ty.width))
        return self.builder.const_int(ty, value)

    def _to_logic(self, tv):
        """Lift an i1 truth value into l1 (four-state contexts).

        Comparison and boolean results stay ``i1``; when one feeds a
        nine-valued signal or operand, select between the ``0``/``1``
        logic constants — there is no iN→lN cast instruction.
        """
        if tv.width != 1:
            raise MooreError(
                f"cannot lift i{tv.width} into a nine-valued context")
        zero = self.builder.const_logic("0")
        one = self.builder.const_logic("1")
        choices = self.builder.array([zero, one])
        return TypedValue(self.builder.mux(choices, tv.value), tv.signed)

    def adapt(self, tv, target_ty):
        """Widen/truncate a typed value to an iN/lN target type."""
        if not (target_ty.is_int or target_ty.is_logic):
            return tv
        if target_ty.is_logic and tv.value.type.is_int:
            tv = self._to_logic(tv)
        width = tv.width
        target = target_ty.width
        if width == target:
            return tv
        if width < target:
            if tv.signed:
                return TypedValue(
                    self.builder.sext(tv.value, target_ty), tv.signed)
            return TypedValue(
                self.builder.zext(tv.value, target_ty), tv.signed)
        return TypedValue(
            self.builder.trunc(tv.value, target_ty), tv.signed)

    def to_bool(self, tv):
        """An i1 truth value; unknown nine-valued bits count as false."""
        if tv.value.type.is_logic:
            zero = self._const_like(tv.value.type, 0)
            return self.builder.neq(tv.value, zero)
        if tv.width == 1:
            return tv.value
        zero = self.builder.const_int(tv.value.type, 0)
        return self.builder.neq(tv.value, zero)

    def _unify(self, a, b):
        width = max(a.width, b.width)
        if a.value.type.is_logic or b.value.type.is_logic:
            ty = logic_type(width)  # mixed iN operands are lifted by adapt
        else:
            ty = int_type(width)
        return self.adapt(a, ty), self.adapt(b, ty)

    # main dispatch -----------------------------------------------------------------

    def expr(self, node, width_hint=None):
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise MooreError(
                f"unsupported expression {type(node).__name__}",
                getattr(node, "line", None))
        return method(node, width_hint)

    def _expr_Number(self, node, width_hint):
        width = node.width or width_hint or 32
        # IEEE 1800: unsized decimal literals are signed, based literals
        # (8'hFF etc.) are unsigned.  Signedness decides slt-vs-ult when
        # both comparison operands are signed.
        return self.const(width, node.value, signed=node.width is None)

    def _expr_UnbasedUnsized(self, node, width_hint):
        width = width_hint or 1
        if self.elab.four_state and node.fill in ("x", "z"):
            vec = LogicVec.filled(node.fill.upper(), width)
            return TypedValue(self.builder.const_logic(vec), False)
        value = 0 if node.fill in ("0", "x", "z") else (1 << width) - 1
        return self.const(width, value)

    def _expr_TimeLiteral(self, node, width_hint):
        return TypedValue(
            self.builder.const_time(TimeValue.parse(node.text)), False)

    def _expr_Identifier(self, node, width_hint):
        return self.read(node.name, node.line)

    def _expr_Unary(self, node, width_hint):
        if node.op == "!":
            operand = self.expr(node.operand)
            b = self.to_bool(operand)
            one = self.builder.const_int(int_type(1), 1)
            return TypedValue(self.builder.xor(b, one), False)
        if node.op == "~":
            operand = self.expr(node.operand, width_hint)
            return TypedValue(self.builder.not_(operand.value),
                              operand.signed)
        if node.op == "-":
            operand = self.expr(node.operand, width_hint)
            return TypedValue(self.builder.neg(operand.value), True)
        if node.op in ("&", "|", "^"):
            return self._reduction(node)
        raise MooreError(f"unsupported unary {node.op!r}", node.line)

    def _reduction(self, node):
        operand = self.expr(node.operand)
        width = operand.width
        if node.op == "&":
            ones = self._const_like(operand.value.type, (1 << width) - 1)
            return TypedValue(self.builder.eq(operand.value, ones), False)
        if node.op == "|":
            zero = self._const_like(operand.value.type, 0)
            return TypedValue(self.builder.neq(operand.value, zero), False)
        # ^: parity via xor-fold.
        value = operand.value
        shift = 1
        while shift < width:
            amount = self.builder.const_int(int_type(32), shift)
            value = self.builder.xor(value, self.builder.shr(value, amount))
            shift <<= 1
        bit1 = logic_type(1) if value.type.is_logic else int_type(1)
        return TypedValue(self.builder.trunc(value, bit1)
                          if width > 1 else value, False)

    _CMP = {"<": ("ult", "slt"), ">": ("ugt", "sgt"),
            "<=": ("ule", "sle"), ">=": ("uge", "sge")}

    def _expr_Binary(self, node, width_hint):
        op = node.op
        if op in ("&&", "||"):
            a = self.to_bool(self.expr(node.lhs))
            b = self.to_bool(self.expr(node.rhs))
            method = self.builder.and_ if op == "&&" else self.builder.or_
            return TypedValue(method(a, b), False)
        if op in ("==", "!=", "===", "!=="):
            a, b = self._unify(self.expr(node.lhs), self.expr(node.rhs))
            method = self.builder.eq if op in ("==", "===") \
                else self.builder.neq
            return TypedValue(method(a.value, b.value), False)
        if op in self._CMP:
            a, b = self._unify(self.expr(node.lhs), self.expr(node.rhs))
            signed = a.signed and b.signed
            opcode = self._CMP[op][1 if signed else 0]
            return TypedValue(
                self.builder.compare(opcode, a.value, b.value), False)
        if op in ("<<", ">>", "<<<", ">>>"):
            a = self.expr(node.lhs, width_hint)
            amount = self.expr(node.rhs)
            method = self.builder.shl if op in ("<<", "<<<") \
                else self.builder.shr
            return TypedValue(method(a.value, amount.value), a.signed)
        arith = {"+": "add", "-": "sub", "*": "mul", "&": "and",
                 "|": "or", "^": "xor"}
        if op in arith:
            a, b = self._unify(self.expr(node.lhs, width_hint),
                               self.expr(node.rhs, width_hint))
            signed = a.signed and b.signed
            return TypedValue(
                self.builder.binary(arith[op], a.value, b.value), signed)
        if op in ("/", "%"):
            a, b = self._unify(self.expr(node.lhs, width_hint),
                               self.expr(node.rhs, width_hint))
            signed = a.signed and b.signed
            opcode = {"/": ("udiv", "sdiv"), "%": ("umod", "smod")}[op]
            return TypedValue(
                self.builder.binary(opcode[1 if signed else 0],
                                    a.value, b.value), signed)
        raise MooreError(f"unsupported binary {op!r}", node.line)

    def _expr_Ternary(self, node, width_hint):
        cond = self.to_bool(self.expr(node.cond))
        a = self.expr(node.if_false, width_hint)
        b = self.expr(node.if_true, width_hint)
        a, b = self._unify(a, b)
        choices = self.builder.array([a.value, b.value])
        return TypedValue(self.builder.mux(choices, cond),
                          a.signed and b.signed)

    def _expr_Index(self, node, width_hint):
        base = self.expr(node.base)
        index = _try_const(node.index, self.elab.params)
        if base.value.type.is_array:
            if index is not None:
                return TypedValue(self.builder.extf(base.value, index),
                                  False)
            idx = self.expr(node.index)
            return TypedValue(self.builder.extf(base.value, idx.value),
                              False)
        # Bit select on an integer / logic vector.
        if index is not None:
            return TypedValue(
                self.builder.exts(base.value, index, 1), False)
        idx = self.expr(node.index)
        shifted = self.builder.shr(base.value, idx.value)
        bit1 = logic_type(1) if shifted.type.is_logic else int_type(1)
        return TypedValue(self.builder.trunc(shifted, bit1), False)

    def _expr_PartSelect(self, node, width_hint):
        base = self.expr(node.base)
        msb = _const_eval(node.msb, self.elab.params)
        lsb = _const_eval(node.lsb, self.elab.params)
        lo, width = min(msb, lsb), abs(msb - lsb) + 1
        return TypedValue(self.builder.exts(base.value, lo, width), False)

    def _expr_Concat(self, node, width_hint):
        parts = [self.expr(p) for p in node.parts]
        total = sum(p.width for p in parts)
        ty = self.data_type(total)
        result = None
        offset = total
        for part in parts:
            offset -= part.width
            extended = self.adapt(TypedValue(part.value, False), ty)
            if offset:
                amount = self.builder.const_int(int_type(32), offset)
                shifted = self.builder.shl(extended.value, amount)
            else:
                shifted = extended.value
            result = shifted if result is None \
                else self.builder.or_(result, shifted)
        return TypedValue(result, False)

    def _expr_Replicate(self, node, width_hint):
        count = _const_eval(node.count, self.elab.params)
        value = self.expr(node.value)
        parts = ast.Concat(parts=[node.value] * count, line=node.line)
        if count == 1:
            return value
        return self._expr_Concat(parts, width_hint)

    def _expr_FunctionCall(self, node, width_hint):
        return self.call(node.name, node.args, node.line)

    def _expr_SystemCall(self, node, width_hint):
        if node.name == "$clog2":
            value = _const_eval(node.args[0], self.elab.params)
            return self.const(32, max(1, (max(value - 1, 0)).bit_length()))
        if node.name in ("$signed", "$unsigned"):
            inner = self.expr(node.args[0], width_hint)
            return TypedValue(inner.value, node.name == "$signed")
        if node.name == "$time":
            # Approximation: constant 0 (only used in prints).
            return self.const(64, 0)
        raise MooreError(f"unsupported system call {node.name}", node.line)


class EntityExprContext(ExprContext):
    """Expression evaluation inside an entity body (continuous assigns)."""

    def __init__(self, elaborator):
        super().__init__(elaborator, elaborator.builder)

    def read(self, name, line=None):
        return self.elab._entity_read(name, line)

    def call(self, name, args, line=None):
        info = self.elab.functions.get(name)
        if info is None:
            raise MooreError(f"unknown function {name!r}", line)
        llhd_name, ret_ty, ret_signed, arg_types, arg_signed = info
        values = []
        for arg_expr, ty in zip(args, arg_types):
            tv = self.adapt(self.expr(arg_expr, _width_of(ty)), ty)
            values.append(tv.value)
        result = self.builder.call(llhd_name, values, ret_ty)
        return TypedValue(result, ret_signed)
