"""Moore: a SystemVerilog-subset frontend emitting Behavioural LLHD.

Usage::

    from repro.moore import compile_sv
    module = compile_sv(open("design.sv").read())

The supported subset covers what the paper's evaluation needs: modules
with ANSI ports and parameters, generate-for, always/always_ff/
always_comb/initial blocks, blocking and nonblocking assignments with
delays, if/case/for/while/do-while, functions, concatenation and slicing,
instantiation (positional, named, ``.*``), ``$display``/``$finish``,
and immediate assertions.
"""

from .codegen import CodeGenerator, MooreError, compile_source
from .lexer import MooreSyntaxError, tokenize
from .parser import parse_source

# Importing procgen wires the two halves of the code generator together.
from . import procgen as _procgen  # noqa: F401


def compile_sv(source, top=None, module_name="moore", four_state=False):
    """Compile SystemVerilog source text into a Behavioural LLHD module.

    ``four_state=True`` lowers data types to the nine-valued ``lN``
    representation (IEEE 1164 simulation semantics) instead of ``iN``.
    """
    return compile_source(source, top=top, module_name=module_name,
                          four_state=four_state)


__all__ = ["CodeGenerator", "MooreError", "MooreSyntaxError", "compile_sv",
           "compile_source", "parse_source", "tokenize"]
