"""Lexer for the SystemVerilog subset accepted by the Moore frontend."""

from __future__ import annotations

import re


class MooreSyntaxError(Exception):
    """Raised on lexical or syntactic errors, with a line number."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "parameter",
    "localparam", "logic", "bit", "wire", "reg", "int", "integer",
    "genvar", "assign", "always", "always_ff", "always_comb",
    "always_latch", "initial", "final", "begin", "end", "if", "else",
    "case", "casez", "endcase", "default", "for", "while", "do",
    "posedge", "negedge", "or", "and", "not", "function", "endfunction",
    "return", "automatic", "generate", "endgenerate", "assert",
    "typedef", "enum", "struct", "packed", "signed", "unsigned", "void",
})

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<time>\d+(?:\.\d+)?(?:s|ms|us|ns|ps|fs)\b)
  | (?P<based>\d*'[sS]?[bodhBODH][0-9a-fA-FxXzZ_?]+)
  | (?P<unbased>'[01xXzZ])
  | (?P<number>\d[\d_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<system>\$[a-zA-Z_][a-zA-Z0-9_]*)
  | (?P<ident>[a-zA-Z_][a-zA-Z0-9_$]*)
  | (?P<punct><<<|>>>|<<=|>>=|\+\+|--|\*\*|<<|>>|<=|>=|==\?|!=\?|===|!==|==|!=|&&|\|\||->|\+=|-=|\*=|/=|&=|\|=|\^=|::|[(){}\[\];,.:#=+\-*/%&|^~!<>?@])
""", re.VERBOSE | re.DOTALL)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def tokenize(source):
    """Tokenize SystemVerilog source; comments and whitespace dropped."""
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise MooreSyntaxError(
                f"unexpected character {source[pos]!r}", line)
        kind = m.lastgroup
        text = m.group()
        line += text.count("\n")
        pos = m.end()
        if kind in ("ws", "line_comment", "block_comment"):
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens


def parse_based_literal(text):
    """Parse ``8'hFF`` / ``'b1010`` -> (width or None, value, has_xz)."""
    width_part, rest = text.split("'", 1)
    width = int(width_part) if width_part else None
    rest = rest.lstrip("sS")
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    has_xz = any(c in "xXzZ?" for c in digits)
    if has_xz:
        cleaned = re.sub(r"[xXzZ?]", "0", digits)
    else:
        cleaned = digits
    value = int(cleaned, base) if cleaned else 0
    return width, value, has_xz
