"""LOOP001: zero-delay combinational cycles (delta-cycle oscillators).

Builds the net-level dependency graph of zero-delay drives collected by
the model and reports its non-trivial strongly connected components.
An SCC is only diagnosed when at least one intra-SCC edge is *unstable*
(runs through actual computation).  A cycle whose every edge is
value-preserving plumbing — the ``drv %s, mux([prb %s, %v], %c)``
feedback mux-insertion emits, or the nested ``inss``/``exts``
projections of a partial drive — holds its value instead of
oscillating, and flagging it would indict every lowered design.  (The
dual false negative — a loop of pure bit *permutations*, which does
oscillate — is accepted and documented.)
"""

from __future__ import annotations


def _sccs(order, successors):
    """Tarjan's algorithm, iterative; yields SCCs as lists of nodes."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    counter = [0]
    out = []
    for root in order:
        if root in index:
            continue
        work = [(root, iter(successors.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                out.append(scc)
    return out


def check_loops(model, diagnostics, unit=None):
    """Run LOOP001 over a :class:`DesignModel`."""
    successors = {}
    edge_info = {}
    self_unstable = set()
    for src, dst, stable in model.edges:
        a, b = src.find().index, dst.find().index
        if a == b:
            if not stable:
                self_unstable.add(a)
            continue
        successors.setdefault(a, set()).add(b)
        key = (a, b)
        edge_info[key] = edge_info.get(key, True) and stable
    order = sorted(set(successors)
                   | {b for bs in successors.values() for b in bs}
                   | self_unstable)
    for scc in _sccs(order, successors):
        members = set(scc)
        if len(scc) == 1 and scc[0] not in self_unstable:
            continue
        if len(scc) > 1:
            unstable = any(
                not stable for (a, b), stable in edge_info.items()
                if a in members and b in members)
            if not unstable:
                continue
        nets = sorted((model.nets[i].find() for i in members),
                      key=lambda n: n.index)
        labels = [n.label() for n in nets]
        diagnostics.emit(
            "LOOP001",
            f"zero-delay combinational loop through "
            f"{len(labels)} net(s): {', '.join(labels)}; "
            f"the simulator would oscillate until the delta limit",
            unit=unit, location=labels[0],
            notes=tuple(f"loop member: {label}" for label in labels[1:]))
