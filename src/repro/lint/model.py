"""Static elaboration: the whole-design net graph the checkers share.

Mirrors what :mod:`repro.sim.interp` does at simulation time — walk the
instance hierarchy from the top entity, create one net per ``sig``,
union-find nets through ``con`` merges and port bindings — but without
executing anything.  On top of the net graph it records three databases:

* **drivers** — who can put a transaction on each net, with a driver
  *key* matching the runtime granularity (one key per process instance,
  one per entity instance's ``drv`` set, one per ``reg``/``del``
  instruction) and a *class*: ``init`` (fires only in the t=0
  initialization instant), ``edge`` (fires on clock edges), ``comb``
  (fires whenever inputs change), or ``timed`` (a testbench process
  pacing itself with timed waits);
* **edges** — the zero-delay combinational dependency graph between
  nets, each edge tagged *stable* when the path runs exclusively through
  value-preserving plumbing (mux choices, array/struct packing,
  ``inss``/``insf``/``exts``/``extf`` re-arrangement, probes) — the
  shape the mux-insertion feedback ``drv %s, mux([prb %s, %v], %c)``
  produces, which holds a value instead of oscillating;
* **regs** — every storage element (entity ``reg`` instructions and the
  edge-guarded drive regions of behavioural ``always_ff`` processes)
  with its clock nets, its data/condition source nets, and whether the
  data is a *direct* whole-net sample (the synchronizer-head shape the
  CDC checker recognizes).

Process bodies are classified structurally: the Moore ``always_ff``
shape (single sensitivity wait, an edge-test branch, drives inside the
edge-true region) yields registers; the Moore testbench shape (timed
waits, shadow/dirty conditional drives) yields ``init``/``timed``
drivers, where a drive guarded by a dirty flag that is only ever set
before the first wait is proven to fire at initialization only.
"""

from __future__ import annotations

from ..ir.instructions import Instruction
from ..ir.units import UnitDecl
from ..ir.values import TimeValue
from ..passes.dnf import FALSE, build_dnf, literals, negate_dnf, terms

#: Opcodes whose result is a pure re-arrangement of operand values: a
#: feedback path running only through these holds/permutes bits rather
#: than computing new ones, so it cannot (except for deliberate
#: bit-permutation oscillators, which we accept as a documented false
#: negative) sustain a delta-cycle oscillation.
_STABLE_OPS = frozenset((
    "mux", "array", "array_splat", "struct", "insf", "inss", "extf",
    "exts", "prb",
))


def _const_value(value):
    if isinstance(value, Instruction) and value.opcode == "const":
        return value.attrs["value"]
    return None


def _is_const_zero(value):
    const = _const_value(value)
    if const is None:
        return False
    if isinstance(const, int):
        return const == 0
    to_int = getattr(const, "to_int", None)
    if to_int is not None and getattr(const, "is_two_valued", False):
        return to_int() == 0
    return False


def _zero_delay(delay):
    """True when a drive delay keeps the transaction in this femtosecond
    (a pure delta/epsilon step -- the delays that can oscillate)."""
    const = _const_value(delay)
    if isinstance(const, TimeValue):
        return const.fs == 0
    # A computed delay: assume zero (conservative for loop detection).
    return True


class Net:
    """One elaborated signal net (union-find node)."""

    __slots__ = ("names", "type", "initial", "index", "_rep")

    def __init__(self, name, type, initial, index):
        self.names = [name]
        self.type = type
        self.initial = initial
        self.index = index
        self._rep = None

    def find(self):
        net = self
        while net._rep is not None:
            net = net._rep
        node = self
        while node._rep is not None and node._rep is not net:
            node._rep, node = net, node._rep
        return net

    def label(self):
        """The most readable alias: real names before positional ``%N``
        fallbacks, then fewest hierarchy levels, then shortest, then
        alphabetical (deterministic)."""
        return min(self.names,
                   key=lambda n: ("%" in n, n.count("."), len(n), n))

    def __repr__(self):
        return f"<net {self.label()}>"


class Driver:
    """One potential transaction source on a net."""

    __slots__ = ("net", "key", "kind", "clazz", "clocks", "path",
                 "where")

    def __init__(self, net, key, kind, clazz, path, where, clocks=()):
        self.net = net
        self.key = key        # runtime-granularity driver identity
        self.kind = kind      # 'proc' | 'entity' | 'reg' | 'del'
        self.clazz = clazz    # 'init' | 'edge' | 'comb' | 'timed'
        self.clocks = frozenset(clocks)   # canonical clock net indices
        self.path = path
        self.where = where

    def describe(self):
        extra = f", {self.clazz}" if self.clazz else ""
        return f"{self.where} ({self.kind}{extra})"


class Reg:
    """One storage element: an entity ``reg`` or an always_ff drive."""

    __slots__ = ("target", "clocks", "clock_nets", "data_net",
                 "data_sources", "cond_sources", "path", "where")

    def __init__(self, target, clock_nets, data_net, data_sources,
                 cond_sources, path, where):
        self.target = target
        self.clock_nets = tuple(clock_nets)
        self.clocks = frozenset(n.find().index for n in clock_nets)
        self.data_net = data_net          # Net when the data is a
        self.data_sources = data_sources  # direct whole-net probe
        self.cond_sources = cond_sources
        self.path = path
        self.where = where


class DesignModel:
    """The shared static database over one elaborated design."""

    def __init__(self, module, top):
        self.module = module
        self.top = top
        self.nets = []
        self.drivers = []
        self.regs = []
        self.edges = []           # (src Net, dst Net, stable: bool)
        self.con_conflicts = []   # (net_a, net_b, val_a, val_b, path)
        self.notes = []           # analysis fallbacks worth surfacing
        self._var_states_cache = {}
        unit = module.get(top)
        if unit is None or isinstance(unit, UnitDecl):
            raise ValueError(f"top unit @{top} is not defined")
        if not unit.is_entity:
            raise ValueError(f"top unit @{top} must be an entity")
        env = {}
        for arg in unit.args:
            env[id(arg)] = self._new_net(f"{top}.{arg.name}", arg.type,
                                         None)
        self._walk_entity(unit, top, env)

    # -- net management ----------------------------------------------------------

    def _new_net(self, name, type, initial):
        net = Net(name, type, initial, len(self.nets))
        self.nets.append(net)
        return net

    def _connect(self, a, b, path):
        a, b = a.find(), b.find()
        if a is b:
            return a
        if b.index < a.index:
            a, b = b, a
        ia, ib = a.initial, b.initial
        if ia is not None and ib is not None and ia != ib:
            element = a.type.element if a.type.is_signal else a.type
            if element.is_logic:
                pass  # lN initials resolve (IEEE 1164), never conflict
            else:
                self.con_conflicts.append((a, b, ia, ib, path))
        if a.initial is None:
            a.initial = b.initial
        b._rep = a
        a.names.extend(b.names)
        return a

    def canonical_nets(self):
        return [net for net in self.nets if net._rep is None]

    # -- value resolution --------------------------------------------------------

    def _sigref(self, value, env):
        """The Net a signal-typed value refers to (through projections)."""
        while isinstance(value, Instruction) and value.opcode in (
                "extf", "exts"):
            value = value.operands[0]
        ref = env.get(id(value))
        if isinstance(ref, Net):
            return ref.find()
        return None

    def _cone(self, value, env, out, stable=True, _seen=None):
        """Collect source nets of a dataflow value into ``out``.

        ``out`` maps canonical Net -> bool; a net ends up True only when
        *every* path to it is stable (value-preserving plumbing).
        """
        if _seen is None:
            _seen = set()
        key = (id(value), stable)
        if key in _seen:
            return out
        _seen.add(key)
        if not isinstance(value, Instruction):
            return out
        op = value.opcode
        if op == "prb":
            net = self._sigref(value.operands[0], env)
            if net is not None:
                out[net] = out.get(net, True) and stable
            return out
        if op == "const":
            return out
        if op == "ld":
            # A shadow variable: what flows out is whatever was stored
            # (value-preserving — any computation happened before the
            # store and marks instability there), or the variable's
            # initializer when a load can execute before any store (the
            # Moore output-shadow hold pattern).  Loads proven constant
            # have no sources at all.
            var = value.operands[0]
            if isinstance(var, Instruction) and var.opcode == "var":
                tokens = self._var_ld_states(var).get(
                    id(value), frozenset((("any",), ("init",))))
                if ("any",) in tokens:
                    for use in list(var.uses):
                        user = use.user
                        if user.opcode == "st" \
                                and user.operands[0] is var:
                            self._cone(user.operands[1], env, out,
                                       stable, _seen)
                if ("init",) in tokens:
                    self._cone(var.operands[0], env, out, stable,
                               _seen)
            elif isinstance(var, Instruction):
                for use in list(var.uses):
                    user = use.user
                    if user.opcode == "st" and user.operands[0] is var:
                        self._cone(user.operands[1], env, out, False,
                                   _seen)
            return out
        if op == "mux":
            choices, selector = value.operands
            folded = self._const_ld_value(selector)
            if folded is not None and isinstance(choices, Instruction) \
                    and choices.opcode == "array" \
                    and 0 <= folded < len(choices.operands):
                self._cone(choices.operands[folded], env, out, stable,
                           _seen)
                return out
            self._cone(choices, env, out, stable, _seen)
            self._cone(selector, env, out, False, _seen)
            return out
        if op in ("insf", "inss"):
            self._cone(value.operands[0], env, out, stable, _seen)
            self._cone(value.operands[1], env, out, stable, _seen)
            for operand in value.operands[2:]:
                self._cone(operand, env, out, False, _seen)
            return out
        if op in ("extf", "exts", "array", "array_splat", "struct"):
            for operand in value.operands:
                self._cone(operand, env, out, stable, _seen)
            return out
        if op == "phi":
            # A phi passes one incoming value through unchanged (the
            # branch conditions selecting it are collected separately).
            for i in range(0, len(value.operands), 2):
                self._cone(value.operands[i], env, out, stable, _seen)
            return out
        for operand in value.operands:
            self._cone(operand, env, out, False, _seen)
        return out

    def _var_ld_states(self, var):
        """Per-``ld`` abstract value of a process variable.

        Maps ``id(ld)`` to a frozenset of tokens: ``("const", v)`` (a
        two-valued constant was stored), ``("init",)`` (the variable's
        non-constant initializer can still flow — no store killed it on
        some path since the ``var`` executed), ``("any",)`` (some
        non-constant store reaches).  May-analysis over the owning
        unit's CFG; resuming a process re-executes the ``var`` when its
        block is a wait destination, which the per-block re-walk models
        naturally.  The Moore shadow/dirty idioms — output shadows
        initialized from a probe of their own target, dirty flags known
        constant at the read-back mux — resolve exactly here.
        """
        cached = self._var_states_cache.get(id(var))
        if cached is not None:
            return cached
        escape = frozenset((("any",), ("init",)))
        for use in var.uses:
            user = use.user
            if user.opcode == "ld" or (user.opcode == "st"
                                       and user.operands[0] is var):
                continue
            result = {id(u.user): escape
                      for u in var.uses if u.user.opcode == "ld"}
            self._var_states_cache[id(var)] = result
            return result
        init_const = _const_value(var.operands[0])
        if isinstance(init_const, int):
            def_state = frozenset((("const", init_const),))
        elif init_const is not None \
                and getattr(init_const, "is_two_valued", False):
            def_state = frozenset((("const", init_const.to_int()),))
        else:
            def_state = frozenset((("init",),))

        def transfer(inst, state, record=None):
            if inst is var:
                return def_state
            if inst.opcode == "st" and inst.operands[0] is var:
                const = _const_value(inst.operands[1])
                if isinstance(const, int):
                    return frozenset((("const", const),))
                if const is not None and getattr(
                        const, "is_two_valued", False):
                    return frozenset((("const", const.to_int()),))
                return frozenset((("any",),))
            if record is not None and inst.opcode == "ld" \
                    and inst.operands[0] is var:
                record[id(inst)] = state
            return state

        unit = var.parent.parent
        state_in = {id(b): frozenset() for b in unit.blocks}
        changed = True
        while changed:
            changed = False
            for block in unit.blocks:
                state = state_in[id(block)]
                for inst in block.instructions:
                    state = transfer(inst, state)
                for succ in block.successors():
                    merged = state_in[id(succ)] | state
                    if merged != state_in[id(succ)]:
                        state_in[id(succ)] = merged
                        changed = True
        result = {}
        for block in unit.blocks:
            state = state_in[id(block)]
            for inst in block.instructions:
                state = transfer(inst, state, record=result)
        self._var_states_cache[id(var)] = result
        return result

    def _const_ld_value(self, value):
        """The provable constant value of an i1/iN SSA value, or None.

        Recognizes plain constants and loads of process variables whose
        reaching stores all wrote the same constant.
        """
        const = _const_value(value)
        if isinstance(const, int):
            return const
        if const is not None and getattr(const, "is_two_valued", False):
            return const.to_int()
        if isinstance(value, Instruction) and value.opcode == "ld":
            var = value.operands[0]
            if isinstance(var, Instruction) and var.opcode == "var":
                tokens = self._var_ld_states(var).get(id(value))
                if tokens and all(t[0] == "const" for t in tokens):
                    values = {t[1] for t in tokens}
                    if len(values) == 1:
                        return values.pop()
        return None

    # -- entity walk -------------------------------------------------------------

    def _walk_entity(self, unit, path, env):
        drv_driver = None
        for position, inst in enumerate(unit.body.instructions):
            op = inst.opcode
            if op == "sig":
                name = inst.name or f"%{position}"
                env[id(inst)] = self._new_net(
                    f"{path}.{name}", inst.type,
                    _const_value(inst.operands[0]))
            elif op == "con":
                a = self._sigref(inst.operands[0], env)
                b = self._sigref(inst.operands[1], env)
                if a is not None and b is not None:
                    self._connect(a, b, path)
            elif op == "del":
                name = inst.name or f"%{position}"
                net = self._new_net(f"{path}.{name}", inst.type, None)
                env[id(inst)] = net
                src = self._sigref(inst.operands[0], env)
                self.drivers.append(Driver(
                    net, (path, "del", position), "del", "comb", path,
                    f"{path} del %{inst.name or position}"))
                if src is not None and _zero_delay(inst.operands[1]):
                    self.edges.append((src, net, True))
            elif op == "inst":
                self._instantiate(unit, inst, path, env)
            elif op == "drv":
                target = self._sigref(inst.drv_signal(), env)
                if target is None:
                    continue
                if drv_driver is None:
                    drv_driver = (path, "drv")
                self.drivers.append(Driver(
                    target, drv_driver, "entity", "comb", path,
                    f"{path} drv {target.label()}"))
                if _zero_delay(inst.drv_delay()):
                    cone = {}
                    self._cone(inst.drv_value(), env, cone)
                    cond = inst.drv_condition()
                    if cond is not None:
                        self._cone(cond, env, cone, False)
                    for src, stable in cone.items():
                        self.edges.append((src, target, stable))
            elif op == "reg":
                self._entity_reg(inst, path, env)

    def _entity_reg(self, inst, path, env):
        target = self._sigref(inst.reg_signal(), env)
        if target is None:
            return
        where = f"{path} reg {target.label()}"
        clock_nets = []
        data_values = []
        cone = {}
        cond_cone = {}
        latch = False
        for trigger in inst.reg_triggers():
            mode = trigger["mode"]
            if mode in ("rise", "fall", "both"):
                clock = None
                tv = trigger["trigger"]
                if isinstance(tv, Instruction) and tv.opcode == "prb":
                    clock = self._sigref(tv.operands[0], env)
                if clock is not None:
                    clock_nets.append(clock)
                data_values.append(trigger["value"])
                self._cone(trigger["value"], env, cone)
            else:
                # A level trigger (latch): transparent while enabled, so
                # it behaves combinationally for loop purposes.
                latch = True
                self._cone(trigger["value"], env, cone)
                tv = trigger["trigger"]
                if tv is not None:
                    self._cone(tv, env, cond_cone, False)
            if trigger["cond"] is not None:
                self._cone(trigger["cond"], env, cond_cone, False)
        if latch and not clock_nets:
            self.drivers.append(Driver(
                target, (path, "reg", id(inst)), "reg", "comb", path,
                where))
            for src, stable in {**cone, **cond_cone}.items():
                self.edges.append((src, target, stable))
            return
        data_net = None
        if data_values:
            nets = []
            for value in data_values:
                if isinstance(value, Instruction) \
                        and value.opcode == "prb":
                    nets.append(self._sigref(value.operands[0], env))
                else:
                    nets = [None]
                    break
            if nets[0] is not None and all(n is nets[0] for n in nets):
                data_net = nets[0]
        self.drivers.append(Driver(
            target, (path, "reg", id(inst)), "reg", "edge", path, where,
            clocks=[n.find().index for n in clock_nets]))
        self.regs.append(Reg(
            target, clock_nets, data_net, cone,
            cond_cone, path, where))

    # -- hierarchy ---------------------------------------------------------------

    def _instantiate(self, parent, inst, path, env):
        callee = self.module.get(inst.callee)
        if callee is None or isinstance(callee, UnitDecl):
            return
        operands = inst.inst_inputs() + inst.inst_outputs()
        child_path = f"{path}.{inst.callee}"
        child_env = {}
        for arg, operand in zip(callee.args, operands):
            net = self._sigref(operand, env)
            if net is None and operand.type.is_signal:
                net = self._new_net(
                    f"{child_path}.{arg.name}", operand.type, None)
            child_env[id(arg)] = net
        if callee.is_entity:
            self._walk_entity(callee, child_path, child_env)
        else:
            self._walk_process(callee, child_path, child_env)

    # -- process classification ----------------------------------------------------

    def _walk_process(self, proc, path, env):
        drives = [inst for inst in proc.instructions()
                  if inst.opcode == "drv"]
        if not drives:
            return
        guard = _edge_guard(proc)
        edge_drives = set()
        if guard is not None:
            clocks, region, extra_conds = guard
            clock_nets = [net for net in
                          (self._sigref(c, env) for c in clocks)
                          if net is not None]
            if clock_nets:
                for drv in drives:
                    if drv.parent in region:
                        edge_drives.add(id(drv))
                        self._process_reg(proc, drv, region,
                                          extra_conds, clock_nets,
                                          path, env)
        waits = [b.terminator for b in proc.blocks
                 if b.terminator is not None
                 and b.terminator.opcode == "wait"]
        sensitivity = any(w.wait_time() is None for w in waits)
        closure = _wait_dest_closure(proc)
        key = (path, "proc")
        for drv in drives:
            if id(drv) in edge_drives:
                continue
            target = self._sigref(drv.drv_signal(), env)
            if target is None:
                continue
            where = f"{path} drv {target.label()}"
            if sensitivity:
                # Re-evaluated on signal changes with zero-delay drives:
                # combinational behaviour (always_comb).
                self.drivers.append(Driver(
                    target, key, "proc", "comb", path, where))
                if _zero_delay(drv.drv_delay()):
                    cone = {}
                    self._cone(drv.drv_value(), env, cone)
                    cond = drv.drv_condition()
                    if cond is not None:
                        self._cone(cond, env, cone, False)
                    for cond_value in _gating_branch_conds(proc, drv):
                        self._cone(cond_value, env, cone, False)
                    for src, stable in cone.items():
                        self.edges.append((src, target, stable))
            elif _init_only(proc, drv, closure):
                self.drivers.append(Driver(
                    target, key, "proc", "init", path, where))
            else:
                self.drivers.append(Driver(
                    target, key, "proc", "timed", path, where))

    def _process_reg(self, proc, drv, region, extra_conds, clock_nets,
                     path, env):
        """Record one edge-region drive as a register."""
        target = self._sigref(drv.drv_signal(), env)
        if target is None:
            return
        where = f"{path} drv {target.label()} " \
            f"@(edge {', '.join(n.label() for n in clock_nets)})"
        value = drv.drv_value()
        data_net = None
        if isinstance(value, Instruction) and value.opcode == "prb":
            data_net = self._sigref(value.operands[0], env)
        cone = {}
        self._cone(value, env, cone)
        cond_cone = {}
        for cond_value in extra_conds:
            self._cone(cond_value, env, cond_cone, False)
        cond = drv.drv_condition()
        if cond is not None:
            self._cone(cond, env, cond_cone, False)
        for block in region:
            term = block.terminator
            if term is not None and term.is_conditional_branch \
                    and _reachable(block, drv.parent, region):
                self._cone(term.operands[0], env, cond_cone, False)
        self.drivers.append(Driver(
            target, (path, "proc"), "proc", "edge", path, where,
            clocks=[n.find().index for n in clock_nets]))
        self.regs.append(Reg(target, clock_nets, data_net, cone,
                             cond_cone, path, where))


# -- CFG helpers ----------------------------------------------------------------


def _successors(block):
    term = block.terminator
    return term.successors() if term is not None else []


def _reachable(src, dst, region=None):
    """Is ``dst`` reachable from ``src`` (following successors), staying
    inside ``region`` when given?  ``src == dst`` counts as reachable."""
    if src is dst:
        return True
    seen = {id(src)}
    work = [src]
    while work:
        for succ in _successors(work.pop()):
            if region is not None and succ not in region:
                continue
            if succ is dst:
                return True
            if id(succ) not in seen:
                seen.add(id(succ))
                work.append(succ)
    return False


def _gating_branch_conds(proc, drv):
    """Conditions of branches gating whether ``drv`` executes in the
    current activation (reachability without crossing a wait: a branch
    whose influence only reaches the drive through a suspension gates a
    *later* activation, where it is recomputed)."""
    out = []
    for block in proc.blocks:
        term = block.terminator
        if term is None or not term.is_conditional_branch:
            continue
        if _reachable_no_wait(block, drv.parent):
            out.append(term.operands[0])
    return out


def _reachable_no_wait(src, dst):
    seen = {id(src)}
    work = [src]
    while work:
        term = work.pop().terminator
        if term is None or term.opcode == "wait":
            continue
        for succ in term.successors():
            if succ is dst:
                return True
            if id(succ) not in seen:
                seen.add(id(succ))
                work.append(succ)
    return False


def _wait_dest_closure(proc):
    """Blocks that can execute after at least one wait has suspended."""
    seen = set()
    work = []
    for block in proc.blocks:
        term = block.terminator
        if term is not None and term.opcode == "wait":
            dest = term.wait_dest()
            if id(dest) not in seen:
                seen.add(id(dest))
                work.append(dest)
    closure = {}
    while work:
        block = work.pop()
        closure[id(block)] = block
        for succ in _successors(block):
            if id(succ) not in seen:
                seen.add(id(succ))
                work.append(succ)
    return closure


def _init_only(proc, drv, closure):
    """Can this drive only fire in the initialization instant (t=0)?

    True when the drive sits before any wait on every path, or when its
    condition is a Moore shadow-``dirty`` flag — a variable initialized
    to zero whose only non-zero stores happen before the first wait, and
    which every wait block re-zeroes before suspending (so a set flag
    cannot leak across a time step).  The ``phi`` variant of the same
    pattern (post-mem2reg) is recognized too.
    """
    if id(drv.parent) not in closure:
        return True
    cond = drv.drv_condition()
    if not isinstance(cond, Instruction):
        return False
    if cond.opcode == "ld":
        return _init_only_dirty_var(proc, cond, closure)
    if cond.opcode == "phi":
        return _init_only_dirty_phi(proc, drv, cond, closure)
    return False


def _init_only_dirty_var(proc, cond, closure):
    var = cond.operands[0]
    if not (isinstance(var, Instruction) and var.opcode == "var"):
        return False
    if not _is_const_zero(var.operands[0]):
        return False
    nonzero_blocks = []
    zero_blocks = set()
    for use in list(var.uses):
        user = use.user
        if user.opcode == "ld":
            continue
        if user.opcode == "st" and user.operands[0] is var:
            if _is_const_zero(user.operands[1]):
                zero_blocks.add(id(user.parent))
            elif id(user.parent) in closure:
                return False  # set again after a wait: not init-only
            else:
                nonzero_blocks.append(user.parent)
            continue
        return False  # the flag escapes (address taken some other way)
    # Flush discipline: every wait block reachable from a non-zero store
    # must clear the flag before suspending, or a set flag could fire
    # the drive after time has advanced.
    for block in proc.blocks:
        term = block.terminator
        if term is None or term.opcode != "wait":
            continue
        if any(_reachable(nz, block) for nz in nonzero_blocks):
            if id(block) not in zero_blocks:
                return False
    return True


def _init_only_dirty_phi(proc, drv, cond, closure):
    """The mem2reg form: cond is a phi whose post-wait inputs are 0."""
    ops = cond.operands
    for i in range(0, len(ops), 2):
        value, pred = ops[i], ops[i + 1]
        if id(pred) in closure and not _is_const_zero(value):
            return False
    # The condition must not survive across a wait between its phi block
    # and the drive: search for a wait-crossing path.
    start = cond.parent
    seen = set()
    work = [(start, False)]
    while work:
        block, crossed = work.pop()
        term = block.terminator
        if term is None:
            continue
        is_wait = term.opcode == "wait"
        for succ in _successors(block):
            nxt = crossed or is_wait
            if succ is start:
                continue  # the phi re-evaluates
            if succ is drv.parent and nxt:
                return False
            state = (id(succ), nxt)
            if state not in seen:
                seen.add(state)
                work.append((succ, nxt))
    return True


# -- edge-guard recognition ------------------------------------------------------


def _edge_guard(proc):
    """Recognize the Moore ``always_ff`` shape.

    One sensitivity wait in block W, destination C; C branches on an
    edge test back to W (no edge) or into a drive region (edge).
    Returns ``(clock_values, region_blocks, extra_cond_values)`` with
    clock_values the probed clock signals, region_blocks a set of
    blocks executing only on the triggering edge, and extra_cond_values
    the non-edge literals of the guard (e.g. a synchronous-reset term).
    """
    wait_blocks = [b for b in proc.blocks
                   if b.terminator is not None
                   and b.terminator.opcode == "wait"]
    if len(wait_blocks) != 1:
        return None
    w_block = wait_blocks[0]
    wait = w_block.terminator
    if wait.wait_time() is not None:
        return None
    check = wait.wait_dest()
    term = check.terminator
    if term is None or not term.is_conditional_branch:
        return None
    cond, dest_false, dest_true = term.operands
    if dest_false is w_block and dest_true is not w_block:
        dnf, entry = build_dnf(cond), dest_true
    elif dest_true is w_block and dest_false is not w_block:
        dnf, entry = negate_dnf(build_dnf(cond)), dest_false
    else:
        return None
    if dnf == FALSE:
        return None
    clocks = []
    extra_conds = []
    for term_lits in terms(dnf):
        edge_clock = _term_edge(term_lits, w_block, check, extra_conds)
        if edge_clock is None:
            return None
        clocks.append(edge_clock)
    # The region: blocks reachable from the edge branch without passing
    # back through the wait block.  It must not contain another path
    # into the wait's check block (single-entry).
    region = set()
    work = [entry]
    while work:
        block = work.pop()
        if block in region or block is w_block:
            continue
        if block is check:
            return None
        region.add(block)
        work.extend(_successors(block))
    return clocks, region, extra_conds


def _term_edge(term_lits, w_block, check, extra_conds):
    """Extract the clock of one edge term; other literals become conds.

    Recognizes the two Moore edge tests: two-valued
    ``neq(past, present) ∧ present`` (and the polarity variants) and
    nine-valued ``at-level(present) ∧ ¬at-level(past)``.
    """
    from ..passes.deseq import _logic_level_literal

    past = {}       # id(root sig value) -> (root, level, positive)
    present = {}
    changes = []    # (past_probe, present_probe, differs)
    opaque = []
    for value, positive in sorted(literals(term_lits),
                                  key=lambda lit: id(lit[0])):
        probe, level = value, None
        decomposed = _logic_level_literal(value)
        if decomposed is not None:
            probe, level = decomposed
        if isinstance(probe, Instruction) and probe.opcode == "prb":
            root = probe.operands[0]
            entry = (root, level, positive)
            if probe.parent is w_block:
                past[id(root)] = entry
            elif probe.parent is check:
                present[id(root)] = entry
            else:
                opaque.append((value, positive))
        elif (isinstance(value, Instruction)
              and value.opcode in ("eq", "neq")
              and all(isinstance(o, Instruction) and o.opcode == "prb"
                      for o in value.operands)):
            a, b = value.operands
            pa, pb = (a, b) if a.parent is w_block else (b, a)
            if pa.parent is w_block and pb.parent is check \
                    and pa.operands[0] is pb.operands[0]:
                differs = (value.opcode == "neq") == bool(positive)
                changes.append((pa, pb, differs))
            else:
                opaque.append((value, positive))
        else:
            opaque.append((value, positive))
    # Uncollapsed form: changed(s) ∧ present-level(s) (the raw ``neq``
    # survives DNF construction only for multi-bit samples).
    for past_probe, present_probe, differs in changes:
        if not differs:
            continue
        root = present_probe.operands[0]
        entry = present.get(id(root))
        if entry is not None and entry[1] is None:
            extra_conds.extend(v for v, _ in opaque)
            return root
    # Collapsed form: the past and present samples of one signal tested
    # against mutually exclusive states.  For i1 the DNF builder turns
    # ``neq(past, present) ∧ present`` into ``¬past ∧ present`` (same
    # level — here None — opposite sign); for l1 the Moore test is
    # ``at-level(present) ∧ ¬at-level(past)`` (same level, opposite
    # sign) or two opposite levels, both positive.
    for root_id, (root, level_p, pos_p) in present.items():
        was = past.get(root_id)
        if was is None:
            continue
        _root, level_w, pos_w = was
        exclusive = (level_p == level_w and pos_p != pos_w) or (
            level_p is not None and level_w is not None
            and level_p != level_w and pos_p and pos_w)
        if exclusive:
            extra_conds.extend(v for v, _ in opaque)
            return root
    return None
