"""``python -m repro.lint`` — the ``llhd-check`` static analyzer CLI.

Lints ``.llhd`` files or suite designs for drive races, combinational
loops, and clock-domain crossings::

    python -m repro.lint design.llhd
    python -m repro.lint --design fifo --level netlist
    python -m repro.lint --all-designs --format json
    python -m repro.lint --all-designs --baseline LINT_baseline.json
    python -m repro.lint --all-designs --update-baseline base.json

Input is either ``.llhd`` files (``-`` reads stdin; every elaboration
root is linted) or named designs from the evaluation suite (``--design``
/ ``--all-designs``), lowered to ``--level`` first.  Exit status: 0
clean (or everything suppressed by ``--baseline``), 1 when fresh
findings reach the ``--fail-on`` severity, 2 on usage/input errors.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    LEVELS, Baseline, DiagnosticSet, lint_design, lint_module,
    root_entities,
)


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically check LLHD designs for races, "
                    "combinational loops, and CDC hazards.")
    parser.add_argument(
        "files", nargs="*", metavar="FILE",
        help=".llhd input files ('-' reads stdin)")
    parser.add_argument(
        "--design", metavar="NAME", action="append", dest="designs",
        help="lint a named design from the evaluation suite "
             "(repeatable)")
    parser.add_argument(
        "--all-designs", action="store_true",
        help="lint every design of the evaluation suite")
    parser.add_argument(
        "--level", default="behavioural", choices=LEVELS,
        help="pipeline level to lower suite designs to before linting "
             "(default: behavioural)")
    parser.add_argument(
        "--cycles", type=int, default=None, metavar="N",
        help="testbench cycle count for suite designs")
    parser.add_argument(
        "-t", "--top", metavar="NAME",
        help="lint only this entity of a file input (default: every "
             "elaboration root)")
    parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="report format (default: text)")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in this baseline file")
    parser.add_argument(
        "--update-baseline", metavar="FILE",
        help="write all findings to FILE as the new baseline and exit 0")
    parser.add_argument(
        "--fail-on", default="warning", choices=("warning", "error"),
        help="minimum severity of a fresh finding that fails the run "
             "(default: warning — any finding fails)")
    return parser


def _lint_files(args, parser, err):
    from ..ir import ParseError, parse_module

    diagnostics = DiagnosticSet()
    for path in args.files:
        try:
            if path == "-":
                name, text = "<stdin>", sys.stdin.read()
            else:
                name = path
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
        except OSError as error:
            err.write(f"{path}: cannot read: {error}\n")
            return None
        try:
            module = parse_module(text, name=name)
        except ParseError as error:
            err.write(f"{name}: parse error: {error}\n")
            return None
        tops = [args.top] if args.top else root_entities(module)
        if not tops:
            err.write(f"{name}: no entity to lint\n")
            return None
        for top in tops:
            try:
                diagnostics.extend(lint_module(module, top, unit=top))
            except Exception as error:
                err.write(f"{name}: @{top}: lint failed: {error}\n")
                return None
    return diagnostics


def _lint_designs(names, args, parser, err):
    from ..designs import DESIGNS

    diagnostics = DiagnosticSet()
    for name in names:
        if name not in DESIGNS:
            parser.error(f"unknown design {name!r}; "
                         f"see python -m repro.sim --list-designs")
        try:
            diagnostics.extend(
                lint_design(name, level=args.level, cycles=args.cycles))
        except Exception as error:
            err.write(f"{name}@{args.level}: lint failed: {error}\n")
            return None
    return diagnostics


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    out, err = sys.stdout, sys.stderr

    names = list(args.designs or ())
    if args.all_designs:
        from ..designs import ALL_DESIGNS

        names.extend(n for n in ALL_DESIGNS if n not in names)
    if args.files and names:
        parser.error("give either .llhd files or --design/--all-designs, "
                     "not both")
    if not args.files and not names:
        parser.error("no input: give .llhd files, --design NAME, or "
                     "--all-designs")

    if names:
        diagnostics = _lint_designs(names, args, parser, err)
    else:
        diagnostics = _lint_files(args, parser, err)
    if diagnostics is None:
        return 2

    if args.update_baseline:
        Baseline.from_diagnostics(diagnostics).dump(args.update_baseline)
        err.write(f"baseline: wrote {len(diagnostics)} finding(s) to "
                  f"{args.update_baseline}\n")
        return 0

    suppressed = []
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            err.write(f"{args.baseline}: cannot load baseline: {error}\n")
            return 2
        diagnostics, suppressed = diagnostics.suppress(baseline)

    if args.format == "json":
        out.write(diagnostics.render_json(suppressed=len(suppressed)))
        out.write("\n")
    else:
        header = None
        if suppressed:
            header = f"# {len(suppressed)} finding(s) suppressed by " \
                     f"{args.baseline}"
        out.write(diagnostics.render_text(header=header))
        out.write("\n")

    failing = diagnostics.count("error")
    if args.fail_on == "warning":
        failing += diagnostics.count("warning")
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
