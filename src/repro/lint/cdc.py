"""CDC checkers: clock-domain-crossing discipline.

Domains are inferred, not declared: every register target belongs to
the domain of its own clock net(s); domains then propagate through the
zero-delay combinational edges to a fixpoint.  Testbench stimulus and
primary inputs have no domain (sampling them is not a crossing).

``CDC001`` — a register whose data or enable cone carries a foreign
domain, unless it is the head of a synchronizer: the data must be a
direct whole-net sample (no combinational mixing between the domains),
the enable cone must be domain-clean, and the captured — possibly
metastable — value must feed nothing but one more register stage in
the same clock domain.  That shape admits exactly the 2-FF (and
longer) synchronizers and, because the *first* stage may sample a
combinational net, gray-coded multi-bit crossings like ``cdc_gray``.

``CDC002`` — a register clocked by a net that no process or entity
ever drives: the register can never trigger (the classic X-initialized
or unconnected clock).
"""

from __future__ import annotations


def _domains(model):
    """Net index -> frozen set of clock-net indices (fixpoint)."""
    dom = {}
    for reg in model.regs:
        target = reg.target.find().index
        dom.setdefault(target, set()).update(reg.clocks)
    edges = {}
    for src, dst, _stable in model.edges:
        a, b = src.find().index, dst.find().index
        if a != b:
            edges.setdefault(a, set()).add(b)
    work = list(dom)
    while work:
        node = work.pop()
        source = dom.get(node)
        if not source:
            continue
        for succ in edges.get(node, ()):
            target = dom.setdefault(succ, set())
            before = len(target)
            target.update(source)
            if len(target) != before:
                work.append(succ)
    return dom


def _cone_domains(cone, dom):
    out = set()
    for net in cone:
        out.update(dom.get(net.find().index, ()))
    return out


def check_cdc(model, diagnostics, unit=None):
    """Run CDC001/CDC002 over a :class:`DesignModel`."""
    dom = _domains(model)
    driven = {d.net.find().index for d in model.drivers}

    # Consumers of each net: registers sampling it plus comb edges.
    reg_data = {}
    comb_out = {}
    for reg in model.regs:
        for net in reg.data_sources:
            reg_data.setdefault(net.find().index, []).append(reg)
        for net in reg.cond_sources:
            reg_data.setdefault(net.find().index, []).append(reg)
    for src, dst, _stable in model.edges:
        a, b = src.find().index, dst.find().index
        if a != b:
            comb_out.setdefault(a, []).append(b)

    reported_clocks = set()
    for reg in model.regs:
        for clock in reg.clock_nets:
            index = clock.find().index
            if index not in driven and index not in reported_clocks:
                reported_clocks.add(index)
                diagnostics.emit(
                    "CDC002",
                    f"register clock {clock.find().label()} is never "
                    f"driven; the register can never trigger",
                    unit=unit, location=clock.find().label(),
                    notes=(f"first clocked element: {reg.where}",))

        own = reg.clocks
        foreign = (_cone_domains(reg.data_sources, dom)
                   | _cone_domains(reg.cond_sources, dom)) - own
        if not foreign:
            continue
        names = sorted(model.nets[i].find().label() for i in foreign)
        problem = _sync_head_violation(model, reg, dom, own, reg_data,
                                       comb_out)
        if problem is None:
            continue
        diagnostics.emit(
            "CDC001",
            f"register {reg.target.find().label()} samples clock "
            f"domain(s) {{{', '.join(names)}}} from domain "
            f"{{{', '.join(sorted(model.nets[i].find().label() for i in own))}}} "
            f"without a synchronizer: {problem}",
            unit=unit, location=reg.target.find().label(),
            notes=(reg.where,))


def _sync_head_violation(model, reg, dom, own, reg_data, comb_out):
    """None when ``reg`` is a legal synchronizer head, else the reason."""
    if reg.data_net is None:
        return ("the sampled value mixes domains combinationally "
                "before capture")
    cond_foreign = _cone_domains(reg.cond_sources, dom) - own
    if cond_foreign:
        return "the register enable itself crosses domains"
    target = reg.target.find().index
    if comb_out.get(target):
        consumers = sorted(model.nets[i].find().label()
                           for i in set(comb_out[target]))
        return (f"its possibly-metastable output feeds combinational "
                f"logic ({', '.join(consumers)}) instead of a second "
                f"register stage")
    for consumer in reg_data.get(target, ()):
        if consumer is reg:
            continue
        if consumer.clocks != reg.clocks:
            return (f"its output is re-sampled in a different domain "
                    f"by {consumer.where}")
        if consumer.data_net is None or \
                consumer.data_net.find().index != target:
            if reg.target.find() in consumer.cond_sources or \
                    any(n.find().index == target
                        for n in consumer.cond_sources):
                return (f"its possibly-metastable output gates "
                        f"{consumer.where}")
            return (f"its output is combinationally mixed into "
                    f"{consumer.where} before a second stage")
    return None
