"""``repro.lint`` — static hardware-safety analysis over LLHD modules.

The ``llhd-check`` analogue: a :class:`~repro.lint.model.DesignModel`
elaborates the module statically (nets, drivers, registers, zero-delay
dependency edges) and three checker families run over it:

* drive races (``RACE001``/``RACE002``, :mod:`repro.lint.races`),
* zero-delay combinational loops (``LOOP001``, :mod:`repro.lint.loops`),
* clock-domain crossings (``CDC001``/``CDC002``, :mod:`repro.lint.cdc`).

Entry points: :func:`lint_module` (any module + top), :func:`lint_design`
(a registered suite design at a chosen pipeline level), the
``python -m repro.lint`` CLI (:mod:`repro.lint.__main__`), a cached
``lint`` analysis, and a ``lint`` pass for ``repro.opt`` pipelines.
Every static race/oscillation verdict is cross-checkable dynamically
with ``python -m repro.sim --sanitize`` (:mod:`repro.sim.sanitize`).
"""

from __future__ import annotations

from ..analysis import register_analysis
from ..passes.manager import PRESERVE_ALL, ModulePass, register_pass
from .cdc import check_cdc
from .diagnostics import CODES, Baseline, Diagnostic, DiagnosticSet
from .loops import check_loops
from .model import DesignModel
from .races import check_races

#: The pipeline levels the CLI can lint a suite design at.
LEVELS = ("behavioural", "structural", "netlist")


def lint_module(module, top, unit=None):
    """Run every checker on ``module`` elaborated from entity ``top``.

    Returns a :class:`DiagnosticSet`.  ``unit`` labels the diagnostics
    (defaults to the top name).
    """
    model = DesignModel(module, top)
    return lint_model(model, unit=unit or top)


def lint_model(model, unit=None):
    """Run every checker on an existing :class:`DesignModel`."""
    diagnostics = DiagnosticSet()
    check_races(model, diagnostics, unit=unit)
    check_loops(model, diagnostics, unit=unit)
    check_cdc(model, diagnostics, unit=unit)
    return diagnostics


def root_entities(module):
    """Entities no other unit instantiates (the elaboration roots)."""
    from ..ir.units import UnitDecl

    instantiated = set()
    for unit in module:
        if isinstance(unit, UnitDecl):
            continue
        for inst in unit.instructions():
            if inst.opcode == "inst":
                instantiated.add(inst.callee)
    return [unit.name for unit in module
            if not isinstance(unit, UnitDecl) and unit.is_entity
            and unit.name not in instantiated]


def lower_design_module(module, level):
    """Lower a compiled behavioural module in place to ``level``.

    Returns the module actually holding the requested level (netlist
    lowering produces a fresh module).
    """
    if level not in LEVELS:
        raise ValueError(f"unknown level {level!r}; pick from {LEVELS}")
    if level == "behavioural":
        return module
    from ..passes.pipeline import lower_to_structural

    lower_to_structural(module, strict=False, verify=False)
    if level == "structural":
        return module
    from ..interop import netlist_design

    return netlist_design(module)


def lint_design(name, level="behavioural", cycles=None):
    """Compile suite design ``name``, lower to ``level``, and lint it."""
    from ..designs import DESIGNS, compile_design

    design = DESIGNS[name]
    module = compile_design(name, cycles)
    module = lower_design_module(module, level)
    return lint_module(module, design.top, unit=f"{name}@{level}")


# -- AnalysisManager / PassManager integration ---------------------------------


def _lint_model_analysis(module):
    """Cached per-module lint models, one per elaboration root."""
    return {top: DesignModel(module, top)
            for top in root_entities(module)}


def _lint_analysis(module):
    """Cached per-module diagnostics over every elaboration root."""
    diagnostics = DiagnosticSet()
    for top in root_entities(module):
        diagnostics.extend(lint_module(module, top, unit=top))
    return diagnostics


register_analysis("lint-model", _lint_model_analysis)
register_analysis("lint", _lint_analysis)


@register_pass
class LintPass(ModulePass):
    """Report lint diagnostics as pass statistics (``repro.opt lint``).

    Purely observational: requests the cached ``lint`` analysis, bumps
    one counter per diagnostic code, and mutates nothing.
    """

    name = "lint"
    preserves = PRESERVE_ALL

    def run_on_module(self, module, am):
        diagnostics = am.get("lint", module)
        for diagnostic in diagnostics:
            self.stat(diagnostic.code)
        self.findings = diagnostics
        return False


__all__ = [
    "CODES", "Baseline", "DesignModel", "Diagnostic", "DiagnosticSet",
    "LEVELS", "LintPass", "lint_design", "lint_model", "lint_module",
    "lower_design_module", "root_entities",
]
