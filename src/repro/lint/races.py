"""RACE checkers: static multi-driver conflicts.

``RACE001`` — an *unresolved* net (any element type without the IEEE
1164 resolution function, i.e. everything but ``lN``) with two or more
driver keys that can put a transaction on it in the same instant.
Driver keys match the runtime granularity (one per process instance,
one per entity's ``drv`` set, one per ``reg``/``del``), so several
drives from one process never race each other — the scheduler replaces
same-key transactions.  One cross-class pairing is deliberately
allowed: an initialization-only drive (fires exclusively in the t=0
instant) against edge- or timed-class drivers (whose first transaction
matures strictly later) — the Moore testbench handoff idiom.

``RACE002`` — two nets merged by ``con`` whose declared initial values
always conflict (known, unequal, and not nine-valued-resolvable): the
merged net's power-up value would depend on elaboration order.
"""

from __future__ import annotations


def _is_resolved(net):
    type = net.type
    element = type.element if type.is_signal else type
    return element.is_logic


#: clazz-pair combinations that cannot mature a transaction in the same
#: instant: ``init`` fires only at t=0; ``edge`` and ``timed`` drives
#: first fire after a wait has suspended at least once.
_COMPATIBLE = frozenset((
    frozenset(("init", "edge")),
    frozenset(("init", "timed")),
))


def check_races(model, diagnostics, unit=None):
    """Run RACE001/RACE002 over a :class:`DesignModel`."""
    by_net = {}
    for driver in model.drivers:
        by_net.setdefault(driver.net.find(), {}) \
            .setdefault(driver.key, []).append(driver)
    for net in sorted(by_net, key=lambda n: n.index):
        keyed = by_net[net]
        if len(keyed) < 2 or _is_resolved(net):
            continue
        entries = [(frozenset(d.clazz for d in group), group[0])
                   for group in keyed.values()]
        entries.sort(key=lambda e: e[1].where)
        for i, (classes_a, a) in enumerate(entries):
            for classes_b, b in entries[i + 1:]:
                if _compatible(classes_a, classes_b):
                    continue
                diagnostics.emit(
                    "RACE001",
                    f"unresolved net {net.label()} has multiple "
                    f"drivers that can fire in the same instant; "
                    f"the simulation outcome depends on driver order",
                    unit=unit, location=net.label(),
                    notes=(f"driver 1: {a.describe()}",
                           f"driver 2: {b.describe()}"))
    for a, b, va, vb, path in model.con_conflicts:
        diagnostics.emit(
            "RACE002",
            f"connected nets {a.label()} and {b.label()} declare "
            f"conflicting initial values {va!r} and {vb!r}",
            unit=unit, location=a.label(),
            notes=(f"merged in {path}",))


def _compatible(classes_a, classes_b):
    """Can every drive in A coexist with every drive in B?"""
    for ca in classes_a:
        for cb in classes_b:
            if ca == cb:
                return False
            if frozenset((ca, cb)) not in _COMPATIBLE:
                return False
    return True
