"""Structured lint diagnostics: codes, locations, renderers, baselines.

Every checker finding is a :class:`Diagnostic` with a stable code
(``RACE001``, ``LOOP001``, ...), a severity, a location (unit /
instruction path inside the elaborated hierarchy), a one-line message,
and optional related notes pointing at the other half of the problem
(the second driver of a race, the members of a loop).  A
:class:`DiagnosticSet` renders to human-readable text or JSON and can be
filtered through a committed baseline file (the suppression mechanism
the CI lint gate builds on: known findings are recorded once, new ones
fail the build).
"""

from __future__ import annotations

import json

#: code -> (severity, one-line summary) for every diagnostic the
#: checkers can emit.  Severities are "error" (semantics are broken or
#: nondeterministic) and "warning" (legal but hazardous).
CODES = {
    "RACE001": ("error",
                "unresolved net with multiple same-instant drivers"),
    "RACE002": ("error",
                "net merge with conflicting two-valued initial values"),
    "LOOP001": ("error",
                "zero-delay combinational loop (delta-cycle oscillator)"),
    "CDC001": ("warning",
               "unsynchronized clock-domain crossing"),
    "CDC002": ("warning",
               "register clock is never driven"),
}

SEVERITIES = ("error", "warning")


class Diagnostic:
    """One lint finding."""

    __slots__ = ("code", "severity", "message", "unit", "location",
                 "notes")

    def __init__(self, code, message, unit=None, location=None,
                 notes=(), severity=None):
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        self.code = code
        self.severity = severity or CODES[code][0]
        self.message = message
        self.unit = unit          # unit name, e.g. "cdc_strobe_tb"
        self.location = location  # hierarchical net/instruction path
        self.notes = tuple(notes)

    def key(self):
        """The identity used for baseline suppression.

        Deliberately excludes the free-text message: a reworded
        explanation must not un-suppress a known finding.
        """
        return (self.code, self.unit or "", self.location or "")

    def render(self):
        where = self.location or self.unit or "<design>"
        lines = [f"{self.severity}: {self.code}: {where}: {self.message}"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_json(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "unit": self.unit,
            "location": self.location,
            "message": self.message,
            "notes": list(self.notes),
        }

    @classmethod
    def from_json(cls, data):
        return cls(data["code"], data.get("message", ""),
                   unit=data.get("unit"), location=data.get("location"),
                   notes=data.get("notes", ()),
                   severity=data.get("severity"))

    def __repr__(self):
        return f"<{self.code} @ {self.location or self.unit}>"


class DiagnosticSet:
    """The ordered findings of one lint run."""

    def __init__(self, diagnostics=()):
        self.diagnostics = list(diagnostics)

    def add(self, diagnostic):
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics):
        self.diagnostics.extend(diagnostics)

    def emit(self, code, message, unit=None, location=None, notes=()):
        self.add(Diagnostic(code, message, unit=unit, location=location,
                            notes=notes))

    def sorted(self):
        return sorted(self.diagnostics,
                      key=lambda d: (SEVERITIES.index(d.severity),
                                     d.code, d.location or "",
                                     d.message))

    def count(self, severity=None, code=None):
        return sum(1 for d in self.diagnostics
                   if (severity is None or d.severity == severity)
                   and (code is None or d.code == code))

    def codes(self):
        return sorted({d.code for d in self.diagnostics})

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # -- rendering -------------------------------------------------------------

    def render_text(self, header=None):
        lines = []
        if header:
            lines.append(header)
        for diag in self.sorted():
            lines.append(diag.render())
        errors = self.count("error")
        warnings = self.count("warning")
        lines.append(f"{errors} error(s), {warnings} warning(s)")
        return "\n".join(lines)

    def render_json(self, **extra):
        payload = dict(extra)
        payload["diagnostics"] = [d.to_json() for d in self.sorted()]
        payload["errors"] = self.count("error")
        payload["warnings"] = self.count("warning")
        return json.dumps(payload, indent=2, sort_keys=True)

    # -- baseline suppression ----------------------------------------------------

    def suppress(self, baseline):
        """Split against a baseline -> (new DiagnosticSet, suppressed list).

        A finding is suppressed when its :meth:`Diagnostic.key` appears
        in the baseline; each baseline entry suppresses any number of
        findings with that key (a loop reported through two nets must
        not need two entries).
        """
        known = set(baseline.keys)
        fresh, suppressed = [], []
        for diag in self.diagnostics:
            (suppressed if diag.key() in known else fresh).append(diag)
        return DiagnosticSet(fresh), suppressed


class Baseline:
    """A committed set of known diagnostic keys.

    The file format is the JSON the CLI writes with ``--update-baseline``:
    ``{"diagnostics": [{"code": ..., "unit": ..., "location": ...}]}`` —
    the same shape ``--format json`` emits, so a baseline can be seeded
    from a plain lint run.
    """

    def __init__(self, keys=()):
        self.keys = set(keys)

    @classmethod
    def from_diagnostics(cls, diagnostics):
        return cls(d.key() for d in diagnostics)

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            data = json.load(fh)
        keys = []
        for entry in data.get("diagnostics", []):
            keys.append((entry["code"], entry.get("unit") or "",
                         entry.get("location") or ""))
        return cls(keys)

    def dump(self, path):
        entries = [{"code": code, "unit": unit, "location": location}
                   for code, unit, location in sorted(self.keys)]
        with open(path, "w") as fh:
            json.dump({"diagnostics": entries}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
