"""``python -m repro.sim`` — the paper's ``llhd-sim`` tool.

Elaborates an LLHD module and simulates it with one of the four
engines::

    python -m repro.sim design.llhd --top top
    python -m repro.sim design.llhd --engine blaze --until 100ns --stats
    python -m repro.sim --design fifo --cycles 60 --engine blaze
    python -m repro.sim --design fifo --engine levelized --stats
    python -m repro.sim design.llhd --vcd out.vcd --trace
    python -m repro.sim --design fifo --batch 16 --stats
    python -m repro.sim --design fifo --batch 8 --seed-stride 1 --stats

Input is either an ``.llhd`` file (``-`` reads stdin) or a named design
from the evaluation suite (``--design``, see ``--list-designs``).  The
engine is ``interp`` (LLHD-Sim, the reference interpreter), ``blaze``
(the compiled simulator), ``cycle`` (the independent two-phase
baseline), or ``levelized`` (the ahead-of-time compiled netlist
engine; with ``--design`` it implies ``--netlist``, which lowers the
design through structural lowering and technology mapping first).
``--cross-check`` runs interp *and* blaze — plus levelized when the
module is at the netlist level — and verifies the traces are identical
before reporting.
"""

from __future__ import annotations

import argparse
import sys

from .values import SimulationError

_TIME_SUFFIXES = {
    "fs": 1, "ps": 1_000, "ns": 1_000_000, "us": 1_000_000_000,
    "ms": 1_000_000_000_000, "s": 1_000_000_000_000_000,
}


def parse_time_fs(text):
    """Parse ``100ns`` / ``2500`` (bare = femtoseconds) into fs."""
    text = text.strip()
    for suffix in sorted(_TIME_SUFFIXES, key=len, reverse=True):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            return int(float(number) * _TIME_SUFFIXES[suffix])
    return int(text)


def _build_parser():
    from . import BACKENDS

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Simulate LLHD designs (the paper's llhd-sim).")
    parser.add_argument(
        "file", nargs="?", metavar="FILE",
        help=".llhd input file ('-' reads stdin)")
    parser.add_argument(
        "--design", metavar="NAME",
        help="simulate a named design from the evaluation suite instead "
             "of a file")
    parser.add_argument(
        "--cycles", type=int, default=None, metavar="N",
        help="testbench cycle count for --design")
    parser.add_argument(
        "-t", "--top", metavar="NAME",
        help="top entity (default: sole entity, or the design's "
             "testbench)")
    parser.add_argument(
        "-e", "--engine", default="interp", choices=BACKENDS,
        help="simulation engine (default: interp)")
    parser.add_argument(
        "--netlist", action="store_true",
        help="with --design: lower to the netlist level (structural "
             "lowering + technology mapping) before simulating; implied "
             "by --engine levelized")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="levelized compile-cache directory (default: "
             "$REPRO_CACHE_DIR, else ~/.cache/repro)")
    parser.add_argument(
        "--until", metavar="TIME", default=None,
        help="stop at this time (e.g. 100ns, 2500 = fs)")
    parser.add_argument(
        "--stats", action="store_true",
        help="print kernel statistics (deltas, events, activations)")
    parser.add_argument(
        "--trace", action="store_true",
        help="print the value-change trace")
    parser.add_argument(
        "--vcd", metavar="FILE",
        help="write the trace as a VCD file")
    parser.add_argument(
        "--cross-check", action="store_true",
        help="simulate under interp AND blaze; fail on trace divergence")
    parser.add_argument(
        "--sanitize", action="store_true",
        help="record drive races and delta-cycle oscillations as "
             "findings (cross-checking repro.lint verdicts) instead of "
             "aborting the run")
    parser.add_argument(
        "--batch", type=int, default=None, metavar="K",
        help="simulate K lanes through one elaborated design; without "
             "--seed-stride every lane sees identical stimulus "
             "(vectorized fast path)")
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base stimulus seed for --seed-stride (default: 0)")
    parser.add_argument(
        "--seed-stride", type=int, default=None, metavar="S",
        help="with --batch K: inject randomized stimulus where lane k "
             "uses seed N+k*S, running the lanes in replicated mode")
    parser.add_argument(
        "--list-designs", action="store_true",
        help="list the named designs of the evaluation suite with the "
             "deepest pipeline level each reaches, then exit")
    parser.add_argument(
        "--no-reach", action="store_true",
        help="with --list-designs: skip the (slower) per-design lowering "
             "that computes the reach column")
    return parser


def _load_module(args, parser):
    from ..ir import ParseError, parse_module

    if args.design:
        from ..designs import DESIGNS, compile_design

        if args.design not in DESIGNS:
            parser.error(
                f"unknown design {args.design!r}; see --list-designs")
        module = compile_design(args.design, cycles=args.cycles)
        top = args.top or DESIGNS[args.design].top
        if args.netlist or args.engine == "levelized":
            from ..interop import netlist_design
            from ..passes.pipeline import lower_to_structural

            lower_to_structural(module, strict=False, verify=False)
            module = netlist_design(module)
        return module, top
    if not args.file:
        parser.error("an input file or --design is required")
    try:
        if args.file == "-":
            text = sys.stdin.read()
        else:
            with open(args.file) as fh:
                text = fh.read()
    except OSError as exc:
        parser.error(str(exc))
    try:
        module = parse_module(text)
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    return module, args.top or _default_top(module, parser)


def _default_top(module, parser):
    from ..ir.units import UnitDecl

    entities = [unit.name for unit in module
                if not isinstance(unit, UnitDecl) and unit.is_entity]
    if len(entities) == 1:
        return entities[0]
    parser.error(
        "--top is required (module has "
        f"{len(entities)} entities: {', '.join(entities[:5])})")


def _report(result, args):
    for line in result.output:
        print(line)
    for failure in result.assertion_failures:
        print(failure, file=sys.stderr)
    for finding in result.findings:
        print(finding.render(), file=sys.stderr)
    if args.stats:
        stats = result.stats
        print(f"# finished at {result.final_time_fs}fs: "
              f"{stats['deltas']} deltas, {stats['events']} events, "
              f"{stats['activations']} activations", file=sys.stderr)
        if "cache_hits" in stats:
            print(f"# levelized cache: {stats['cache_hits']} hits, "
                  f"{stats['cache_misses']} misses, "
                  f"{stats['cache_errors']} errors; cone "
                  f"{stats.get('cone_nets', 0)} nets / "
                  f"{stats.get('cone_gates', 0)} gates / "
                  f"{stats.get('cone_seqs', 0)} storage cells",
                  file=sys.stderr)
    if args.trace:
        trace = result.trace
        for name in trace.signals():
            for fs, value in trace.history(name):
                print(f"{fs}fs {name} = {value}")
    if args.vcd:
        with open(args.vcd, "w") as fh:
            fh.write(result.trace.to_vcd())


def _report_batch(batch, args):
    for k in range(batch.lanes):
        lane = batch.lane(k)
        for line in lane.output:
            print(f"[lane {k}] {line}")
        for failure in lane.assertion_failures:
            print(f"[lane {k}] {failure}", file=sys.stderr)
    if args.stats:
        stats = batch.stats
        finishes = " ".join(
            f"l{k}@{batch.lane(k).final_time_fs}fs"
            for k in range(batch.lanes))
        print(f"# batch of {batch.lanes} lanes ({batch.mode}): "
              f"{stats['deltas']} deltas, {stats['events']} events, "
              f"{stats['activations']} activations; {finishes}",
              file=sys.stderr)
    if args.trace:
        for k in range(batch.lanes):
            trace = batch.lane(k).trace
            for name in trace.signals():
                for fs, value in trace.history(name):
                    print(f"l{k} {fs}fs {name} = {value}")
    if args.vcd:
        base, dot, ext = args.vcd.rpartition(".")
        for k in range(batch.lanes):
            path = f"{base}.l{k}{dot}{ext}" if dot else f"{args.vcd}.l{k}"
            with open(path, "w") as fh:
                fh.write(batch.lane(k).trace.to_vcd())


def _batch_stimulus(module, top, args, parser):
    if args.seed_stride is None:
        return None
    from .stimulus import inject_batch_stimulus

    lane_seeds = [args.seed + k * args.seed_stride
                  for k in range(args.batch)]
    stimulus = inject_batch_stimulus(module, top, args.seed, lane_seeds)
    if stimulus is None:
        parser.error(f"--seed-stride: top @{top} has no injectable nets")
    return stimulus


def _run_batch_cli(module, top, until_fs, args, parser):
    from . import simulate_batch

    stimulus = _batch_stimulus(module, top, args, parser)
    if args.cross_check:
        runs = {}
        for backend in ("interp", "blaze"):
            runs[backend] = simulate_batch(
                module, top, args.batch, until_fs=until_fs,
                backend=backend, stimulus=stimulus)
        for k in range(args.batch):
            differences = runs["interp"].lane(k).trace.differences(
                runs["blaze"].lane(k).trace)
            if differences:
                print(f"error: lane {k}: interp and blaze traces "
                      "diverge:", file=sys.stderr)
                for issue in differences:
                    print(f"  {issue}", file=sys.stderr)
                return None
        print("# lane traces identical across interp and blaze",
              file=sys.stderr)
        return runs["blaze"]
    return simulate_batch(module, top, args.batch, until_fs=until_fs,
                          backend=args.engine, stimulus=stimulus)


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.seed_stride is not None and args.batch is None:
        parser.error("--seed-stride requires --batch")
    if args.sanitize and args.batch is not None:
        parser.error("--sanitize does not support batched lanes")
    if args.engine == "levelized":
        if args.sanitize:
            parser.error(
                "--sanitize does not support the levelized engine (the "
                "cone bypasses the scheduler the sanitizer instruments)")
        if args.batch is not None:
            parser.error(
                "--batch does not support the levelized engine")
    if args.list_designs:
        from ..designs import (
            ALL_DESIGNS, DESIGNS, netlist_engine_report, stage_reach,
        )
        from ..lint import lint_design

        for name in ALL_DESIGNS:
            design = DESIGNS[name]
            prefix = f"{name:16s} top @{design.top:20s}"
            try:
                diagnostics = lint_design(name)
                lint = "clean" if not len(diagnostics) else \
                    ",".join(sorted(diagnostics.codes()))
            except Exception as exc:  # lint must never break the listing
                lint = f"error({type(exc).__name__})"
            if args.no_reach:
                print(f"{prefix} lint {lint:12s} {design.paper_name}")
                continue
            reach, rejections = stage_reach(name)
            deepest = [s for s, ok in reach.items() if ok][-1]
            if reach["netlist"]:
                try:
                    engines, notes = netlist_engine_report(name)
                except Exception as exc:  # must never break the listing
                    engines, notes = [], [f"engine probe failed: {exc}"]
                deepest = f"{deepest}[{','.join(engines)}]"
            print(f"{prefix} reach {deepest} lint {lint:12s} "
                  f"{design.paper_name}")
            for proc, why in rejections:
                print(f"{'':21s} rejected @{proc}: {why}")
            if reach["netlist"]:
                for note in notes:
                    print(f"{'':21s} {note}")
        return 0
    module, top = _load_module(args, parser)
    until_fs = parse_time_fs(args.until) if args.until else None

    from . import simulate

    if args.batch is not None:
        try:
            batch = _run_batch_cli(module, top, until_fs, args, parser)
        except SimulationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if batch is None:
            return 2
        _report_batch(batch, args)
        return 1 if batch.assertion_failures else 0

    try:
        if args.cross_check:
            engines = ["interp", "blaze"]
            # Include the levelized engine whenever the module is (or
            # was just lowered to) the netlist level; the sanitizer
            # cannot instrument the cone, so it keeps the pair.
            if (args.netlist or args.engine == "levelized") \
                    and not args.sanitize:
                engines.append("levelized")
            runs = {}
            for backend in engines:
                runs[backend] = simulate(
                    module, top, until_fs=until_fs, backend=backend,
                    sanitize=args.sanitize and backend != "levelized",
                    cache_dir=args.cache_dir)
            reference = runs["interp"]
            for backend in engines[1:]:
                differences = reference.trace.differences(
                    runs[backend].trace)
                if differences:
                    print(f"error: interp and {backend} traces diverge:",
                          file=sys.stderr)
                    for issue in differences:
                        print(f"  {issue}", file=sys.stderr)
                    return 2
            print(f"# traces identical across {', '.join(engines)}",
                  file=sys.stderr)
            result = runs.get(args.engine, runs["blaze"])
        else:
            result = simulate(module, top, until_fs=until_fs,
                              backend=args.engine, sanitize=args.sanitize,
                              cache_dir=args.cache_dir)
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _report(result, args)
    return 1 if result.assertion_failures or result.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
