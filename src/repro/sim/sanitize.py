"""Scheduler sanitizer: dynamic detection of races and oscillations.

The static checkers in :mod:`repro.lint` predict two scheduler-level
hazards; with ``sanitize=True`` (CLI: ``python -m repro.sim
--sanitize``) the kernels *observe* them instead of failing:

* a **drive race** — several drivers mature conflicting values on an
  unresolved net in the same instant (the static ``RACE001``).  Without
  the sanitizer this is a hard :class:`SimulationError`; with it, the
  conflict is recorded and the last driver wins so the run can surface
  every race, not just the first.
* an **oscillation** — the delta-cycle limit trips within one physical
  instant (the static ``LOOP001``).  The sanitizer records the nets
  still exchanging events and finishes the simulation gracefully.

Findings carry the same stable codes as the static diagnostics so a
static verdict can be cross-checked against simulation ground truth
(``tests/lint`` does exactly that over the seeded bad corpus).
"""

from __future__ import annotations


class Finding:
    """One dynamic sanitizer finding."""

    __slots__ = ("code", "time_fs", "location", "message", "drivers")

    def __init__(self, code, time_fs, location, message, drivers=()):
        self.code = code
        self.time_fs = time_fs
        self.location = location
        self.message = message
        self.drivers = tuple(drivers)

    def render(self):
        lines = [f"sanitizer: {self.code}: t={self.time_fs}fs: "
                 f"{self.location}: {self.message}"]
        for driver in self.drivers:
            lines.append(f"  driver: {driver}")
        return "\n".join(lines)

    def to_json(self):
        return {"code": self.code, "time_fs": self.time_fs,
                "location": self.location, "message": self.message,
                "drivers": list(self.drivers)}

    def __repr__(self):
        return f"<sanitizer {self.code} @ {self.location}>"


class Sanitizer:
    """Collects scheduler hazards during one simulation run."""

    def __init__(self):
        self.findings = []
        self._seen = set()

    def record_race(self, kernel, sig, path, values, keys):
        """A same-instant multi-driver conflict on an unresolved net."""
        drivers = sorted(kernel.describe_driver(key) for key in keys)
        dedup = (("race", sig.find().name) + tuple(drivers))
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        where = sig.find().name
        if path:
            where = f"{where}[{'/'.join(str(p) for p in path)}]"
        self.findings.append(Finding(
            "RACE001", kernel.now[0], where,
            f"{len(keys)} drivers matured conflicting values "
            f"{values!r} in the same instant; applying the last one",
            drivers=drivers))

    def record_oscillation(self, kernel, fs, nets):
        """The delta limit tripped: zero-delay feedback never settled."""
        names = sorted(set(nets))
        dedup = ("osc",) + tuple(names)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        self.findings.append(Finding(
            "LOOP001", fs, names[0] if names else "<design>",
            f"delta-cycle limit ({kernel.MAX_DELTAS}) exceeded; "
            f"net(s) still oscillating: {', '.join(names) or 'unknown'}",
            drivers=()))

    def codes(self):
        return sorted({f.code for f in self.findings})

    def render(self):
        return "\n".join(f.render() for f in self.findings)

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
