"""Evaluation of pure data-flow instructions.

``evaluate(inst, operands)`` computes the result of one side-effect-free
instruction from already-evaluated operand values.  It is shared by the
reference interpreter, the compiled simulators, and the constant-folding
pass (which runs it on constant operands at compile time), so all agree on
arithmetic semantics by construction.

Semantics notes:

* ``iN`` arithmetic wraps modulo 2^N; division/modulo by zero raises
  :class:`SimulationError`.
* ``sdiv``/``srem`` truncate toward zero; ``smod`` follows the divisor's
  sign (as in VHDL's mod/rem pair).
* ``lN`` logic ops use the IEEE 1164 tables; arithmetic on ``lN`` degrades
  to all-``X`` unless both operands are two-valued.
* shifts of an ``lN`` value degrade to all-``X`` when either the shifted
  value or the shift amount contains non-two-valued bits, mirroring the
  arithmetic rule; an unknown shift amount applied to an ``iN`` value is
  an error (an integer cannot represent "unknown").
* ``eq``/``neq`` on ``lN`` compare the X01-normalized bits.

``evaluate`` dispatches through :data:`EVALUATORS`, a per-opcode function
table — interpreters resolve the evaluator once per instruction when they
predecode (see :mod:`repro.sim.plan`) instead of re-matching opcode
strings on every execution.
"""

from __future__ import annotations

from ..ir.ninevalued import LogicVec
from .values import (
    SimulationError, extract_path, from_signed, insert_path, mask,
    pack_array, to_signed,
)


def _int_binary(op, a, b, width):
    m = mask(width)
    if op == "add":
        return (a + b) & m
    if op == "sub":
        return (a - b) & m
    if op == "mul":
        return (a * b) & m
    if op in ("udiv", "sdiv", "umod", "smod", "urem", "srem") and (
            b == 0 or (op[0] == "s" and to_signed(b, width) == 0)):
        raise SimulationError(f"{op}: division by zero")
    if op == "udiv":
        return a // b
    if op == "umod" or op == "urem":
        return a % b
    sa, sb = to_signed(a, width), to_signed(b, width)
    if op == "sdiv":
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return from_signed(q, width)
    if op == "srem":
        r = abs(sa) % abs(sb)
        if sa < 0:
            r = -r
        return from_signed(r, width)
    if op == "smod":
        return from_signed(sa - sb * (sa // sb), width)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    raise SimulationError(f"unknown integer op {op}")


def _logic_binary(op, a, b):
    if op == "and":
        return a.and_(b)
    if op == "or":
        return a.or_(b)
    if op == "xor":
        return a.xor(b)
    # Arithmetic on logic vectors: the two-valued fast path tests the
    # unknown planes once per vector and computes on the value planes
    # directly; anything unknown degrades to all-X.
    if a._unk | b._unk:
        return LogicVec.filled("X", a.width)
    width = a.width
    return LogicVec.from_int(_int_binary(op, a._val, b._val, width), width)


def logic_compare(op, a, b):
    """Compare two ``lN`` values; unknowns make every comparison false.

    ``eq``/``neq`` compare the X01-normalized values (an ``X`` anywhere
    makes the answer unknown, i.e. 0); ordered comparisons require both
    operands two-valued and then compare the integer interpretations.
    Each test is a single unknown-plane check plus a value-plane compare.
    """
    if a._unk | b._unk:
        return 0
    if op == "eq":
        return int(a._val == b._val)
    if op == "neq":
        return int(a._val != b._val)
    ia, ib = a._val, b._val
    if op[0] == "s":
        ia, ib = to_signed(ia, a.width), to_signed(ib, b.width)
    rel = op[1:]
    if rel == "lt":
        return int(ia < ib)
    if rel == "gt":
        return int(ia > ib)
    if rel == "le":
        return int(ia <= ib)
    if rel == "ge":
        return int(ia >= ib)
    raise SimulationError(f"unknown comparison {op}")


def logic_level(value):
    """The integer level of a trigger value, or -1 when unknown.

    ``reg`` edge detection compares trigger levels against 0/1; a
    two-valued nine-valued trigger contributes its X01 integer value
    (any width, matching the ``iN`` trigger semantics) while ``X``/``Z``
    phases return -1 and so match neither edge.
    """
    if isinstance(value, LogicVec):
        if value._unk == 0:
            return value._val
        return -1
    return value


def _compare(op, a, b, inst):
    ty = inst.operands[0].type
    if ty.is_logic:
        return logic_compare(op, a, b)
    if op == "eq":
        return int(a == b)
    if op == "neq":
        return int(a != b)
    width = ty.width
    if op[0] == "u":
        sa, sb = a, b
    else:
        sa, sb = to_signed(a, width), to_signed(b, width)
    rel = op[1:]
    if rel == "lt":
        return int(sa < sb)
    if rel == "gt":
        return int(sa > sb)
    if rel == "le":
        return int(sa <= sb)
    if rel == "ge":
        return int(sa >= sb)
    raise SimulationError(f"unknown comparison {op}")


def shift_amount(amount):
    """Normalize a shift amount to an int, or None if it is unknown."""
    if isinstance(amount, LogicVec):
        if not amount.is_two_valued:
            return None
        return amount.to_int()
    return amount


def logic_neg(a):
    """Negate an ``lN`` value; degrades to all-``X`` unless two-valued."""
    if a._unk:
        return LogicVec.filled("X", a.width)
    return LogicVec.from_int(-a._val, a.width)


def logic_shift(op, a, amount):
    """Shift an ``lN`` value, propagating unknowns as all-``X``."""
    amount = shift_amount(amount)
    if amount is None or a._unk:
        return LogicVec.filled("X", a.width)
    if op == "shl":
        return LogicVec.from_int(a._val << amount, a.width)
    return LogicVec.from_int(a._val >> amount, a.width)


def int_shift(op, a, amount, width):
    """Shift an ``iN`` value; an unknown amount has no iN encoding."""
    amount = shift_amount(amount)
    if amount is None:
        raise SimulationError(f"{op}: shift amount is unknown (X)")
    if op == "shl":
        return (a << amount) & mask(width)
    return a >> amount


def path_of(inst):
    """The projection path step for an extf/exts on a signal or pointer."""
    if inst.opcode == "extf":
        return ("field", inst.attrs["index"])
    inner = inst.operands[0].type
    if inner.is_signal:
        inner = inner.element
    elif inner.is_pointer:
        inner = inner.pointee
    if inner.is_int:
        kind = "int"
    elif inner.is_logic:
        kind = "logic"
    else:
        kind = "array"
    return ("slice", inst.attrs["offset"], inst.attrs["length"], kind)


def _eval_extf(inst, operands):
    agg = operands[0]
    index = inst.attrs.get("index")
    if index is None:
        index = operands[1]
        if isinstance(index, LogicVec):
            if not index.is_two_valued:
                raise SimulationError("extf index is unknown (X)")
            index = index.to_int()
    if not 0 <= index < len(agg):
        raise SimulationError(
            f"extf index {index} out of range for {len(agg)} elements")
    return agg[index]


def _eval_insf(inst, operands):
    agg, value = operands[0], operands[1]
    index = inst.attrs.get("index")
    if index is None:
        index = operands[2]
        if isinstance(index, LogicVec):
            if not index.is_two_valued:
                raise SimulationError("insf index is unknown (X)")
            index = index.to_int()
    if not 0 <= index < len(agg):
        raise SimulationError(
            f"insf index {index} out of range for {len(agg)} elements")
    return agg[:index] + (value,) + agg[index + 1:]


def _eval_const(inst, operands):
    return inst.attrs["value"]


def _eval_binary(inst, operands):
    a, b = operands
    if isinstance(a, LogicVec):
        return _logic_binary(inst.opcode, a, b)
    return _int_binary(inst.opcode, a, b, inst.type.width)


def _eval_compare(inst, operands):
    return _compare(inst.opcode, operands[0], operands[1], inst)


def _eval_not(inst, operands):
    a = operands[0]
    if isinstance(a, LogicVec):
        return a.not_()
    return (~a) & mask(inst.type.width)


def _eval_neg(inst, operands):
    a = operands[0]
    if isinstance(a, LogicVec):
        return logic_neg(a)
    return (-a) & mask(inst.type.width)


def _eval_shift(inst, operands):
    a, amount = operands
    if isinstance(a, LogicVec):
        return logic_shift(inst.opcode, a, amount)
    return int_shift(inst.opcode, a, amount, inst.type.width)


def _eval_zext(inst, operands):
    a = operands[0]
    if isinstance(a, LogicVec):
        return a.zext(inst.type.width)
    return a


def _eval_sext(inst, operands):
    a = operands[0]
    if isinstance(a, LogicVec):
        return a.sext(inst.type.width)
    src_width = inst.operands[0].type.width
    return from_signed(to_signed(a, src_width), inst.type.width)


def _eval_trunc(inst, operands):
    a = operands[0]
    if isinstance(a, LogicVec):
        return a.trunc(inst.type.width)
    return a & mask(inst.type.width)


def _eval_array(inst, operands):
    if inst.attrs.get("splat"):
        elems = tuple(operands[0] for _ in range(inst.type.length))
    else:
        elems = tuple(operands)
    if inst.type.element.is_logic:
        return pack_array(elems)
    return elems


def _eval_struct(inst, operands):
    return tuple(operands)


def _eval_exts(inst, operands):
    return extract_path(operands[0], (path_of(inst),))


def _eval_inss(inst, operands):
    agg, value = operands
    return insert_path(agg, (path_of(inst),), value)


def _eval_mux(inst, operands):
    choices, sel = operands
    if isinstance(sel, LogicVec):
        if not sel.is_two_valued:
            raise SimulationError("mux selector is unknown (X)")
        sel = sel.to_int()
    return choices[min(sel, len(choices) - 1)]


#: Per-opcode evaluator functions ``fn(inst, operands) -> value``.
EVALUATORS = {
    "const": _eval_const,
    "not": _eval_not,
    "neg": _eval_neg,
    "shl": _eval_shift,
    "shr": _eval_shift,
    "zext": _eval_zext,
    "sext": _eval_sext,
    "trunc": _eval_trunc,
    "array": _eval_array,
    "struct": _eval_struct,
    "extf": _eval_extf,
    "insf": _eval_insf,
    "exts": _eval_exts,
    "inss": _eval_inss,
    "mux": _eval_mux,
}
for _op in ("add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
            "srem", "and", "or", "xor"):
    EVALUATORS[_op] = _eval_binary
for _op in ("eq", "neq", "ult", "ugt", "ule", "uge", "slt", "sgt", "sle",
            "sge"):
    EVALUATORS[_op] = _eval_compare
del _op


def evaluate(inst, operands):
    """Evaluate one pure instruction; ``operands`` are runtime values."""
    fn = EVALUATORS.get(inst.opcode)
    if fn is None:
        raise SimulationError(
            f"evaluate: not a pure instruction: {inst.opcode}")
    return fn(inst, operands)
