"""Predecoded execution plans for the reference interpreter.

The interpreter's original hot loop re-dispatched on each instruction's
opcode string, rebuilt operand lists through ``inst.operands``, and
re-resolved projection paths on every activation.  This module predecodes
each unit *once* into a plan of small step closures:

* every non-terminator instruction becomes one ``step(env, act)``
  closure with its operand environment keys, evaluator, masks, and
  projection paths resolved at plan-build time;
* every terminator becomes a ``term(env, act)`` closure that
  applies the phi parallel copies for the taken edge and returns the next
  :class:`BlockPlan` (or ``None`` when the activity suspends or halts);
* entity bodies become a flat tuple of steps replayed per activation.

Plans capture unit-level statics (instruction identities, constants,
types) plus the design's kernel, so one plan is shared by every
elaborated instance of the unit in a design —
the per-instance state stays in the activity's ``env`` dict, exactly as
before.  This is still an interpreter (values flow through ``env``, no
Python code is generated); it is the classic predecoded-bytecode layout.
"""

from __future__ import annotations

from ..ir.ninevalued import LogicVec, lane_ones
from ..ir.values import TimeValue
from .engine import SignalInstance, SignalRef
from .eval import (
    EVALUATORS, _logic_binary, logic_compare, logic_level, logic_shift,
    path_of,
)
from .lanes import (
    LaneDivergence, drive_cond_lanes, evaluate_lanes, lane_path,
    path_of_lanes, u1, uindex, uindex_int,
)
from .lanes import edge_mask as lane_edge_mask
from .values import (
    SimulationError, extract_path, insert_path, lane_extract, lane_widen,
    mask, to_signed,
)

_EPSILON = TimeValue(0, 0, 1)


class Cell:
    """A mutable memory cell backing ``var``/``alloc``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class CellRef:
    """A projection into a cell: result of extf/exts on a pointer."""

    __slots__ = ("cell", "path")

    def __init__(self, cell, path=()):
        self.cell = cell
        self.path = tuple(path)

    def load(self):
        return extract_path(self.cell.value, self.path)

    def store(self, value):
        self.cell.value = insert_path(self.cell.value, self.path, value)

    def project(self, step):
        return CellRef(self.cell, self.path + (step,))


def _as_cellref(pointer):
    if type(pointer) is Cell:
        return CellRef(pointer)
    return pointer


def _dynamic_index(value):
    from ..ir.ninevalued import LogicVec

    if isinstance(value, LogicVec):
        if not value.is_two_valued:
            raise SimulationError("dynamic index is unknown (X)")
        return value.to_int()
    return value


def probe_value(target, kernel):
    """Read a signal operand (fast path for unmerged whole signals)."""
    if type(target) is SignalInstance:
        if target._rep is None:
            return target.value
        return target.find().value
    return kernel.probe(target)


class BlockPlan:
    """One basic block: straight-line steps plus a terminator."""

    __slots__ = ("steps", "term")

    def __init__(self):
        self.steps = ()
        self.term = None


class _Timeout:
    """Resume-after-timeout token; stale tokens are ignored."""

    __slots__ = ("proc", "token")

    def __init__(self, proc, token):
        self.proc = proc
        self.token = token

    @property
    def order(self):
        return self.proc.order

    def run(self, kernel):
        if self.proc.status == "waiting" and \
                self.proc.wait_token == self.token:
            # timed_out=True: lane-replicated processes must not apply
            # their change-detection wake gate to a timeout resume.
            self.proc.run(kernel, True)


# -- step builders -------------------------------------------------------------

def _const_step(inst):
    key = id(inst)
    value = inst.attrs["value"]

    def step(env, act):
        env[key] = value
    return step


def _binary_int_step(inst):
    """Specialized iN arithmetic/logical/compare steps."""
    op = inst.opcode
    key = id(inst)
    a, b = id(inst.operands[0]), id(inst.operands[1])
    ty = inst.operands[0].type
    if op == "add":
        m = mask(inst.type.width)

        def step(env, act):
            env[key] = (env[a] + env[b]) & m
    elif op == "sub":
        m = mask(inst.type.width)

        def step(env, act):
            env[key] = (env[a] - env[b]) & m
    elif op == "mul":
        m = mask(inst.type.width)

        def step(env, act):
            env[key] = (env[a] * env[b]) & m
    elif op == "and":
        def step(env, act):
            env[key] = env[a] & env[b]
    elif op == "or":
        def step(env, act):
            env[key] = env[a] | env[b]
    elif op == "xor":
        def step(env, act):
            env[key] = env[a] ^ env[b]
    elif op == "eq":
        def step(env, act):
            env[key] = 1 if env[a] == env[b] else 0
    elif op == "neq":
        def step(env, act):
            env[key] = 1 if env[a] != env[b] else 0
    elif op == "ult":
        def step(env, act):
            env[key] = 1 if env[a] < env[b] else 0
    elif op == "ugt":
        def step(env, act):
            env[key] = 1 if env[a] > env[b] else 0
    elif op == "ule":
        def step(env, act):
            env[key] = 1 if env[a] <= env[b] else 0
    elif op == "uge":
        def step(env, act):
            env[key] = 1 if env[a] >= env[b] else 0
    elif op in ("slt", "sgt", "sle", "sge"):
        w = ty.width
        rel = op[1:]

        def step(env, act):
            sa = to_signed(env[a], w)
            sb = to_signed(env[b], w)
            if rel == "lt":
                env[key] = 1 if sa < sb else 0
            elif rel == "gt":
                env[key] = 1 if sa > sb else 0
            elif rel == "le":
                env[key] = 1 if sa <= sb else 0
            else:
                env[key] = 1 if sa >= sb else 0
    else:
        return None
    return step


_INT_FAST_OPS = frozenset({
    "add", "sub", "mul", "and", "or", "xor",
    "slt", "sgt", "sle", "sge",
})
_CMP_FAST_OPS = frozenset({"eq", "neq", "ult", "ugt", "ule", "uge"})


def _binary_logic_step(inst):
    """Specialized lN steps: table ops dispatch straight to LogicVec."""
    op = inst.opcode
    key = id(inst)
    a, b = id(inst.operands[0]), id(inst.operands[1])
    if op == "and":
        def step(env, act):
            env[key] = env[a].and_(env[b])
    elif op == "or":
        def step(env, act):
            env[key] = env[a].or_(env[b])
    elif op == "xor":
        def step(env, act):
            env[key] = env[a].xor(env[b])
    elif op in ("shl", "shr"):
        def step(env, act):
            env[key] = logic_shift(op, env[a], env[b])
    elif op in ("add", "sub", "mul", "udiv", "sdiv", "umod", "smod",
                "urem", "srem"):
        def step(env, act):
            env[key] = _logic_binary(op, env[a], env[b])
    elif op in ("eq", "neq", "ult", "ugt", "ule", "uge", "slt", "sgt",
                "sle", "sge"):
        def step(env, act):
            env[key] = logic_compare(op, env[a], env[b])
    else:
        return None
    return step


def _pure_step(inst):
    """A step for a side-effect-free instruction."""
    op = inst.opcode
    if op == "const":
        return _const_step(inst)
    key = id(inst)
    ops = inst.operands
    opids = tuple(id(o) for o in ops)
    if len(ops) == 2:
        if ops[0].type.is_logic:
            step = _binary_logic_step(inst)
            if step is not None:
                return step
        elif (op in _INT_FAST_OPS and inst.type.is_int) or \
                (op in _CMP_FAST_OPS and
                 (ops[0].type.is_int or op in ("eq", "neq"))):
            step = _binary_int_step(inst)
            if step is not None:
                return step
    if op == "not" and ops and ops[0].type.is_logic:
        a = opids[0]

        def step(env, act):
            env[key] = env[a].not_()
        return step
    if op == "not" and inst.type.is_int:
        a = opids[0]
        m = mask(inst.type.width)

        def step(env, act):
            env[key] = (~env[a]) & m
        return step
    if op == "trunc" and ops[0].type.is_int:
        a = opids[0]
        m = mask(inst.type.width)

        def step(env, act):
            env[key] = env[a] & m
        return step
    if op in ("shl", "shr") and inst.type.is_int and \
            not ops[1].type.is_logic:
        a, b = opids
        m = mask(inst.type.width)
        if op == "shl":
            def step(env, act):
                env[key] = (env[a] << env[b]) & m
        else:
            def step(env, act):
                env[key] = env[a] >> env[b]
        return step
    if op == "zext":
        a = opids[0]
        if ops[0].type.is_logic:
            w = inst.type.width

            def step(env, act):
                env[key] = env[a].zext(w)
        else:
            def step(env, act):
                env[key] = env[a]
        return step
    if op in ("sext", "trunc") and ops[0].type.is_logic:
        a = opids[0]
        w = inst.type.width
        if op == "sext":
            def step(env, act):
                env[key] = env[a].sext(w)
        else:
            def step(env, act):
                env[key] = env[a].trunc(w)
        return step
    # Generic fallback: evaluator resolved once, operands by captured keys.
    fn = EVALUATORS.get(op)
    if fn is None:
        raise SimulationError(f"plan: not a pure instruction: {op}")
    if len(opids) == 1:
        a = opids[0]

        def step(env, act):
            env[key] = fn(inst, (env[a],))
    elif len(opids) == 2:
        a, b = opids

        def step(env, act):
            env[key] = fn(inst, (env[a], env[b]))
    else:
        def step(env, act):
            env[key] = fn(inst, [env[i] for i in opids])
    return step


def _ext_step(inst, kernel):
    """extf/exts over values, signals, and pointers."""
    key = id(inst)
    base = inst.operands[0]
    bid = id(base)
    base_ty = base.type
    rty = inst.type
    if inst.opcode == "extf" and inst.attrs.get("index") is None:
        iid = id(inst.operands[1])
        if base_ty.is_signal:
            def step(env, act):
                b = env[bid]
                if type(b) is SignalInstance:
                    b = SignalRef(b, (), b.type)
                env[key] = b.project(
                    ("field", _dynamic_index(env[iid])), rty)
        elif base_ty.is_pointer:
            def step(env, act):
                env[key] = _as_cellref(env[bid]).project(
                    ("field", _dynamic_index(env[iid])))
        else:
            def step(env, act):
                env[key] = extract_path(
                    env[bid], (("field", _dynamic_index(env[iid])),))
        return step
    if inst.opcode == "extf":
        path_step = ("field", inst.attrs["index"])
    else:
        path_step = path_of(inst)
    if base_ty.is_signal:
        def step(env, act):
            b = env[bid]
            if type(b) is SignalInstance:
                b = SignalRef(b, (), b.type)
            env[key] = b.project(path_step, rty)
    elif base_ty.is_pointer:
        def step(env, act):
            env[key] = _as_cellref(env[bid]).project(path_step)
    else:
        path = (path_step,)

        def step(env, act):
            env[key] = extract_path(env[bid], path)
    return step


def _prb_step(inst, kernel):
    key = id(inst)
    sid = id(inst.operands[0])

    def step(env, act):
        target = env[sid]
        if type(target) is SignalInstance:
            if target._rep is None:
                env[key] = target.value
            else:
                env[key] = target.find().value
        else:
            env[key] = kernel.probe(target)
    return step


def _drv_step(inst, kernel):
    sid = id(inst.drv_signal())
    vid = id(inst.drv_value())
    did = id(inst.drv_delay())
    cond = inst.drv_condition()
    if cond is None:
        def step(env, act):
            kernel.schedule_drive(act.order, env[sid], env[vid], env[did])
    else:
        cid = id(cond)

        def step(env, act):
            if env[cid]:
                kernel.schedule_drive(
                    act.order, env[sid], env[vid], env[did])
    return step


def _sig_step(inst, kernel):
    key = id(inst)
    init = id(inst.operands[0])
    label = inst.name or id(inst)
    ty = inst.type

    def step(env, act):
        if key not in env:
            env[key] = act.design.create_signal(
                f"{act.path}.{label}", ty, env[init])
    return step


def _cell_step(inst, kernel):
    key = id(inst)
    init = id(inst.operands[0])

    def step(env, act):
        env[key] = Cell(env[init])
    return step


def _ld_step(inst, kernel):
    key = id(inst)
    pid = id(inst.operands[0])

    def step(env, act):
        p = env[pid]
        if type(p) is Cell:
            env[key] = p.value
        else:
            env[key] = p.load()
    return step


def _st_step(inst, kernel):
    pid = id(inst.operands[0])
    vid = id(inst.operands[1])

    def step(env, act):
        p = env[pid]
        if type(p) is Cell:
            p.value = env[vid]
        else:
            p.store(env[vid])
    return step


def _call_step(inst, kernel):
    key = id(inst)
    callee = inst.callee
    opids = tuple(id(o) for o in inst.operands)
    void = inst.type.is_void

    def step(env, act):
        result = act.functions.call(
            callee, [env[i] for i in opids], where=f"in {act.path}")
        if not void:
            env[key] = result
    return step


def _del_step(inst, kernel):
    key = id(inst)
    src = id(inst.operands[0])
    did = id(inst.operands[1])

    def step(env, act):
        kernel.schedule_drive(
            ("del", act.order, key), env[key],
            probe_value(env[src], kernel), env[did])
    return step


def _reg_step(inst, kernel):
    key = id(inst)
    sig_id = id(inst.reg_signal())
    trigs = tuple(
        (t["mode"], id(t["value"]), id(t["trigger"]),
         id(t["cond"]) if t["cond"] is not None else None,
         id(t["delay"]) if t["delay"] is not None else None,
         t["trigger"].type.is_logic)
        for t in inst.reg_triggers())

    def step(env, act):
        prev_list = act.reg_state[key]
        fired = False
        for i, (mode, vid, tid, cid, did, lg) in enumerate(trigs):
            cur = env[tid]
            prev = prev_list[i]
            prev_list[i] = cur
            if fired:
                continue
            if lg:
                # Nine-valued trigger: rise/fall/high/low compare X01
                # integer levels (-1 for unknowns).  A rising edge needs
                # the previous level to be 0 — exactly the iN rule — or
                # unknown, so X -> 1 counts as rise (IEEE 1800, matching
                # procgen._edge_term); 'both' keeps exact value-change
                # detection.
                if mode == "rise":
                    hit = logic_level(cur) == 1 and \
                        logic_level(prev) in (0, -1)
                elif mode == "fall":
                    hit = logic_level(cur) == 0 and \
                        logic_level(prev) in (1, -1)
                elif mode == "both":
                    hit = prev != cur
                elif mode == "high":
                    hit = logic_level(cur) == 1
                else:
                    hit = logic_level(cur) == 0
            elif mode == "rise":
                hit = prev == 0 and cur == 1
            elif mode == "fall":
                hit = prev == 1 and cur == 0
            elif mode == "both":
                hit = prev != cur
            elif mode == "high":
                hit = cur == 1
            else:
                hit = cur == 0
            if not hit:
                continue
            if cid is not None and not env[cid]:
                continue
            kernel.schedule_drive(
                ("reg", act.order, key), env[sig_id], env[vid],
                env[did] if did is not None else _EPSILON)
            fired = True
    return step


# -- lane-mode step builders ---------------------------------------------------
#
# When a design is elaborated with K > 1 lanes in *vectorized* mode, every
# runtime value is lane-widened (see repro.sim.lanes) and one activation
# covers all K lanes.  Bitwise table ops stay inline (they are lane-exact
# on widened planes); everything else goes through evaluate_lanes, whose
# uniformity fast path keeps the per-activation cost near scalar for
# identical-stimulus batches.  Control points (branch conditions, signal
# projections by dynamic index) collapse through u1/uindex and raise
# LaneDivergence when lanes disagree — the batch driver then re-runs the
# design with per-lane replicated processes (which use the *scalar* plans).

def _pure_step_lanes(inst, lanes):
    op = inst.opcode
    key = id(inst)
    if op == "const":
        value = lane_widen(inst.attrs["value"], inst.type, lanes)

        def step(env, act):
            env[key] = value
        return step
    ops = inst.operands
    opids = tuple(id(o) for o in ops)
    if len(ops) == 2 and op in ("and", "or", "xor"):
        a, b = opids
        if ops[0].type.is_logic:
            if op == "and":
                def step(env, act):
                    env[key] = env[a].and_(env[b])
            elif op == "or":
                def step(env, act):
                    env[key] = env[a].or_(env[b])
            else:
                def step(env, act):
                    env[key] = env[a].xor(env[b])
            return step
        if ops[0].type.is_int:
            if op == "and":
                def step(env, act):
                    env[key] = env[a] & env[b]
            elif op == "or":
                def step(env, act):
                    env[key] = env[a] | env[b]
            else:
                def step(env, act):
                    env[key] = env[a] ^ env[b]
            return step
    if op == "not" and ops:
        a = opids[0]
        if ops[0].type.is_logic:
            def step(env, act):
                env[key] = env[a].not_()
            return step
        if inst.type.is_int:
            m = mask(inst.type.width * lanes)

            def step(env, act):
                env[key] = (~env[a]) & m
            return step
    if op not in EVALUATORS:
        raise SimulationError(f"plan: not a pure instruction: {op}")
    if len(opids) == 1:
        a = opids[0]

        def step(env, act):
            env[key] = evaluate_lanes(inst, (env[a],), lanes)
    elif len(opids) == 2:
        a, b = opids

        def step(env, act):
            env[key] = evaluate_lanes(inst, (env[a], env[b]), lanes)
    else:
        def step(env, act):
            env[key] = evaluate_lanes(
                inst, [env[i] for i in opids], lanes)
    return step


def _ext_step_lanes(inst, kernel, lanes):
    """Lane-mode extf/exts.

    Projections through signals and pointers build one reference, so a
    dynamic index must be lane-uniform; int/logic ``exts`` paths become
    per-lane ``lslice`` steps.  Extractions from plain *values* go
    through evaluate_lanes, which handles a lane-divergent dynamic index
    per lane (data divergence).
    """
    key = id(inst)
    base = inst.operands[0]
    bid = id(base)
    base_ty = base.type
    rty = inst.type
    if not base_ty.is_signal and not base_ty.is_pointer:
        return _pure_step_lanes(inst, lanes)
    if inst.opcode == "extf" and inst.attrs.get("index") is None:
        idx_ty = inst.operands[1].type
        iid = id(inst.operands[1])

        def dyn_index(value):
            if isinstance(value, LogicVec):
                return uindex(value, lanes)
            return uindex_int(value, idx_ty.width if idx_ty.is_int
                              else 1, lanes)
        if base_ty.is_signal:
            def step(env, act):
                b = env[bid]
                if type(b) is SignalInstance:
                    b = SignalRef(b, (), b.type)
                env[key] = b.project(("field", dyn_index(env[iid])), rty)
        else:
            def step(env, act):
                env[key] = _as_cellref(env[bid]).project(
                    ("field", dyn_index(env[iid])))
        return step
    if inst.opcode == "extf":
        path_step = ("field", inst.attrs["index"])
    else:
        path_step = path_of_lanes(inst, lanes)
    if base_ty.is_signal:
        def step(env, act):
            b = env[bid]
            if type(b) is SignalInstance:
                b = SignalRef(b, (), b.type)
            env[key] = b.project(path_step, rty)
    else:
        def step(env, act):
            env[key] = _as_cellref(env[bid]).project(path_step)
    return step


def _drv_step_lanes(inst, kernel, lanes, entity):
    """Lane-mode drive.

    Unconditional drives stay whole-width (one transaction covers all
    lanes).  A *process* conditional drive collapses its condition with
    u1 — lane-divergent process control re-runs replicated.  An *entity*
    conditional drive is data flow (the mux-like enable may legitimately
    diverge), so set lanes drive their lane projection under per-lane
    driver keys.
    """
    sid = id(inst.drv_signal())
    vid = id(inst.drv_value())
    did = id(inst.drv_delay())
    cond = inst.drv_condition()
    if cond is None:
        def step(env, act):
            kernel.schedule_drive(act.order, env[sid], env[vid], env[did])
        return step
    cid = id(cond)
    if not entity:
        def step(env, act):
            if u1(env[cid], lanes):
                kernel.schedule_drive(
                    act.order, env[sid], env[vid], env[did])
        return step
    inst_key = id(inst)
    vty = inst.drv_value().type

    def step(env, act):
        drive_cond_lanes(
            kernel, act.order, inst_key, env[sid], vty, env[vid],
            env[did], env[cid], lanes)
    return step


def _call_step_lanes(inst, kernel, lanes):
    key = id(inst)
    callee = inst.callee
    opids = tuple(id(o) for o in inst.operands)
    types = tuple(o.type for o in inst.operands)
    void = inst.type.is_void

    def step(env, act):
        result = act.functions.call(
            callee, [env[i] for i in opids], where=f"in {act.path}",
            types=types)
        if not void:
            env[key] = result
    return step


def _reg_step_lanes(inst, kernel, lanes, replicate):
    """Lane-vectorized ``reg``: per-trigger lane fire masks.

    Each trigger contributes an edge-detection lane mask (O(1) plane
    arithmetic for the ubiquitous ``l1`` clock); lanes pick their first
    matching trigger, scalar-style.  In vectorized mode the mask must be
    all-or-nothing (a partial mask is control divergence: the whole-width
    drive could not represent per-lane timelines) and fires one
    whole-width transaction; in replicated mode — where stimulus phases
    legitimately differ per lane — each firing lane drives its lane
    projection under a per-lane driver key, so per-lane transport
    timelines stay independent exactly like the scalar runs they mirror.
    """
    key = id(inst)
    sig_id = id(inst.reg_signal())
    vty = inst.reg_signal().type.element
    full = lane_ones(1, lanes)
    trigs = tuple(
        (t["mode"], id(t["value"]), id(t["trigger"]),
         id(t["cond"]) if t["cond"] is not None else None,
         id(t["delay"]) if t["delay"] is not None else None,
         t["trigger"].type)
        for t in inst.reg_triggers())

    def step(env, act):
        prev_list = act.reg_state[key]
        fired = 0
        for i, (mode, vid, tid, cid, did, tty) in enumerate(trigs):
            cur = env[tid]
            prev = prev_list[i]
            prev_list[i] = cur
            if fired == full:
                continue
            hit = lane_edge_mask(mode, prev, cur, tty, lanes)
            if cid is not None:
                hit &= env[cid]
            hit &= ~fired & full
            if not hit:
                continue
            fired |= hit
            delay = env[did] if did is not None else _EPSILON
            if not replicate:
                if hit != full:
                    raise LaneDivergence(
                        "reg trigger fires on a strict subset of lanes")
                kernel.schedule_drive(
                    ("reg", act.order, key), env[sig_id], env[vid], delay)
                continue
            target = env[sig_id]
            if type(target) is not SignalRef:
                target = SignalRef(target, (), target.type)
            value = env[vid]
            m = hit
            while m:
                low = m & -m
                k = low.bit_length() - 1
                m ^= low
                ref = SignalRef(
                    target.signal,
                    target.path + lane_path(vty, k, lanes), vty)
                kernel.schedule_drive(
                    ("reg", act.order, key, k), ref,
                    lane_extract(value, vty, k, lanes), delay)
    return step


_STEP_BUILDERS = {
    "prb": _prb_step,
    "drv": _drv_step,
    "sig": _sig_step,
    "var": _cell_step,
    "alloc": _cell_step,
    "ld": _ld_step,
    "st": _st_step,
    "call": _call_step,
    "extf": _ext_step,
    "exts": _ext_step,
}


def _step_for(inst, allowed, where, kernel, lanes=1, entity=False):
    op = inst.opcode
    if op == "free":
        return None
    builder = _STEP_BUILDERS.get(op)
    if builder is not None:
        if op not in allowed:
            raise SimulationError(f"{where}: '{op}' not allowed here")
        if lanes > 1:
            if op in ("extf", "exts"):
                return _ext_step_lanes(inst, kernel, lanes)
            if op == "drv":
                return _drv_step_lanes(inst, kernel, lanes, entity)
            if op == "call":
                return _call_step_lanes(inst, kernel, lanes)
        return builder(inst, kernel)
    if op in EVALUATORS:
        if lanes > 1:
            return _pure_step_lanes(inst, lanes)
        return _pure_step(inst)
    raise SimulationError(f"{where}: '{op}' not allowed here")


# -- terminators ---------------------------------------------------------------

def _edge_copies(pred, succ):
    """Phi parallel copies for the CFG edge pred -> succ."""
    phis = succ.phis()
    if not phis:
        return ()
    return tuple((id(p), id(p.phi_value_for(pred))) for p in phis)


def _apply_copies(env, copies):
    values = [env[s] for _, s in copies]
    for (d, _), v in zip(copies, values):
        env[d] = v


def _term_br(inst, block, plans, kernel, lanes=1):
    if inst.is_conditional_branch:
        cid = id(inst.operands[0])
        f_dest, t_dest = inst.operands[1], inst.operands[2]
        t_plan, f_plan = plans[id(t_dest)], plans[id(f_dest)]
        t_copies = _edge_copies(block, t_dest)
        f_copies = _edge_copies(block, f_dest)
        if lanes > 1:
            # Control point: all lanes must take the same edge.
            def term(env, act):
                if u1(env[cid], lanes):
                    if t_copies:
                        _apply_copies(env, t_copies)
                    return t_plan
                if f_copies:
                    _apply_copies(env, f_copies)
                return f_plan
            return term
        if not t_copies and not f_copies:
            def term(env, act):
                return t_plan if env[cid] else f_plan
            return term

        def term(env, act):
            if env[cid]:
                if t_copies:
                    _apply_copies(env, t_copies)
                return t_plan
            if f_copies:
                _apply_copies(env, f_copies)
            return f_plan
        return term
    dest = inst.operands[0]
    plan = plans[id(dest)]
    copies = _edge_copies(block, dest)
    if not copies:
        def term(env, act):
            return plan
        return term

    def term(env, act):
        _apply_copies(env, copies)
        return plan
    return term


def _term_wait(inst, block, plans, kernel, lanes=1):
    dest = inst.wait_dest()
    dest_plan = plans[id(dest)]
    copies = _edge_copies(block, dest)
    time_op = inst.wait_time()
    tid = id(time_op) if time_op is not None else None
    sig_ids = tuple(id(s) for s in inst.wait_signals())

    def term(env, act):
        if copies:
            _apply_copies(env, copies)
        act._bp = dest_plan
        act.status = "waiting"
        order = act.order
        subscribed = act.subscribed
        for i in sig_ids:
            sig = env[i]
            if type(sig) is SignalRef:
                sig = sig.signal
            if sig._rep is not None:
                sig = sig.find()
            sig.proc_waiters[order] = act
            subscribed.append(sig)
        if tid is not None:
            kernel.schedule_resume(
                _Timeout(act, act.wait_token), env[tid])
        return None
    return term


def _term_halt(inst, block, plans, kernel, lanes=1):
    def term(env, act):
        act.status = "halted"
        return None
    return term


def _term_ret(inst, block, plans, kernel, lanes=1):
    if inst.operands:
        vid = id(inst.operands[0])

        def term(env, act):
            act.result = env[vid]
            return None
    else:
        def term(env, act):
            act.result = None
            return None
    return term


_TERM_BUILDERS = {"br": _term_br, "wait": _term_wait, "halt": _term_halt}


# -- plan construction ---------------------------------------------------------

_PROC_OPS = frozenset({
    "prb", "drv", "sig", "var", "alloc", "ld", "st", "call", "extf", "exts",
})
_ENTITY_OPS = frozenset({"prb", "drv", "call", "extf", "exts"})
_FUNC_OPS = frozenset({"var", "alloc", "ld", "st", "call", "extf", "exts"})


def _build_cfg_plan(unit, allowed, terms, kind, kernel, lanes=1):
    where = f"@{unit.name}"
    plans = {id(b): BlockPlan() for b in unit.blocks}
    for block in unit.blocks:
        plan = plans[id(block)]
        instructions = block.instructions
        if not instructions or not instructions[-1].is_terminator:
            raise SimulationError(f"{where}: block without terminator")
        phis = block.phis()
        steps = []
        for inst in instructions[len(phis):-1]:
            step = _step_for(inst, allowed, where, kernel, lanes)
            if step is not None:
                steps.append(step)
        plan.steps = tuple(steps)
        term_inst = instructions[-1]
        builder = terms.get(term_inst.opcode)
        if builder is None:
            raise SimulationError(
                f"{where}: '{term_inst.opcode}' not allowed in {kind}")
        plan.term = builder(term_inst, block, plans, kernel, lanes)
    return plans[id(unit.entry)]


def build_process_plan(unit, kernel, lanes=1):
    """Predecode a process unit; returns the entry :class:`BlockPlan`.

    One plan serves every instance of the unit: steps key the environment
    by instruction identity, which is shared across instances.  With
    ``lanes`` > 1 the plan executes all K batch lanes per activation
    (lane-vectorized mode — see :mod:`repro.sim.lanes`).
    """
    return _build_cfg_plan(unit, _PROC_OPS, _TERM_BUILDERS, "a process",
                           kernel, lanes)


def build_function_plan(unit, kernel, lanes=1):
    """Predecode a function body; returns the entry :class:`BlockPlan`.

    Functions run to a ``ret``: the frame object passed as the activity
    receives the return value in its ``result`` attribute.
    """
    return _build_cfg_plan(
        unit, _FUNC_OPS, {"br": _term_br, "ret": _term_ret}, "a function",
        kernel, lanes)


def build_entity_plan(unit, kernel, lanes=1, replicate=False):
    """Predecode an entity body's re-activation steps.

    Elaboration-only instructions (``sig``, ``inst``, ``con``) are
    skipped; ``del`` re-drives, ``reg`` detects trigger edges, everything
    else re-evaluates dataflow.  Entities stay lane-vectorized in *both*
    batch modes; ``replicate`` only switches ``reg`` to per-lane driver
    keys (divergent stimulus phases need per-lane drive timelines).
    """
    where = f"@{unit.name}"
    steps = []
    for inst in unit.body:
        op = inst.opcode
        if op in ("sig", "inst", "con"):
            continue
        if op == "del":
            steps.append(_del_step(inst, kernel))
        elif op == "reg":
            if lanes > 1:
                steps.append(_reg_step_lanes(inst, kernel, lanes,
                                             replicate))
            else:
                steps.append(_reg_step(inst, kernel))
        else:
            step = _step_for(inst, _ENTITY_OPS, where, kernel, lanes,
                             entity=True)
            if step is not None:
                steps.append(step)
    return tuple(steps)
