"""Runtime value representation shared by all simulators.

Mapping from LLHD types to Python runtime values:

=========  ==========================================
``iN``     ``int`` (unsigned, masked to N bits)
``nN``     ``int`` (0 .. N-1)
``lN``     :class:`repro.ir.LogicVec`
``time``   :class:`repro.ir.TimeValue`
array      ``tuple`` of element values, or a
           :class:`PackedLogicArray` when the element
           type is ``lN``
struct     ``tuple`` of field values
=========  ==========================================

All values are immutable, so aggregates can be compared and traced without
defensive copies.  Sub-signal projections (``extf``/``exts`` through ``$``)
are realized as *paths*: sequences of ``("field", i)`` / ``("slice", off,
len, kind)`` steps that this module can read from and write into whole
values.

Arrays of ``lN`` are *plane-packed*: :class:`PackedLogicArray` stores all
elements in one :class:`LogicVec`, so a sub-signal drive into one element
is a single O(1) ``splice`` instead of a Python tuple rebuild, and whole-
value equality (the hot test in transaction maturation and tracing) is a
plane comparison.  The class implements the tuple protocol (indexing,
slicing, concatenation, equality against plain tuples), so existing
consumers need no changes.

Batch simulation adds two lane-aware steps (see :mod:`repro.sim.lanes`
for the layout): ``("lane", k, K, ty)`` projects one stimulus lane out of
a lane-widened value, and ``("lslice", off, len, kind, K, parent_width)``
reads/writes a scalar bit-slice across *all* lanes of a lane-widened
int/logic value.
"""

from __future__ import annotations

from ..ir.ninevalued import (
    LogicVec, lane_broadcast, lane_ones, lane_slice, lane_splice,
    lane_uniform,
)
from ..ir.types import bit_width
from ..ir.values import TimeValue


class SimulationError(Exception):
    """Raised for runtime errors during simulation (e.g. division by zero)."""


class PackedLogicArray:
    """An immutable array of same-width ``lN`` values, plane-packed.

    Element ``i`` occupies bits ``[i*W, (i+1)*W)`` of a single backing
    :class:`LogicVec` (element 0 at the LSB end, matching the LSB-based
    offsets of array slice paths).  Behaves like a tuple of
    :class:`LogicVec` for indexing, slicing, iteration, concatenation,
    and equality — including equality against actual tuples — while
    element insertion and whole-array comparison are O(1) plane ops.
    """

    __slots__ = ("_data", "_length", "_width")

    def __init__(self, data, length, width):
        self._data = data      # one LogicVec of length*width bits
        self._length = length
        self._width = width

    @classmethod
    def from_elements(cls, elements):
        """Pack a sequence of equal-width ``LogicVec`` elements."""
        elements = tuple(elements)
        if not elements:
            return ()
        width = elements[0]._width
        val = unk = weak = aux = 0
        for i, e in enumerate(elements):
            sh = i * width
            val |= e._val << sh
            unk |= e._unk << sh
            weak |= e._weak << sh
            aux |= e._aux << sh
        data = LogicVec._make(len(elements) * width, val, unk, weak, aux)
        return cls(data, len(elements), width)

    @property
    def data(self):
        """The backing :class:`LogicVec` (all elements, planes packed)."""
        return self._data

    @property
    def elem_width(self):
        return self._width

    def __len__(self):
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                return tuple(self[i] for i in range(start, stop, step))
            n = max(0, stop - start)
            if n == 0:
                return ()
            return PackedLogicArray(
                self._data.slice_(start * self._width, n * self._width),
                n, self._width)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._data.slice_(index * self._width, self._width)

    def __iter__(self):
        for i in range(self._length):
            yield self[i]

    def with_item(self, index, value):
        """A copy with element ``index`` replaced — one plane splice."""
        return PackedLogicArray(
            self._data.splice(index * self._width, value),
            self._length, self._width)

    def with_slice(self, offset, values):
        """A copy with ``values`` written at element ``offset``."""
        out = self._data
        if isinstance(values, PackedLogicArray):
            return PackedLogicArray(
                out.splice(offset * self._width, values._data),
                self._length, self._width)
        for i, v in enumerate(values):
            out = out.splice((offset + i) * self._width, v)
        return PackedLogicArray(out, self._length, self._width)

    def __add__(self, other):
        if isinstance(other, PackedLogicArray):
            if self._length == 0:
                return other
            # other holds the *higher-index* elements.
            return PackedLogicArray(
                other._data.concat(self._data),
                self._length + other._length, self._width)
        other = tuple(other)
        if not other:
            return self
        if all(type(v) is LogicVec and v._width == self._width
               for v in other):
            packed = PackedLogicArray.from_elements(other)
            return self.__add__(packed)
        return tuple(self) + other

    def __radd__(self, other):
        other = tuple(other)
        if not other:
            return self
        if all(type(v) is LogicVec and v._width == self._width
               for v in other):
            return PackedLogicArray.from_elements(other).__add__(self)
        return other + tuple(self)

    def __eq__(self, other):
        if isinstance(other, PackedLogicArray):
            return (self._length == other._length
                    and self._width == other._width
                    and self._data == other._data)
        if isinstance(other, tuple):
            return self._length == len(other) and \
                all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self):
        # Must agree with the equal tuple of elements.
        return hash(tuple(self))

    def __repr__(self):
        return f"PackedLogicArray({list(self)!r})"


def pack_array(elements):
    """Pack a tuple of values into a :class:`PackedLogicArray` if possible.

    Used by the ``array`` evaluators/codegen: arrays of ``lN`` pack,
    everything else stays a plain tuple.
    """
    elements = tuple(elements)
    if elements and all(type(v) is LogicVec for v in elements):
        w = elements[0]._width
        if all(v._width == w for v in elements):
            return PackedLogicArray.from_elements(elements)
    return elements


def default_value(ty):
    """The initial value of a type: zeros for iN/nN, all-``U`` for lN."""
    if ty.is_int or ty.is_enum:
        return 0
    if ty.is_logic:
        return LogicVec.filled("U", ty.width)
    if ty.is_time:
        return TimeValue(0)
    if ty.is_array:
        if ty.element.is_logic and ty.length:
            return PackedLogicArray.from_elements(
                [LogicVec.filled("U", ty.element.width)] * ty.length)
        return tuple(default_value(ty.element) for _ in range(ty.length))
    if ty.is_struct:
        return tuple(default_value(f) for f in ty.fields)
    if ty.is_signal:
        return default_value(ty.element)
    raise SimulationError(f"no default value for type {ty}")


def mask(width):
    return (1 << width) - 1


def to_signed(value, width):
    """Reinterpret an unsigned N-bit value as two's-complement."""
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def from_signed(value, width):
    """Truncate a Python int into an unsigned N-bit representation."""
    return value & mask(width)


# -- lane layout primitives ---------------------------------------------------
#
# Batch simulation widens every value across K stimulus lanes; see
# module docstring and repro.sim.lanes.  These functions define the
# packed layout per type; lanes==1 is always the identity.

def lane_stride(ty):
    """The per-lane bit stride of a packed-int type (iN or nN)."""
    if ty.is_int:
        return ty.width
    return bit_width(ty)


def lane_widen(value, ty, lanes):
    """Replicate a scalar runtime value into all K lanes."""
    if lanes == 1:
        return value
    if ty.is_logic:
        return lane_broadcast(value, lanes)
    if ty.is_int or ty.is_enum:
        return value * lane_ones(lane_stride(ty), lanes)
    if ty.is_array:
        elems = tuple(lane_widen(v, ty.element, lanes) for v in value)
        if ty.element.is_logic:
            return PackedLogicArray.from_elements(elems)
        return elems
    if ty.is_struct:
        return tuple(lane_widen(v, f, lanes)
                     for v, f in zip(value, ty.fields))
    if ty.is_time:
        return value
    raise SimulationError(f"cannot lane-broadcast a value of type {ty}")


def lane_extract(value, ty, lane, lanes):
    """Extract lane ``lane``'s scalar value from a lane-widened value."""
    if lanes == 1:
        return value
    if ty.is_logic:
        return lane_slice(value, lane, ty.width)
    if ty.is_int or ty.is_enum:
        w = lane_stride(ty)
        return (value >> (lane * w)) & mask(w)
    if ty.is_array:
        elems = tuple(lane_extract(v, ty.element, lane, lanes)
                      for v in value)
        if ty.element.is_logic:
            return PackedLogicArray.from_elements(elems)
        return elems
    if ty.is_struct:
        return tuple(lane_extract(v, f, lane, lanes)
                     for v, f in zip(value, ty.fields))
    if ty.is_time:
        return value
    raise SimulationError(f"cannot lane-extract a value of type {ty}")


def lane_insert(value, ty, lane, lanes, scalar):
    """A copy of a lane-widened value with lane ``lane`` set to ``scalar``."""
    if lanes == 1:
        return scalar
    if ty.is_logic:
        return lane_splice(value, lane, scalar)
    if ty.is_int or ty.is_enum:
        w = lane_stride(ty)
        return (value & ~(mask(w) << (lane * w))) | \
            ((scalar & mask(w)) << (lane * w))
    if ty.is_array:
        elems = tuple(
            lane_insert(v, ty.element, lane, lanes, s)
            for v, s in zip(value, scalar))
        if ty.element.is_logic:
            return PackedLogicArray.from_elements(elems)
        return elems
    if ty.is_struct:
        return tuple(lane_insert(v, f, lane, lanes, s)
                     for v, f, s in zip(value, ty.fields, scalar))
    if ty.is_time:
        return scalar
    raise SimulationError(f"cannot lane-insert a value of type {ty}")


def _lslice_read(value, offset, length, kind, lanes, pw):
    """Read a scalar bit-slice across all lanes of a lane-widened value."""
    if kind == "logic":
        if lane_uniform(value, pw, lanes):
            return lane_broadcast(
                value.slice_(offset, length), lanes)
        val = unk = weak = aux = 0
        m = mask(length)
        for k in range(lanes):
            base = k * pw + offset
            sh = k * length
            val |= ((value._val >> base) & m) << sh
            unk |= ((value._unk >> base) & m) << sh
            weak |= ((value._weak >> base) & m) << sh
            aux |= ((value._aux >> base) & m) << sh
        return LogicVec._make(length * lanes, val, unk, weak, aux)
    # int
    m = mask(length)
    lane0 = value & mask(pw)
    if value == lane0 * lane_ones(pw, lanes):
        return ((lane0 >> offset) & m) * lane_ones(length, lanes)
    out = 0
    for k in range(lanes):
        out |= ((value >> (k * pw + offset)) & m) << (k * length)
    return out


def _lslice_write(value, offset, length, kind, lanes, pw, new):
    """Write a lane-widened slice value into all lanes of the parent."""
    if kind == "logic":
        if lane_uniform(value, pw, lanes) and \
                lane_uniform(new, length, lanes):
            scalar = value.slice_(0, pw).splice(
                offset, new.slice_(0, length))
            return lane_broadcast(scalar, lanes)
        out = value
        for k in range(lanes):
            out = out.splice(k * pw + offset,
                             new.slice_(k * length, length))
        return out
    m = mask(length)
    out = value
    for k in range(lanes):
        base = k * pw + offset
        out = (out & ~(m << base)) | (((new >> (k * length)) & m) << base)
    return out


def extract_path(value, path):
    """Read the sub-value denoted by a projection path."""
    for step in path:
        tag = step[0]
        if tag == "field":
            index = step[1]
            if not 0 <= index < len(value):
                raise SimulationError(
                    f"index {index} out of range for aggregate of "
                    f"{len(value)} elements")
            value = value[index]
        elif tag == "slice":
            _, offset, length, kind = step
            if kind == "int":
                value = (value >> offset) & mask(length)
            elif kind == "logic":
                # O(1) plane extraction; offset counts from the LSB.
                value = value.slice_(offset, length)
            else:  # array slice
                value = value[offset:offset + length]
        elif tag == "lane":
            value = lane_extract(value, step[3], step[1], step[2])
        else:  # ("lslice", offset, length, kind, lanes, parent_width)
            _, offset, length, kind, lanes, pw = step
            value = _lslice_read(value, offset, length, kind, lanes, pw)
    return value


def insert_path(value, path, new):
    """Write ``new`` into ``value`` at the projection path; returns a copy."""
    if not path:
        return new
    step, rest = path[0], path[1:]
    tag = step[0]
    if tag == "field":
        index = step[1]
        if not 0 <= index < len(value):
            raise SimulationError(
                f"index {index} out of range for aggregate of "
                f"{len(value)} elements")
        inner = insert_path(value[index], rest, new)
        if type(value) is PackedLogicArray:
            return value.with_item(index, inner)
        return value[:index] + (inner,) + value[index + 1:]
    if tag == "slice":
        _, offset, length, kind = step
        if kind == "int":
            inner = insert_path(extract_path(value, (step,)), rest, new)
            cleared = value & ~(mask(length) << offset)
            return cleared | ((inner & mask(length)) << offset)
        if kind == "logic":
            inner = insert_path(extract_path(value, (step,)), rest, new)
            return value.splice(offset, inner)
        inner = insert_path(value[offset:offset + length], rest, new)
        if type(value) is PackedLogicArray:
            return value.with_slice(offset, inner)
        return value[:offset] + tuple(inner) + value[offset + length:]
    if tag == "lane":
        _, lane, lanes, ty = step
        inner = insert_path(
            lane_extract(value, ty, lane, lanes), rest, new)
        return lane_insert(value, ty, lane, lanes, inner)
    # ("lslice", offset, length, kind, lanes, parent_width)
    _, offset, length, kind, lanes, pw = step
    inner = insert_path(extract_path(value, (step,)), rest, new)
    return _lslice_write(value, offset, length, kind, lanes, pw, inner)


def format_value(value):
    """Human-readable form for traces: aggregates bracketed, ints decimal."""
    if isinstance(value, (tuple, PackedLogicArray)):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    return str(value)
