"""Runtime value representation shared by all simulators.

Mapping from LLHD types to Python runtime values:

=========  ==========================================
``iN``     ``int`` (unsigned, masked to N bits)
``nN``     ``int`` (0 .. N-1)
``lN``     :class:`repro.ir.LogicVec`
``time``   :class:`repro.ir.TimeValue`
array      ``tuple`` of element values
struct     ``tuple`` of field values
=========  ==========================================

All values are immutable, so aggregates can be compared and traced without
defensive copies.  Sub-signal projections (``extf``/``exts`` through ``$``)
are realized as *paths*: sequences of ``("field", i)`` / ``("slice", off,
len)`` steps that this module can read from and write into whole values.
"""

from __future__ import annotations

from ..ir.ninevalued import LogicVec
from ..ir.values import TimeValue


class SimulationError(Exception):
    """Raised for runtime errors during simulation (e.g. division by zero)."""


def default_value(ty):
    """The initial value of a type: zeros for iN/nN, all-``U`` for lN."""
    if ty.is_int or ty.is_enum:
        return 0
    if ty.is_logic:
        return LogicVec.filled("U", ty.width)
    if ty.is_time:
        return TimeValue(0)
    if ty.is_array:
        return tuple(default_value(ty.element) for _ in range(ty.length))
    if ty.is_struct:
        return tuple(default_value(f) for f in ty.fields)
    if ty.is_signal:
        return default_value(ty.element)
    raise SimulationError(f"no default value for type {ty}")


def mask(width):
    return (1 << width) - 1


def to_signed(value, width):
    """Reinterpret an unsigned N-bit value as two's-complement."""
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def from_signed(value, width):
    """Truncate a Python int into an unsigned N-bit representation."""
    return value & mask(width)


def extract_path(value, path):
    """Read the sub-value denoted by a projection path."""
    for step in path:
        if step[0] == "field":
            index = step[1]
            if not 0 <= index < len(value):
                raise SimulationError(
                    f"index {index} out of range for aggregate of "
                    f"{len(value)} elements")
            value = value[index]
        else:  # ("slice", offset, length, kind)
            _, offset, length, kind = step
            if kind == "int":
                value = (value >> offset) & mask(length)
            elif kind == "logic":
                # O(1) plane extraction; offset counts from the LSB.
                value = value.slice_(offset, length)
            else:  # array slice
                value = value[offset:offset + length]
    return value


def insert_path(value, path, new):
    """Write ``new`` into ``value`` at the projection path; returns a copy."""
    if not path:
        return new
    step, rest = path[0], path[1:]
    if step[0] == "field":
        index = step[1]
        if not 0 <= index < len(value):
            raise SimulationError(
                f"index {index} out of range for aggregate of "
                f"{len(value)} elements")
        inner = insert_path(value[index], rest, new)
        return value[:index] + (inner,) + value[index + 1:]
    _, offset, length, kind = step
    if kind == "int":
        inner = insert_path(extract_path(value, (step,)), rest, new)
        cleared = value & ~(mask(length) << offset)
        return cleared | ((inner & mask(length)) << offset)
    if kind == "logic":
        inner = insert_path(extract_path(value, (step,)), rest, new)
        return value.splice(offset, inner)
    inner = insert_path(value[offset:offset + length], rest, new)
    return value[:offset] + tuple(inner) + value[offset + length:]


def format_value(value):
    """Human-readable form for traces: aggregates bracketed, ints decimal."""
    if isinstance(value, tuple):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    return str(value)
