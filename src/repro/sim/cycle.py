"""An independently implemented compiled-code simulator.

This is the repository's stand-in for the *commercial simulator* column of
the paper's Table 2 (see DESIGN.md, substitution 1).  Commercial
simulators are compiled-code simulators with statically prepared
scheduling; this module follows that architecture:

* unit bodies are compiled to Python code (sharing the code generator with
  :mod:`repro.sim.blaze` — the per-unit code is not where simulators
  disagree);
* the *scheduler* — calendar queue, delta rounds, transaction maturation,
  sensitivity dispatch, net resolution — is a from-scratch second
  implementation, structured as a per-femtosecond calendar of two-phase
  (update, evaluate) rounds instead of the single global heap of
  :mod:`repro.sim.engine`.

The signal net class (:class:`~repro.sim.engine.SignalInstance`) and the
per-driver sorted timeline container are shared with the event-driven
kernel — nets are elaboration artifacts, not scheduler policy — while the
calendar, round ordering, and maturation loop remain independent.

Cross-checking its traces against LLHD-Sim and Blaze reproduces the
paper's "traces match between the simulators" claim with an independent
implementation in the loop.
"""

from __future__ import annotations

import heapq

from ..ir.ninevalued import LogicVec
from ..ir.units import UnitDecl
from .engine import (
    DriverTimeline, Kernel, SignalInstance, SignalRef,
    _combine_contributions,
)
from .values import (
    SimulationError, default_value, extract_path, insert_path,
)


def _advance(now, delay):
    """Same visible semantics as engine.advance_time (zero -> next delta)."""
    if delay.fs > 0:
        return (now[0] + delay.fs, delay.delta, delay.epsilon)
    if delay.delta > 0:
        return (now[0], now[1] + delay.delta, delay.epsilon)
    if delay.epsilon > 0:
        return (now[0], now[1], now[2] + delay.epsilon)
    return (now[0], now[1] + 1, 0)


class _Round:
    """One (delta, epsilon) round inside a femtosecond instant."""

    __slots__ = ("signals", "resumes")

    def __init__(self):
        self.signals = {}   # id(signal) -> signal with matured work
        self.resumes = []


class _Instant:
    """All rounds scheduled for one femtosecond."""

    __slots__ = ("rounds", "keys", "queued")

    def __init__(self):
        self.rounds = {}
        self.keys = []
        self.queued = set()

    def round_at(self, key):
        rnd = self.rounds.get(key)
        if rnd is None:
            rnd = self.rounds[key] = _Round()
            heapq.heappush(self.keys, key)
        return rnd


class CycleKernel:
    """Calendar-queue scheduler with two-phase delta rounds.

    Exposes the same interface as :class:`repro.sim.engine.Kernel` so
    elaboration and compiled units plug in unchanged.
    """

    MAX_DELTAS = 10_000

    def __init__(self, trace=None, max_time_fs=None):
        self.now = (0, 0, 0)
        self.trace = trace
        self.max_time_fs = max_time_fs
        self.signals = []
        self.calendar = {}
        self._fs_heap = []
        self._initials = []
        self.assertion_failures = []
        self.output = []
        self.finished = False
        self.stats = {"deltas": 0, "events": 0, "activations": 0}
        # Sanitizer + driver labels — same protocol as engine.Kernel.
        self.sanitizer = None
        self.driver_labels = {}
        # Batch (lane) attribution — same protocol as engine.Kernel.
        self.lanes = 1
        self.current_lane = None
        self.finished_lanes = set()
        self.lane_finish_fs = {}
        self.lane_finish_state = {}

    # -- construction (same surface as engine.Kernel) ------------------------

    def create_signal(self, name, type, initial):
        sig = SignalInstance(name, type, initial, len(self.signals))
        self.signals.append(sig)
        if self.trace is not None:
            self.trace.record((0, 0, 0), sig, initial)
        return sig

    def describe_driver(self, key):
        """A readable identity for a driver key, for conflict reports."""
        kind = ""
        order = key
        if isinstance(key, tuple):
            kind = f"{key[0]} of "
            order = key[1]
        label = self.driver_labels.get(order)
        if label is None:
            return f"{kind}driver #{order}"
        return f"{kind}{label}"

    def _instant(self, fs):
        instant = self.calendar.get(fs)
        if instant is None:
            instant = self.calendar[fs] = _Instant()
            heapq.heappush(self._fs_heap, fs)
        return instant

    # -- scheduling ------------------------------------------------------------

    def schedule_drive(self, driver_key, target, value, delay):
        if isinstance(target, SignalRef):
            signal, path = target.signal.find(), target.path
        else:
            signal, path = target.find(), ()
        when = _advance(self.now, delay)
        timeline = signal.pending.get(driver_key)
        if timeline is None:
            timeline = signal.pending[driver_key] = DriverTimeline()
        timeline.schedule(when, path, value)
        rnd = self._instant(when[0]).round_at((when[1], when[2]))
        rnd.signals[signal.index] = signal

    def schedule_resume(self, activity, delay):
        when = _advance(self.now, delay)
        rnd = self._instant(when[0]).round_at((when[1], when[2]))
        rnd.resumes.append(activity)
        return when

    def schedule_initial(self, activity):
        self._initials.append(activity)

    def add_process_waiter(self, signal, activity):
        signal.find().proc_waiters[activity.order] = activity

    def remove_process_waiter(self, signal, activity):
        signal.find().proc_waiters.pop(activity.order, None)

    def add_entity_waiter(self, signal, activity):
        sig = signal.find()
        sig.entity_waiters[activity.order] = activity
        sig._entity_list = None

    # -- probing & intrinsics ------------------------------------------------------

    def probe(self, target):
        if isinstance(target, SignalRef):
            return extract_path(target.signal.find().value, target.path)
        return target.find().value

    def intrinsic(self, name, args, where=""):
        if name in ("llhd.assert", "llhd.assert.msg"):
            cond = args[0]
            if isinstance(cond, LogicVec):
                cond = int(cond.is_two_valued and cond.to_int() != 0)
            if not cond:
                message = args[1] if len(args) > 1 else ""
                text = f"assertion failed at {self.now[0]}fs {where} " \
                    f"{message}".strip()
                if self.lanes > 1:
                    self.assertion_failures.append((self.current_lane, text))
                else:
                    self.assertion_failures.append(text)
            return None
        if name == "llhd.print":
            from .values import format_value

            text = " ".join(format_value(a) for a in args)
            if self.lanes > 1:
                self.output.append((self.current_lane, text))
            else:
                self.output.append(text)
            return None
        if name == "llhd.finish":
            self.finish_lane()
            return None
        raise SimulationError(f"unknown intrinsic @{name}")

    _lane_finish_snapshot = Kernel._lane_finish_snapshot
    finish_lane = Kernel.finish_lane

    # -- main loop ---------------------------------------------------------------

    def run(self, until_fs=None):
        limit = until_fs if until_fs is not None else self.max_time_fs
        if self._initials:
            rnd = self._instant(0).round_at((0, 0))
            rnd.resumes[:0] = self._initials
            self._initials = []
        while self._fs_heap and not self.finished:
            fs = heapq.heappop(self._fs_heap)
            if limit is not None and fs > limit:
                heapq.heappush(self._fs_heap, fs)
                break
            # Keep the instant registered while it runs: work scheduled
            # for the *same* femtosecond during execution must extend the
            # running instant (or the delta-limit accounting would reset).
            instant = self.calendar[fs]
            self._run_instant(fs, instant)
            if not instant.keys:
                del self.calendar[fs]
        self.now = (self.now[0], 0, 0)

    def _run_instant(self, fs, instant):
        rounds = 0
        while instant.keys and not self.finished:
            key = heapq.heappop(instant.keys)
            rnd = instant.rounds.pop(key)
            rounds += 1
            if rounds > self.MAX_DELTAS:
                if self.sanitizer is not None:
                    hot = [s.find().name
                           for s in rnd.signals.values()]
                    for other in instant.rounds.values():
                        hot.extend(s.find().name
                                   for s in other.signals.values())
                    self.sanitizer.record_oscillation(self, fs, hot)
                    break
                raise SimulationError(
                    f"delta cycle limit exceeded at t={fs}fs "
                    f"(combinational loop?)")
            self.now = (fs, key[0], key[1])
            self.stats["deltas"] += 1
            # Phase 1: mature transactions, collect changed nets.
            runnable = {}
            for signal in rnd.signals.values():
                self.stats["events"] += 1
                if self._mature(signal.find(), self.now):
                    net = signal.find()
                    runnable.update(net.proc_waiters)
                    net.proc_waiters.clear()
                    for order, activity in net.entity_list():
                        runnable[order] = activity
            for activity in rnd.resumes:
                runnable[activity.order] = activity
            # Phase 2: evaluate in deterministic instance order.
            self.stats["activations"] += len(runnable)
            for order in sorted(runnable):
                runnable[order].run(self)

    def _mature(self, sig, now):
        old = sig.value
        due_all = []
        for key, timeline in sig.pending.items():
            entry = timeline.mature(now)
            if entry is not None:
                due_all.append((entry[0], entry[1], key))
        if not due_all:
            return False
        if len(due_all) == 1:
            path, value, _key = due_all[0]
            new = insert_path(old, path, value) if path else value
        else:
            new = _combine_contributions(old, due_all, sig, self)
        if new == old:
            return False
        sig.value = new
        if self.trace is not None:
            self.trace.record(now, sig, new)
        return True


def elaborate_cycle(module, top, kernel=None, trace=None, lanes=1,
                    replicate=False, batch_units=None):
    """Elaborate for the cycle simulator (compiled units, cycle kernel)."""
    from .blaze import BlazeDesign, BlazeEntityInstance
    from .lanes import lane_default

    if kernel is None:
        kernel = CycleKernel(trace=trace)
    kernel.lanes = lanes
    unit = module.get(top)
    if unit is None or isinstance(unit, UnitDecl):
        raise SimulationError(f"top unit @{top} is not defined")
    if not unit.is_entity:
        raise SimulationError(f"top unit @{top} must be an entity")
    design = BlazeDesign(module, unit, kernel, lanes, replicate, batch_units)
    ports = {}
    for arg in unit.args:
        sig = design.create_signal(
            f"{top}.{arg.name}", arg.type,
            lane_default(arg.type.element, lanes))
        ports[id(arg)] = sig
    BlazeEntityInstance(design, unit, top, ports)
    design.finalize()
    return design
