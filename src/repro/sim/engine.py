"""Event-driven simulation kernel.

The kernel is shared by the reference interpreter (LLHD-Sim) and the
compiled simulator (the LLHD-Blaze analogue): both elaborate a design into
:class:`SignalInstance` nets and executable activities, and both schedule
work through this queue.  Time is the LLHD triple ``(femtoseconds, delta,
epsilon)``:

* physical femtoseconds advance real time;
* *delta* steps order zero-time iterations (VHDL-style delta cycles);
* *epsilon* steps order drive application inside one delta (used by
  ``reg`` storage without an explicit delay).

Driving uses the transport-delay model: each driver owns a pending
transaction timeline per signal, and scheduling a transaction at time T
cancels that driver's pending transactions at or after T.

Hot-path structure (this is the inner loop of every simulation):

* signals are slot-indexed — every net has a dense ``index`` assigned at
  creation, and dedup marks / runnable sets key on integers, never on
  ``id()`` of heap objects;
* per-driver timelines are kept sorted (:class:`DriverTimeline`), so
  transport cancellation is a bisect + truncate instead of rebuilding the
  list on every drive, and maturation pops a sorted prefix;
* entity sensitivity lists are precomputed: the set of entities observing
  a net is frozen into a tuple the first time the net changes and reused
  until the (elaboration-time-only) waiter set changes again.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right

from ..ir.ninevalued import LogicVec, resolve_many
from .values import SimulationError, extract_path, insert_path

ZERO_TIME = (0, 0, 0)


def _combine_contributions(old, contributions, sig=None, kernel=None):
    """Merge same-instant drive transactions from several drivers.

    ``contributions`` is a list of ``(path, value, driver_key)``.
    Whole-signal drives apply first, then projected patches in ascending
    path depth, so a same-instant patch of a slice wins over a
    whole-signal drive.  Drivers hitting the *same* target — the whole
    net, or the identical projection path — resolve (IEEE 1164) when the
    driven values are lN, in a single N-way plane pass over all of them.
    Types without a resolution function raise a deterministic
    :class:`SimulationError` naming the conflicting drivers when the
    values actually disagree (under a sanitizer the conflict is recorded
    and the last driver wins instead); drivers that agree are harmless.
    """
    contributions.sort(key=lambda t: len(t[0]))
    new = old
    i = 0
    count = len(contributions)
    while i < count:
        plen = len(contributions[i][0])
        j = i + 1
        while j < count and len(contributions[j][0]) == plen:
            j += 1
        if j - i == 1:
            path, value, _key = contributions[i]
            new = insert_path(new, path, value)
        else:
            groups = {}
            for k in range(i, j):
                path, value, key = contributions[k]
                group = groups.get(path)
                if group is None:
                    groups[path] = ([value], [key])
                else:
                    group[0].append(value)
                    group[1].append(key)
            for path, (values, keys) in groups.items():
                if len(values) == 1:
                    new = insert_path(new, path, values[0])
                elif all(type(v) is LogicVec for v in values):
                    new = insert_path(new, path, resolve_many(values))
                else:
                    first = values[0]
                    if any(v != first for v in values[1:]):
                        sanitizer = kernel.sanitizer \
                            if kernel is not None else None
                        if sanitizer is None:
                            raise SimulationError(_race_message(
                                sig, path, values, keys, kernel))
                        sanitizer.record_race(kernel, sig, path,
                                              values, keys)
                    new = insert_path(new, path, values[-1])
        i = j
    return new


def _race_message(sig, path, values, keys, kernel):
    name = sig.find().name if sig is not None else "<net>"
    if path:
        name = f"{name}[{'/'.join(str(p) for p in path)}]"
    if kernel is not None:
        drivers = sorted(kernel.describe_driver(key) for key in keys)
    else:
        drivers = sorted(repr(key) for key in keys)
    return (f"same-instant drive conflict on unresolved net {name}: "
            f"{len(keys)} drivers matured different values "
            f"({', '.join(repr(v) for v in values)}); "
            f"conflicting drivers: {'; '.join(drivers)}")

# Event kinds in the kernel heap (ints compare faster than strings and
# keep heap entries small).
_UPDATE = 0
_RESUME = 1


def advance_time(now, delay):
    """The time at which something scheduled ``delay`` after ``now`` occurs.

    A zero delay means "next delta": nothing can happen within the current
    instant, which is what makes zero-delay feedback loops well-defined.
    """
    if delay.fs > 0:
        return (now[0] + delay.fs, delay.delta, delay.epsilon)
    if delay.delta > 0:
        return (now[0], now[1] + delay.delta, delay.epsilon)
    if delay.epsilon > 0:
        return (now[0], now[1], now[2] + delay.epsilon)
    return (now[0], now[1] + 1, 0)


class DriverTimeline:
    """One driver's pending transactions on one net, sorted by time.

    ``times`` and ``entries`` are parallel lists; ``times`` is strictly
    increasing, which makes transport cancellation (drop everything at or
    after the new transaction's time) a bisect + truncate and maturation
    (consume everything due) a bisect + prefix pop.
    """

    __slots__ = ("times", "entries")

    def __init__(self):
        self.times = []
        self.entries = []   # (path, value), parallel to times

    def schedule(self, when, path, value):
        """Add a transaction, cancelling this driver's work at/after it."""
        times = self.times
        if times and times[-1] >= when:
            i = bisect_left(times, when)
            del times[i:]
            del self.entries[i:]
        times.append(when)
        self.entries.append((path, value))

    def mature(self, now):
        """Pop all transactions due at/before ``now``; return the latest."""
        times = self.times
        if not times or times[0] > now:
            return None
        i = bisect_right(times, now)
        entry = self.entries[i - 1]
        del times[:i]
        del self.entries[:i]
        return entry

    def merge(self, other):
        """Fold another timeline in (net merging via ``con``)."""
        if not other.times:
            return
        if not self.times:
            self.times = other.times
            self.entries = other.entries
            return
        merged = sorted(
            zip(self.times + other.times, self.entries + other.entries),
            key=lambda te: te[0])
        self.times = [t for t, _ in merged]
        self.entries = [e for _, e in merged]

    def __len__(self):
        return len(self.times)

    def __iter__(self):
        """Iterate ``(time, path, value)`` triples (for tests/debugging)."""
        for when, (path, value) in zip(self.times, self.entries):
            yield (when, path, value)


class SignalInstance:
    """One signal net at simulation time.

    ``con`` connections merge nets through union-find: all operations go
    through :meth:`find` so connected signals behave as one.
    """

    __slots__ = ("name", "type", "value", "pending", "proc_waiters",
                 "entity_waiters", "_entity_list", "index", "_rep",
                 "initial", "aliases")

    def __init__(self, name, type, initial, index):
        self.name = name
        self.type = type
        self.value = initial
        self.initial = initial
        self.index = index
        self.pending = {}         # driver_key -> DriverTimeline
        self.proc_waiters = {}    # activity.order -> activity (one-shot)
        self.entity_waiters = {}  # activity.order -> activity (persistent)
        self._entity_list = ()    # cached tuple of entity waiters
        self._rep = None
        self.aliases = (name,)    # every name merged into this net (con)

    def find(self):
        """The representative net (after ``con`` merging)."""
        sig = self
        while sig._rep is not None:
            sig = sig._rep
        # Path compression.
        node = self
        while node._rep is not None and node._rep is not sig:
            node._rep, node = sig, node._rep
        return sig

    def connect(self, other):
        """Merge this net with another (``con`` instruction)."""
        a, b = self.find(), other.find()
        if a is b:
            return a
        # Keep the lower-indexed signal as representative for determinism.
        if b.index < a.index:
            a, b = b, a
        b._rep = a
        # Merge pending timelines *per driver*: when both nets already
        # carry transactions from the same driver key, the transactions
        # interleave on the merged net instead of one set clobbering the
        # other.
        if b.pending:
            a_pending = a.pending
            for key, timeline in b.pending.items():
                mine = a_pending.get(key)
                if mine is None:
                    a_pending[key] = timeline
                else:
                    mine.merge(timeline)
            b.pending = {}
        a.proc_waiters.update(b.proc_waiters)
        a.entity_waiters.update(b.entity_waiters)
        a._entity_list = None
        # The merged net keeps recording trace history under every
        # member's name: a netlist `con` must not silently rename the
        # signals the pre-techmap design drove directly.
        a.aliases = a.aliases + b.aliases
        if isinstance(a.value, LogicVec) and isinstance(b.value, LogicVec):
            a.value = a.value.resolve(b.value)
        elif a.value != b.value:
            # Two-valued types have no resolution function: connecting
            # nets whose current values disagree silently picks one, so
            # diagnose instead.
            raise SimulationError(
                f"con of {a.name} and {b.name}: conflicting initial "
                f"values ({a.value!r} vs {b.value!r}) on a type without "
                f"a resolution function")
        return a

    def entity_list(self):
        """The precomputed sensitivity list: entities observing this net."""
        ew = self._entity_list
        if ew is None:
            ew = self._entity_list = tuple(self.entity_waiters.items())
        return ew

    def __repr__(self):
        return f"<signal {self.name}: {self.type}>"


class SignalRef:
    """A projection into a signal: the result of extf/exts on a ``T$``."""

    __slots__ = ("signal", "path", "type")

    def __init__(self, signal, path, type):
        self.signal = signal
        self.path = tuple(path)
        self.type = type

    def project(self, step, type):
        return SignalRef(self.signal, self.path + (step,), type)

    def __repr__(self):
        return f"<signal-ref {self.signal.name}{list(self.path)}>"


def as_signal_ref(target):
    """Normalize a SignalInstance or SignalRef to (signal, path)."""
    if isinstance(target, SignalRef):
        return target.signal.find(), target.path
    return target.find(), ()


class Kernel:
    """The event queue and the simulation main loop.

    Activities (process/entity instances) are objects with:

    * ``run(kernel)`` — execute until suspension; schedule follow-up work
      through kernel methods;
    * ``order`` — an integer used to order same-delta execution
      deterministically (unique per activity, so it doubles as the
      activity's slot in runnable sets).
    """

    MAX_DELTAS = 10_000

    def __init__(self, trace=None, max_time_fs=None):
        self.now = ZERO_TIME
        self.trace = trace
        self.max_time_fs = max_time_fs
        self.signals = []
        self._heap = []
        self._seq = 0
        self._update_marks = set()   # (time, signal.index) already queued
        self.assertion_failures = []
        self.output = []             # llhd.print output lines
        self.finished = False
        self.stats = {"deltas": 0, "events": 0, "activations": 0}
        # Hot-loop counters, folded into `stats` when `run` returns.
        self._deltas = self._events = self._activations = 0
        # Scheduler sanitizer (repro.sim.sanitize): when set, drive
        # races and delta-limit oscillations are recorded as findings
        # instead of raising.  driver_labels maps an activity order (the
        # integer inside every driver key) to its hierarchical path so
        # conflicts are reported against readable source names.
        self.sanitizer = None
        self.driver_labels = {}
        # Batch (lane) attribution; see repro.sim.lanes.  When lanes > 1,
        # assertion/print entries become (lane, text) tuples — lane None
        # means "all lanes" — and llhd.finish retires one lane at a time
        # until every lane has finished.
        self.lanes = 1
        self.current_lane = None
        self.finished_lanes = set()
        self.lane_finish_fs = {}
        self.lane_finish_state = {}

    # -- construction -------------------------------------------------------

    def create_signal(self, name, type, initial):
        sig = SignalInstance(name, type, initial, len(self.signals))
        self.signals.append(sig)
        if self.trace is not None:
            self.trace.record(ZERO_TIME, sig, initial)
        return sig

    # -- scheduling ------------------------------------------------------------

    def _push(self, time, kind, payload):
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, payload))

    def schedule_drive(self, driver_key, target, value, delay):
        """Schedule a drive transaction (transport-delay semantics)."""
        if type(target) is SignalRef:
            signal = target.signal
            path = target.path
        else:
            signal = target
            path = ()
        if signal._rep is not None:
            signal = signal.find()
        now = self.now
        # advance_time, inlined (this is the hottest kernel entry point).
        if delay.fs > 0:
            when = (now[0] + delay.fs, delay.delta, delay.epsilon)
        elif delay.delta > 0:
            when = (now[0], now[1] + delay.delta, delay.epsilon)
        elif delay.epsilon > 0:
            when = (now[0], now[1], now[2] + delay.epsilon)
        else:
            when = (now[0], now[1] + 1, 0)
        timeline = signal.pending.get(driver_key)
        if timeline is None:
            timeline = signal.pending[driver_key] = DriverTimeline()
        times = timeline.times
        if times and times[-1] >= when:
            timeline.schedule(when, path, value)
        else:
            times.append(when)
            timeline.entries.append((path, value))
        mark = (when, signal.index)
        marks = self._update_marks
        if mark not in marks:
            marks.add(mark)
            self._seq += 1
            heapq.heappush(self._heap, (when, self._seq, _UPDATE, signal))

    def schedule_resume(self, activity, delay):
        """Schedule an activity to run after ``delay`` (wait timeout)."""
        when = advance_time(self.now, delay)
        self._push(when, _RESUME, activity)
        return when

    def schedule_initial(self, activity):
        """Schedule the initial execution of an activity at time zero."""
        self._push(ZERO_TIME, _RESUME, activity)

    # -- simulation loop -----------------------------------------------------------

    def run(self, until_fs=None):
        """Run until the queue drains, ``llhd.finish``, or the time limit."""
        limit = until_fs if until_fs is not None else self.max_time_fs
        deltas_at_fs = 0
        current_fs = -1
        heap = self._heap
        try:
            while heap and not self.finished:
                time = heap[0][0]
                if limit is not None and time[0] > limit:
                    break
                if time[0] != current_fs:
                    current_fs = time[0]
                    deltas_at_fs = 0
                else:
                    deltas_at_fs += 1
                    if deltas_at_fs > self.MAX_DELTAS:
                        if self.sanitizer is not None:
                            self.sanitizer.record_oscillation(
                                self, current_fs,
                                self._hot_nets(time[0]))
                            break
                        raise SimulationError(
                            f"delta cycle limit exceeded at t={current_fs}fs "
                            f"(combinational loop?)")
                self.now = time
                self._step(time)
        finally:
            self._flush_stats()
        self.now = (self.now[0], 0, 0)

    def _hot_nets(self, fs):
        """Names of nets with updates still queued in instant ``fs``
        (the members of an oscillating zero-delay loop)."""
        names = []
        for time, _seq, kind, payload in self._heap:
            if time[0] == fs and kind == _UPDATE:
                names.append(payload.find().name)
        return names

    def describe_driver(self, key):
        """A readable identity for a driver key, for conflict reports."""
        kind = ""
        order = key
        if isinstance(key, tuple):
            kind = f"{key[0]} of "
            order = key[1]
        label = self.driver_labels.get(order)
        if label is None:
            return f"{kind}driver #{order}"
        return f"{kind}{label}"

    def _flush_stats(self):
        stats = self.stats
        stats["deltas"] += self._deltas
        stats["events"] += self._events
        stats["activations"] += self._activations
        self._deltas = self._events = self._activations = 0

    def _step(self, time):
        """Process all events scheduled for exactly ``time``.

        Updates (net maturation) and resumes are interleaved as popped:
        maturing a net only reads/writes that net and the runnable set,
        so processing order within one instant does not affect the
        outcome — activities still run once, in ``order`` order.
        """
        heap = self._heap
        pop = heapq.heappop
        apply = self._apply_transactions
        runnable = {}
        marks = self._update_marks
        events = 0
        while heap and heap[0][0] == time:
            entry = pop(heap)
            events += 1
            if entry[2] == _UPDATE:
                signal = entry[3]
                marks.discard((time, signal.index))
                sig = signal if signal._rep is None else signal.find()
                if apply(sig, time):
                    waiters = sig.proc_waiters
                    if waiters:
                        runnable.update(waiters)
                        waiters.clear()
                    ew = sig._entity_list
                    if ew is None:
                        ew = sig._entity_list = \
                            tuple(sig.entity_waiters.items())
                    if ew:
                        runnable.update(ew)
            else:
                activity = entry[3]
                runnable[activity.order] = activity
        self._deltas += 1
        self._events += events
        n = len(runnable)
        self._activations += n
        if n == 1:
            for activity in runnable.values():
                activity.run(self)
        elif n:
            for order in sorted(runnable):
                runnable[order].run(self)

    def _apply_transactions(self, sig, time):
        """Mature due transactions on a net; True if the value changed."""
        single = None
        single_key = None
        contributions = None
        for key, timeline in sig.pending.items():
            entry = timeline.mature(time)
            if entry is None:
                continue
            if contributions is not None:
                contributions.append((entry[0], entry[1], key))
            elif single is None:
                single = entry
                single_key = key
            else:
                contributions = [(single[0], single[1], single_key),
                                 (entry[0], entry[1], key)]
                single = None
        old = sig.value
        if contributions is None:
            if single is None:
                return False
            # Fast path: exactly one driver matured this instant.
            path, value = single
            new = insert_path(old, path, value) if path else value
        else:
            new = _combine_contributions(old, contributions, sig, self)
        if new == old:
            return False
        sig.value = new
        if self.trace is not None:
            self.trace.record(time, sig, new)
        return True

    # -- waiting -----------------------------------------------------------------

    def add_process_waiter(self, signal, activity):
        sig = signal if signal._rep is None else signal.find()
        sig.proc_waiters[activity.order] = activity

    def remove_process_waiter(self, signal, activity):
        sig = signal if signal._rep is None else signal.find()
        sig.proc_waiters.pop(activity.order, None)

    def add_entity_waiter(self, signal, activity):
        sig = signal if signal._rep is None else signal.find()
        sig.entity_waiters[activity.order] = activity
        sig._entity_list = None

    # -- intrinsics ----------------------------------------------------------------

    def intrinsic(self, name, args, where=""):
        """Execute an ``llhd.*`` intrinsic call."""
        if name in ("llhd.assert", "llhd.assert.msg"):
            cond = args[0]
            if isinstance(cond, LogicVec):
                cond = int(cond.is_two_valued and cond.to_int() != 0)
            if not cond:
                message = args[1] if len(args) > 1 else ""
                t = self.now
                text = f"assertion failed at {t[0]}fs {where} " \
                    f"{message}".strip()
                if self.lanes > 1:
                    self.assertion_failures.append((self.current_lane, text))
                else:
                    self.assertion_failures.append(text)
            return None
        if name == "llhd.print":
            from .values import format_value

            text = " ".join(format_value(a) for a in args)
            if self.lanes > 1:
                self.output.append((self.current_lane, text))
            else:
                self.output.append(text)
            return None
        if name == "llhd.finish":
            self.finish_lane()
            return None
        raise SimulationError(f"unknown intrinsic @{name}")

    def _lane_finish_snapshot(self):
        """Signal name -> batched value at this very moment.

        Captured when a lane finishes: a scalar run stops *mid-instant*
        (no later delta round matures), while the batch kernel keeps
        running other lanes through further rounds of the same
        femtosecond.  The per-fs last-wins trace cannot recover the
        earlier intra-instant state, so the demultiplexer rebuilds the
        lane's final trace entry from this snapshot instead.
        """
        snap = {}
        for sig in self.signals:
            value = sig.find().value
            for name in sig.aliases:
                snap[name] = value
        return snap

    def finish_lane(self):
        """Handle ``llhd.finish``: whole run, or just the current lane."""
        if self.lanes > 1 and self.current_lane is not None:
            k = self.current_lane
            if k not in self.finished_lanes:
                self.finished_lanes.add(k)
                self.lane_finish_fs[k] = self.now[0]
                self.lane_finish_state[k] = self._lane_finish_snapshot()
            if len(self.finished_lanes) == self.lanes:
                self.finished = True
            return
        if self.lanes > 1:
            # Lane-uniform finish: every still-running lane ends here.
            snap = self._lane_finish_snapshot()
            for k in range(self.lanes):
                if k not in self.finished_lanes:
                    self.finished_lanes.add(k)
                    self.lane_finish_fs[k] = self.now[0]
                    self.lane_finish_state[k] = snap
        self.finished = True

    def probe(self, target):
        """Read the current value of a signal or projection."""
        if type(target) is SignalRef:
            signal = target.signal
            if signal._rep is not None:
                signal = signal.find()
            return extract_path(signal.value, target.path)
        if target._rep is None:
            return target.value
        return target.find().value
