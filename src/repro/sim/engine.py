"""Event-driven simulation kernel.

The kernel is shared by the reference interpreter (LLHD-Sim) and the
compiled simulator (the LLHD-Blaze analogue): both elaborate a design into
:class:`SignalInstance` nets and executable activities, and both schedule
work through this queue.  Time is the LLHD triple ``(femtoseconds, delta,
epsilon)``:

* physical femtoseconds advance real time;
* *delta* steps order zero-time iterations (VHDL-style delta cycles);
* *epsilon* steps order drive application inside one delta (used by
  ``reg`` storage without an explicit delay).

Driving uses the transport-delay model: each driver owns a pending
transaction timeline per signal, and scheduling a transaction at time T
cancels that driver's pending transactions at or after T.
"""

from __future__ import annotations

import heapq

from ..ir.ninevalued import LogicVec
from .values import SimulationError, extract_path, insert_path

ZERO_TIME = (0, 0, 0)


def advance_time(now, delay):
    """The time at which something scheduled ``delay`` after ``now`` occurs.

    A zero delay means "next delta": nothing can happen within the current
    instant, which is what makes zero-delay feedback loops well-defined.
    """
    if delay.fs > 0:
        return (now[0] + delay.fs, delay.delta, delay.epsilon)
    if delay.delta > 0:
        return (now[0], now[1] + delay.delta, delay.epsilon)
    if delay.epsilon > 0:
        return (now[0], now[1], now[2] + delay.epsilon)
    return (now[0], now[1] + 1, 0)


class SignalInstance:
    """One signal net at simulation time.

    ``con`` connections merge nets through union-find: all operations go
    through :meth:`find` so connected signals behave as one.
    """

    __slots__ = ("name", "type", "value", "pending", "proc_waiters",
                 "entity_waiters", "index", "_rep", "initial")

    def __init__(self, name, type, initial, index):
        self.name = name
        self.type = type
        self.value = initial
        self.initial = initial
        self.index = index
        self.pending = {}        # driver_key -> [(time, path, value), ...]
        self.proc_waiters = {}   # id(activity) -> activity (one-shot)
        self.entity_waiters = {}  # id(activity) -> activity (persistent)
        self._rep = None

    def find(self):
        """The representative net (after ``con`` merging)."""
        sig = self
        while sig._rep is not None:
            sig = sig._rep
        # Path compression.
        node = self
        while node._rep is not None and node._rep is not sig:
            node._rep, node = sig, node._rep
        return sig

    def connect(self, other):
        """Merge this net with another (``con`` instruction)."""
        a, b = self.find(), other.find()
        if a is b:
            return a
        # Keep the lower-indexed signal as representative for determinism.
        if b.index < a.index:
            a, b = b, a
        b._rep = a
        a.pending.update(b.pending)
        a.proc_waiters.update(b.proc_waiters)
        a.entity_waiters.update(b.entity_waiters)
        if isinstance(a.value, LogicVec) and isinstance(b.value, LogicVec):
            a.value = a.value.resolve(b.value)
        return a

    def __repr__(self):
        return f"<signal {self.name}: {self.type}>"


class SignalRef:
    """A projection into a signal: the result of extf/exts on a ``T$``."""

    __slots__ = ("signal", "path", "type")

    def __init__(self, signal, path, type):
        self.signal = signal
        self.path = tuple(path)
        self.type = type

    def project(self, step, type):
        return SignalRef(self.signal, self.path + (step,), type)

    def __repr__(self):
        return f"<signal-ref {self.signal.name}{list(self.path)}>"


def as_signal_ref(target):
    """Normalize a SignalInstance or SignalRef to (signal, path)."""
    if isinstance(target, SignalRef):
        return target.signal.find(), target.path
    return target.find(), ()


class Kernel:
    """The event queue and the simulation main loop.

    Activities (process/entity instances) are objects with:

    * ``run(kernel)`` — execute until suspension; schedule follow-up work
      through kernel methods;
    * ``order`` — an integer used to order same-delta execution
      deterministically.
    """

    MAX_DELTAS = 10_000

    def __init__(self, trace=None, max_time_fs=None):
        self.now = ZERO_TIME
        self.trace = trace
        self.max_time_fs = max_time_fs
        self.signals = []
        self._heap = []
        self._seq = 0
        self._update_marks = set()   # (time, id(signal)) already queued
        self._resume_marks = {}      # (time, id(activity)) -> activity
        self.assertion_failures = []
        self.output = []             # llhd.print output lines
        self.finished = False
        self.stats = {"deltas": 0, "events": 0, "activations": 0}

    # -- construction -------------------------------------------------------

    def create_signal(self, name, type, initial):
        sig = SignalInstance(name, type, initial, len(self.signals))
        self.signals.append(sig)
        if self.trace is not None:
            self.trace.record(ZERO_TIME, sig, initial)
        return sig

    # -- scheduling ------------------------------------------------------------

    def _push(self, time, kind, payload):
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, payload))

    def schedule_drive(self, driver_key, target, value, delay):
        """Schedule a drive transaction (transport-delay semantics)."""
        signal, path = as_signal_ref(target)
        when = advance_time(self.now, delay)
        timeline = signal.pending.setdefault(driver_key, [])
        # Transport model: forget this driver's transactions at/after `when`.
        timeline[:] = [t for t in timeline if t[0] < when]
        timeline.append((when, path, value))
        mark = (when, id(signal))
        if mark not in self._update_marks:
            self._update_marks.add(mark)
            self._push(when, "update", signal)

    def schedule_resume(self, activity, delay):
        """Schedule an activity to run after ``delay`` (wait timeout)."""
        when = advance_time(self.now, delay)
        self._push(when, "resume", activity)
        return when

    def schedule_initial(self, activity):
        """Schedule the initial execution of an activity at time zero."""
        self._push(ZERO_TIME, "resume", activity)

    # -- simulation loop -----------------------------------------------------------

    def run(self, until_fs=None):
        """Run until the queue drains, ``llhd.finish``, or the time limit."""
        limit = until_fs if until_fs is not None else self.max_time_fs
        deltas_at_fs = 0
        current_fs = -1
        while self._heap and not self.finished:
            time = self._heap[0][0]
            if limit is not None and time[0] > limit:
                break
            if time[0] != current_fs:
                current_fs = time[0]
                deltas_at_fs = 0
            else:
                deltas_at_fs += 1
                if deltas_at_fs > self.MAX_DELTAS:
                    raise SimulationError(
                        f"delta cycle limit exceeded at t={current_fs}fs "
                        f"(combinational loop?)")
            self.now = time
            self._step(time)
        self.now = (self.now[0], 0, 0)

    def _step(self, time):
        """Process all events scheduled for exactly ``time``."""
        updates = []
        resumes = []
        while self._heap and self._heap[0][0] == time:
            _, _, kind, payload = heapq.heappop(self._heap)
            self.stats["events"] += 1
            if kind == "update":
                updates.append(payload)
            else:
                resumes.append(payload)
        runnable = {}
        for signal in updates:
            self._update_marks.discard((time, id(signal)))
            changed = self._apply_transactions(signal, time)
            if changed:
                sig = signal.find()
                for activity in sig.proc_waiters.values():
                    runnable[id(activity)] = activity
                sig.proc_waiters.clear()
                for activity in sig.entity_waiters.values():
                    runnable[id(activity)] = activity
        for activity in resumes:
            runnable[id(activity)] = activity
        self.stats["deltas"] += 1
        for activity in sorted(runnable.values(), key=lambda a: a.order):
            self.stats["activations"] += 1
            activity.run(self)

    def _apply_transactions(self, signal, time):
        """Mature due transactions on a net; True if the value changed."""
        sig = signal.find()
        old = sig.value
        new = old
        contributions = []
        for timeline in sig.pending.values():
            due = [t for t in timeline if t[0] <= time]
            if not due:
                continue
            timeline[:] = [t for t in timeline if t[0] > time]
            contributions.append(due[-1])
        # Apply whole-signal drives first, then projected patches, so a
        # same-instant patch of a slice wins over a whole-signal drive.
        contributions.sort(key=lambda t: len(t[1]))
        resolved_whole = None
        for _, path, value in contributions:
            if not path and isinstance(new, LogicVec) and \
                    isinstance(value, LogicVec):
                # Multiple whole-net drivers of an lN net resolve (IEEE 1164).
                if resolved_whole is None:
                    resolved_whole = value
                else:
                    resolved_whole = resolved_whole.resolve(value)
                new = resolved_whole
            else:
                new = insert_path(new, path, value)
        if new == old:
            return False
        sig.value = new
        if self.trace is not None:
            self.trace.record(time, sig, new)
        return True

    # -- waiting -----------------------------------------------------------------

    def add_process_waiter(self, signal, activity):
        sig = signal.find()
        sig.proc_waiters[id(activity)] = activity

    def remove_process_waiter(self, signal, activity):
        sig = signal.find()
        sig.proc_waiters.pop(id(activity), None)

    def add_entity_waiter(self, signal, activity):
        sig = signal.find()
        sig.entity_waiters[id(activity)] = activity

    # -- intrinsics ----------------------------------------------------------------

    def intrinsic(self, name, args, where=""):
        """Execute an ``llhd.*`` intrinsic call."""
        if name in ("llhd.assert", "llhd.assert.msg"):
            cond = args[0]
            if isinstance(cond, LogicVec):
                cond = int(cond.is_two_valued and cond.to_int() != 0)
            if not cond:
                message = args[1] if len(args) > 1 else ""
                t = self.now
                self.assertion_failures.append(
                    f"assertion failed at {t[0]}fs {where} {message}".strip())
            return None
        if name == "llhd.print":
            from .values import format_value

            self.output.append(" ".join(format_value(a) for a in args))
            return None
        if name == "llhd.finish":
            self.finished = True
            return None
        raise SimulationError(f"unknown intrinsic @{name}")

    def probe(self, target):
        """Read the current value of a signal or projection."""
        signal, path = as_signal_ref(target)
        return extract_path(signal.value, path)
