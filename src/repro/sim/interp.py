"""LLHD-Sim: the reference interpreter.

Deliberately the *simplest possible* simulator of the LLHD instruction set
(paper, section 6.1): units are executed by walking their instructions.
Since PR 2 the walk is *predecoded*: each unit is lowered once into a plan
of per-instruction step closures (:mod:`repro.sim.plan`), so the hot loop
no longer re-matches opcode strings or rebuilds operand lists — but values
still flow through an interpreted environment, instruction by instruction.
The compiled simulator (:mod:`repro.sim.blaze`) shares this module's
elaboration and the kernel, and replaces the instruction walk with
generated Python code.

Elaboration instantiates the design hierarchy: every ``sig`` becomes a
:class:`~repro.sim.engine.SignalInstance`, every ``inst`` recursively
instantiates the child unit with its ports bound, processes become
suspended control-flow activities, and entity bodies are evaluated once
(their "execute all instructions at initialization" semantics) while
registering data-flow sensitivity for re-execution.
"""

from __future__ import annotations

from ..ir.units import UnitDecl
from .engine import Kernel, SignalInstance, SignalRef
from .eval import evaluate, path_of
from .plan import (
    Cell, CellRef, _as_cellref, _dynamic_index, _Timeout,
    build_entity_plan, build_function_plan, build_process_plan,
)
from .values import SimulationError, default_value, extract_path

_PURE_OPS = frozenset({
    "const", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
    "srem", "and", "or", "xor", "not", "neg", "shl", "shr", "eq", "neq",
    "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge", "zext", "sext",
    "trunc", "array", "struct", "mux", "inss",
})


class Design:
    """An elaborated design bound to a kernel."""

    def __init__(self, module, top, kernel):
        self.module = module
        self.top = top
        self.kernel = kernel
        self.activities = []
        self.signal_by_name = {}
        self._order = 0
        self._proc_plans = {}     # id(unit) -> entry BlockPlan
        self._entity_plans = {}   # id(unit) -> tuple of steps
        self._func_plans = {}     # id(unit) -> entry BlockPlan

    def next_order(self):
        self._order += 1
        return self._order

    def create_signal(self, name, type, initial):
        sig = self.kernel.create_signal(name, type, initial)
        self.signal_by_name[name] = sig
        return sig

    def signal(self, name):
        """Look up a signal by hierarchical name (e.g. ``"top.clk"``)."""
        return self.signal_by_name[name]

    def proc_plan(self, unit):
        """The predecoded plan for a process unit (built once per unit)."""
        plan = self._proc_plans.get(id(unit))
        if plan is None:
            plan = self._proc_plans[id(unit)] = build_process_plan(unit, self.kernel)
        return plan

    def entity_plan(self, unit):
        """The predecoded re-activation steps for an entity unit."""
        plan = self._entity_plans.get(id(unit))
        if plan is None:
            plan = self._entity_plans[id(unit)] = build_entity_plan(unit, self.kernel)
        return plan

    def function_plan(self, unit):
        """The predecoded plan for a function unit."""
        plan = self._func_plans.get(id(unit))
        if plan is None:
            plan = self._func_plans[id(unit)] = build_function_plan(unit, self.kernel)
        return plan

    def finalize(self):
        """Hook called when the hierarchy is fully elaborated."""
        for activity in self.activities:
            bind = getattr(activity, "bind", None)
            if bind is not None:
                bind()


def elaborate(module, top, kernel=None, trace=None):
    """Elaborate ``module`` starting at entity ``top``; returns a Design."""
    if kernel is None:
        kernel = Kernel(trace=trace)
    unit = module.get(top)
    if unit is None or isinstance(unit, UnitDecl):
        raise SimulationError(f"top unit @{top} is not defined")
    if not unit.is_entity:
        raise SimulationError(f"top unit @{top} must be an entity")
    design = Design(module, unit, kernel)
    ports = {}
    for arg in unit.args:
        sig = design.create_signal(
            f"{top}.{arg.name}", arg.type, default_value(arg.type.element))
        ports[id(arg)] = sig
    EntityInstance(design, unit, top, ports)
    design.finalize()
    return design


class _FunctionFrame:
    """One function invocation: the activity context for plan steps."""

    __slots__ = ("functions", "path", "design", "result")

    def __init__(self, functions, path, design):
        self.functions = functions
        self.path = path
        self.design = design
        self.result = None


class _FunctionInterpreter:
    """Immediate (zero-time) execution of a function body."""

    MAX_STEPS = 2_000_000

    def __init__(self, design, kernel):
        self.design = design
        self.kernel = kernel

    def call(self, name, args, where=""):
        if name.startswith("llhd."):
            return self.kernel.intrinsic(name, args, where)
        design = self.design
        func = design.module.get(name)
        if func is None or isinstance(func, UnitDecl):
            raise SimulationError(f"call to undefined function @{name}")
        env = {}
        for arg, value in zip(func.args, args):
            env[id(arg)] = value
        frame = _FunctionFrame(self, f"@{name}", design)
        kernel = self.kernel
        bp = design.function_plan(func)
        budget = self.MAX_STEPS
        executed = 0
        while bp is not None:
            steps = bp.steps
            for step in steps:
                step(env, frame)
            executed += len(steps) + 1
            if executed > budget:
                raise SimulationError(
                    f"@{name}: function execution exceeded "
                    f"{self.MAX_STEPS} steps")
            bp = bp.term(env, frame)
        return frame.result


def _interp_ext(inst, env):
    """extf/exts on values, signals, and pointers (elaboration walk)."""
    base = env[id(inst.operands[0])]
    if inst.opcode == "extf":
        index = inst.attrs.get("index")
        if index is None:
            index = _dynamic_index(env[id(inst.operands[1])])
        step = ("field", index)
    else:
        step = path_of(inst)
    if isinstance(base, (SignalInstance, SignalRef)):
        if isinstance(base, SignalInstance):
            base = SignalRef(base, (), base.type)
        return base.project(step, inst.type)
    if isinstance(base, (Cell, CellRef)):
        return _as_cellref(base).project(step)
    return extract_path(base, (step,))


class ProcessInstance:
    """One elaborated process: a suspended control-flow activity."""

    def __init__(self, design, unit, path, port_map):
        self.design = design
        self.unit = unit
        self.path = path
        self.order = design.next_order()
        self.env = dict(port_map)  # id(value) -> runtime value
        self.status = "ready"
        self.wait_token = 0
        self.subscribed = []
        self._bp = None            # current BlockPlan (predecoded)
        self.functions = _FunctionInterpreter(design, design.kernel)
        design.activities.append(self)
        design.kernel.schedule_initial(self)

    # -- activity interface ----------------------------------------------------

    def run(self, kernel):
        if self.status == "waiting":
            self._wake()
        elif self.status != "ready":
            return
        self.status = "running"
        self._execute(kernel)

    def _wake(self):
        subscribed = self.subscribed
        if subscribed:
            order = self.order
            for sig in subscribed:
                sig.proc_waiters.pop(order, None)
            self.subscribed = []
        self.wait_token += 1

    def _subscribe(self, signals, timeout):
        self.status = "waiting"
        order = self.order
        subscribed = self.subscribed
        for target in signals:
            sig = target.signal if type(target) is SignalRef else target
            if sig._rep is not None:
                sig = sig.find()
            sig.proc_waiters[order] = self
            subscribed.append(sig)
        if timeout is not None:
            self.design.kernel.schedule_resume(
                _Timeout(self, self.wait_token), timeout)

    # -- execution ----------------------------------------------------------------

    def _execute(self, kernel):
        bp = self._bp
        if bp is None:
            bp = self._bp = self.design.proc_plan(self.unit)
        env = self.env
        while bp is not None:
            for step in bp.steps:
                step(env, self)
            bp = bp.term(env, self)


def _signal_and_path(target):
    if isinstance(target, SignalRef):
        return target.signal, target.path
    return target, ()


class EntityInstance:
    """One elaborated entity: a data-flow activity.

    The body is executed once at elaboration (creating signals, recursing
    into ``inst``), and re-executed whenever an observed signal changes.
    Re-execution walks the predecoded entity plan.
    """

    def __init__(self, design, unit, path, port_map):
        self.design = design
        self.unit = unit
        self.path = path
        self.order = design.next_order()
        self.env = dict(port_map)
        self.reg_state = {}  # id(reg inst) -> [prev trigger values]
        self.functions = _FunctionInterpreter(design, design.kernel)
        self._observed = {}
        self._plan = None
        design.activities.append(self)
        self._initial_eval()

    def _observe(self, target):
        sig, _ = _signal_and_path(target)
        sig = sig.find()
        if id(sig) not in self._observed:
            self._observed[id(sig)] = sig
            self.design.kernel.add_entity_waiter(sig, self)

    def _initial_eval(self):
        kernel = self.design.kernel
        env = self.env
        for inst in self.unit.body:
            op = inst.opcode
            if op == "sig":
                env[id(inst)] = self.design.create_signal(
                    f"{self.path}.{inst.name or id(inst)}",
                    inst.type, env[id(inst.operands[0])])
            elif op == "inst":
                self._instantiate(inst)
            elif op == "con":
                a = env[id(inst.operands[0])]
                b = env[id(inst.operands[1])]
                _connect(a, b)
            elif op == "del":
                source = env[id(inst.operands[0])]
                init = kernel.probe(source)
                env[id(inst)] = self.design.create_signal(
                    f"{self.path}.{inst.name or id(inst)}",
                    inst.type, init)
                self._observe(source)
            elif op == "prb":
                target = env[id(inst.operands[0])]
                self._observe(target)
                env[id(inst)] = kernel.probe(target)
            elif op == "reg":
                self._observe(env[id(inst.reg_signal())])
                self.reg_state[id(inst)] = [
                    self.env[id(t["trigger"])] for t in inst.reg_triggers()]
            elif op == "drv":
                self._drive(kernel, inst)
            else:
                self._eval_dataflow(inst)

    def _instantiate(self, inst):
        callee = self.design.module.get(inst.callee)
        if callee is None or isinstance(callee, UnitDecl):
            raise SimulationError(
                f"{self.path}: inst of undefined unit @{inst.callee}")
        port_map = {}
        operands = inst.inst_inputs() + inst.inst_outputs()
        for arg, operand in zip(callee.args, operands):
            port_map[id(arg)] = self.env[id(operand)]
        child_path = f"{self.path}.{inst.callee}"
        if callee.is_entity:
            EntityInstance(self.design, callee, child_path, port_map)
        else:
            ProcessInstance(self.design, callee, child_path, port_map)

    def _eval_dataflow(self, inst):
        env = self.env
        op = inst.opcode
        if op in ("extf", "exts"):
            env[id(inst)] = _interp_ext(inst, env)
        elif op in _PURE_OPS or op == "insf":
            env[id(inst)] = evaluate(
                inst, [env[id(o)] for o in inst.operands])
        elif op == "call":
            result = self.functions.call(
                inst.callee, [env[id(o)] for o in inst.operands],
                where=f"in {self.path}")
            if not inst.type.is_void:
                env[id(inst)] = result
        else:
            raise SimulationError(
                f"{self.path}: '{op}' not allowed in an entity")

    def _drive(self, kernel, inst):
        # One entity is one driver for its drv instructions; reg and del
        # each drive through their own key (see plan._reg_step/_del_step).
        cond = inst.drv_condition()
        if cond is not None and not self.env[id(cond)]:
            return
        kernel.schedule_drive(
            self.order,
            self.env[id(inst.drv_signal())],
            self.env[id(inst.drv_value())],
            self.env[id(inst.drv_delay())])

    # -- activity interface: re-execute the data-flow graph --------------------

    def run(self, kernel):
        plan = self._plan
        if plan is None:
            plan = self._plan = self.design.entity_plan(self.unit)
        env = self.env
        for step in plan:
            step(env, self)


def _connect(a, b):
    sig_a, path_a = _signal_and_path(a)
    sig_b, path_b = _signal_and_path(b)
    if path_a or path_b:
        raise SimulationError("con of projected sub-signals is not supported")
    sig_a.connect(sig_b)
