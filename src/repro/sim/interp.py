"""LLHD-Sim: the reference interpreter.

Deliberately the *simplest possible* simulator of the LLHD instruction set
(paper, section 6.1): units are executed by walking their instruction
objects one at a time.  The compiled simulator (:mod:`repro.sim.blaze`)
shares this module's elaboration and the kernel, but replaces the
instruction walk with generated Python code.

Elaboration instantiates the design hierarchy: every ``sig`` becomes a
:class:`~repro.sim.engine.SignalInstance`, every ``inst`` recursively
instantiates the child unit with its ports bound, processes become
suspended control-flow activities, and entity bodies are evaluated once
(their "execute all instructions at initialization" semantics) while
registering data-flow sensitivity for re-execution.
"""

from __future__ import annotations

from ..ir.units import UnitDecl
from ..ir.values import Argument
from .engine import Kernel, SignalInstance, SignalRef, advance_time
from .eval import evaluate
from .values import SimulationError, default_value, extract_path, insert_path

_PURE_OPS = frozenset({
    "const", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
    "srem", "and", "or", "xor", "not", "neg", "shl", "shr", "eq", "neq",
    "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge", "zext", "sext",
    "trunc", "array", "struct", "mux", "inss",
})


class Cell:
    """A mutable memory cell backing ``var``/``alloc``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class CellRef:
    """A projection into a cell: result of extf/exts on a pointer."""

    __slots__ = ("cell", "path")

    def __init__(self, cell, path=()):
        self.cell = cell
        self.path = tuple(path)

    def load(self):
        return extract_path(self.cell.value, self.path)

    def store(self, value):
        self.cell.value = insert_path(self.cell.value, self.path, value)

    def project(self, step):
        return CellRef(self.cell, self.path + (step,))


def _dynamic_index(value):
    from ..ir.ninevalued import LogicVec

    if isinstance(value, LogicVec):
        if not value.is_two_valued:
            raise SimulationError("dynamic index is unknown (X)")
        return value.to_int()
    return value


class Design:
    """An elaborated design bound to a kernel."""

    def __init__(self, module, top, kernel):
        self.module = module
        self.top = top
        self.kernel = kernel
        self.activities = []
        self.signal_by_name = {}
        self._order = 0

    def next_order(self):
        self._order += 1
        return self._order

    def create_signal(self, name, type, initial):
        sig = self.kernel.create_signal(name, type, initial)
        self.signal_by_name[name] = sig
        return sig

    def signal(self, name):
        """Look up a signal by hierarchical name (e.g. ``"top.clk"``)."""
        return self.signal_by_name[name]


def elaborate(module, top, kernel=None, trace=None):
    """Elaborate ``module`` starting at entity ``top``; returns a Design."""
    if kernel is None:
        kernel = Kernel(trace=trace)
    unit = module.get(top)
    if unit is None or isinstance(unit, UnitDecl):
        raise SimulationError(f"top unit @{top} is not defined")
    if not unit.is_entity:
        raise SimulationError(f"top unit @{top} must be an entity")
    design = Design(module, unit, kernel)
    ports = {}
    for arg in unit.args:
        sig = design.create_signal(
            f"{top}.{arg.name}", arg.type, default_value(arg.type.element))
        ports[id(arg)] = sig
    EntityInstance(design, unit, top, ports)
    return design


class _FunctionInterpreter:
    """Immediate (zero-time) execution of a function body."""

    MAX_STEPS = 2_000_000

    def __init__(self, design, kernel):
        self.design = design
        self.kernel = kernel

    def call(self, name, args, where=""):
        if name.startswith("llhd."):
            return self.kernel.intrinsic(name, args, where)
        func = self.design.module.get(name)
        if func is None or isinstance(func, UnitDecl):
            raise SimulationError(f"call to undefined function @{name}")
        env = {}
        for arg, value in zip(func.args, args):
            env[id(arg)] = value
        block = func.entry
        prev_block = None
        steps = 0
        while True:
            for inst in block.instructions:
                steps += 1
                if steps > self.MAX_STEPS:
                    raise SimulationError(
                        f"@{name}: function execution exceeded "
                        f"{self.MAX_STEPS} steps")
                op = inst.opcode
                if op == "phi":
                    env[id(inst)] = env[id(inst.phi_value_for(prev_block))]
                elif op in _PURE_OPS:
                    env[id(inst)] = evaluate(
                        inst, [env[id(o)] for o in inst.operands])
                elif op in ("extf", "exts"):
                    env[id(inst)] = _interp_ext(inst, env)
                elif op == "insf":
                    env[id(inst)] = evaluate(
                        inst, [env[id(o)] for o in inst.operands])
                elif op in ("var", "alloc"):
                    env[id(inst)] = Cell(env[id(inst.operands[0])])
                elif op == "free":
                    pass
                elif op == "ld":
                    env[id(inst)] = _as_cellref(env[id(inst.operands[0])]).load()
                elif op == "st":
                    _as_cellref(env[id(inst.operands[0])]).store(
                        env[id(inst.operands[1])])
                elif op == "call":
                    result = self.call(
                        inst.callee, [env[id(o)] for o in inst.operands],
                        where=f"in @{name}")
                    if not inst.type.is_void:
                        env[id(inst)] = result
                elif op == "ret":
                    if inst.operands:
                        return env[id(inst.operands[0])]
                    return None
                elif op == "br":
                    prev_block = block
                    if inst.is_conditional_branch:
                        cond = env[id(inst.operands[0])]
                        block = inst.operands[2] if cond else inst.operands[1]
                    else:
                        block = inst.operands[0]
                    break
                else:
                    raise SimulationError(
                        f"@{name}: '{op}' not allowed in a function")
            else:
                raise SimulationError(f"@{name}: block without terminator")


def _as_cellref(pointer):
    if isinstance(pointer, Cell):
        return CellRef(pointer)
    return pointer


def _interp_ext(inst, env):
    """extf/exts on values, signals, and pointers."""
    base = env[id(inst.operands[0])]
    if inst.opcode == "extf":
        index = inst.attrs.get("index")
        if index is None:
            index = _dynamic_index(env[id(inst.operands[1])])
        step = ("field", index)
    else:
        from .eval import path_of

        step = path_of(inst)
    if isinstance(base, (SignalInstance, SignalRef)):
        if isinstance(base, SignalInstance):
            base = SignalRef(base, (), base.type)
        return base.project(step, inst.type)
    if isinstance(base, (Cell, CellRef)):
        return _as_cellref(base).project(step)
    return extract_path(base, (step,))


class ProcessInstance:
    """One elaborated process: a suspended control-flow activity."""

    def __init__(self, design, unit, path, port_map):
        self.design = design
        self.unit = unit
        self.path = path
        self.order = design.next_order()
        self.env = dict(port_map)  # id(value) -> runtime value
        self.block = unit.entry
        self.index = 0
        self.prev_block = None
        self.status = "ready"
        self.resume_block = None
        self.wait_token = 0
        self.subscribed = []
        self.functions = _FunctionInterpreter(design, design.kernel)
        design.activities.append(self)
        design.kernel.schedule_initial(self)

    # -- activity interface ----------------------------------------------------

    def run(self, kernel):
        if self.status == "waiting":
            self._wake()
        elif self.status != "ready":
            return
        self.status = "running"
        self._execute(kernel)

    def _wake(self):
        for sig in self.subscribed:
            self.design.kernel.remove_process_waiter(sig, self)
        self.subscribed = []
        self.wait_token += 1
        self.prev_block = self.block
        self.block = self.resume_block
        self.index = 0

    def _subscribe(self, signals, timeout):
        self.status = "waiting"
        kernel = self.design.kernel
        for target in signals:
            sig, _ = _signal_and_path(target)
            kernel.add_process_waiter(sig, self)
            self.subscribed.append(sig)
        if timeout is not None:
            kernel.schedule_resume(
                _Timeout(self, self.wait_token), timeout)

    # -- execution ----------------------------------------------------------------

    def _execute(self, kernel):
        env = self.env
        while True:
            inst = self.block.instructions[self.index]
            self.index += 1
            op = inst.opcode
            if op == "phi":
                # Collect the parallel copies for this block entry.
                block_phis = self.block.phis()
                values = [env[id(p.phi_value_for(self.prev_block))]
                          for p in block_phis]
                for phi, value in zip(block_phis, values):
                    env[id(phi)] = value
                self.index = len(block_phis)
                continue
            if op in _PURE_OPS:
                env[id(inst)] = evaluate(
                    inst, [env[id(o)] for o in inst.operands])
            elif op in ("extf", "exts"):
                env[id(inst)] = _interp_ext(inst, env)
            elif op == "insf":
                env[id(inst)] = evaluate(
                    inst, [env[id(o)] for o in inst.operands])
            elif op == "prb":
                env[id(inst)] = kernel.probe(env[id(inst.operands[0])])
            elif op == "drv":
                self._drive(kernel, inst)
            elif op == "sig":
                if id(inst) not in env:
                    env[id(inst)] = self.design.create_signal(
                        f"{self.path}.{inst.name or id(inst)}",
                        inst.type, env[id(inst.operands[0])])
            elif op in ("var", "alloc"):
                env[id(inst)] = Cell(env[id(inst.operands[0])])
            elif op == "free":
                pass
            elif op == "ld":
                env[id(inst)] = _as_cellref(env[id(inst.operands[0])]).load()
            elif op == "st":
                _as_cellref(env[id(inst.operands[0])]).store(
                    env[id(inst.operands[1])])
            elif op == "call":
                result = self.functions.call(
                    inst.callee, [env[id(o)] for o in inst.operands],
                    where=f"in {self.path}")
                if not inst.type.is_void:
                    env[id(inst)] = result
            elif op == "br":
                self.prev_block = self.block
                if inst.is_conditional_branch:
                    cond = env[id(inst.operands[0])]
                    self.block = (inst.operands[2] if cond
                                  else inst.operands[1])
                else:
                    self.block = inst.operands[0]
                self.index = 0
            elif op == "wait":
                self.resume_block = inst.wait_dest()
                time_op = inst.wait_time()
                timeout = env[id(time_op)] if time_op is not None else None
                signals = [env[id(s)] for s in inst.wait_signals()]
                self._subscribe(signals, timeout)
                return
            elif op == "halt":
                self.status = "halted"
                return
            else:
                raise SimulationError(
                    f"{self.path}: '{op}' not allowed in a process")

    def _drive(self, kernel, inst):
        # One process is one driver (VHDL-style): transport cancellation
        # applies across all of the process's drv statements on a signal.
        cond = inst.drv_condition()
        if cond is not None and not self.env[id(cond)]:
            return
        kernel.schedule_drive(
            self.order,
            self.env[id(inst.drv_signal())],
            self.env[id(inst.drv_value())],
            self.env[id(inst.drv_delay())])


class _Timeout:
    """Resume-after-timeout token; stale tokens are ignored."""

    __slots__ = ("proc", "token")

    def __init__(self, proc, token):
        self.proc = proc
        self.token = token

    @property
    def order(self):
        return self.proc.order

    def run(self, kernel):
        if self.proc.status == "waiting" and self.proc.wait_token == self.token:
            self.proc.run(kernel)


def _signal_and_path(target):
    if isinstance(target, SignalRef):
        return target.signal, target.path
    return target, ()


class EntityInstance:
    """One elaborated entity: a data-flow activity.

    The body is executed once at elaboration (creating signals, recursing
    into ``inst``), and re-executed whenever an observed signal changes.
    """

    def __init__(self, design, unit, path, port_map):
        self.design = design
        self.unit = unit
        self.path = path
        self.order = design.next_order()
        self.env = dict(port_map)
        self.reg_state = {}  # id(reg inst) -> [prev trigger values]
        self.functions = _FunctionInterpreter(design, design.kernel)
        self._observed = {}
        design.activities.append(self)
        self._initial_eval()

    def _observe(self, target):
        sig, _ = _signal_and_path(target)
        sig = sig.find()
        if id(sig) not in self._observed:
            self._observed[id(sig)] = sig
            self.design.kernel.add_entity_waiter(sig, self)

    def _initial_eval(self):
        kernel = self.design.kernel
        env = self.env
        for inst in self.unit.body:
            op = inst.opcode
            if op == "sig":
                env[id(inst)] = self.design.create_signal(
                    f"{self.path}.{inst.name or id(inst)}",
                    inst.type, env[id(inst.operands[0])])
            elif op == "inst":
                self._instantiate(inst)
            elif op == "con":
                a = env[id(inst.operands[0])]
                b = env[id(inst.operands[1])]
                _connect(a, b)
            elif op == "del":
                source = env[id(inst.operands[0])]
                init = kernel.probe(source)
                env[id(inst)] = self.design.create_signal(
                    f"{self.path}.{inst.name or id(inst)}",
                    inst.type, init)
                self._observe(source)
            elif op == "prb":
                target = env[id(inst.operands[0])]
                self._observe(target)
                env[id(inst)] = kernel.probe(target)
            elif op == "reg":
                self._observe(env[id(inst.reg_signal())])
                self.reg_state[id(inst)] = [
                    t["trigger"] for t in self._trigger_values(inst)]
            elif op == "drv":
                self._drive(kernel, inst)
            else:
                self._eval_dataflow(inst)

    def _instantiate(self, inst):
        callee = self.design.module.get(inst.callee)
        if callee is None or isinstance(callee, UnitDecl):
            raise SimulationError(
                f"{self.path}: inst of undefined unit @{inst.callee}")
        port_map = {}
        operands = inst.inst_inputs() + inst.inst_outputs()
        for arg, operand in zip(callee.args, operands):
            port_map[id(arg)] = self.env[id(operand)]
        child_path = f"{self.path}.{inst.callee}"
        if callee.is_entity:
            EntityInstance(self.design, callee, child_path, port_map)
        else:
            ProcessInstance(self.design, callee, child_path, port_map)

    def _trigger_values(self, inst):
        out = []
        for t in inst.reg_triggers():
            out.append({
                "mode": t["mode"],
                "value": self.env[id(t["value"])],
                "trigger": self.env[id(t["trigger"])],
                "cond": (self.env[id(t["cond"])]
                         if t["cond"] is not None else None),
                "delay": (self.env[id(t["delay"])]
                          if t["delay"] is not None else None),
            })
        return out

    def _eval_dataflow(self, inst):
        env = self.env
        op = inst.opcode
        if op in ("extf", "exts"):
            env[id(inst)] = _interp_ext(inst, env)
        elif op in _PURE_OPS or op == "insf":
            env[id(inst)] = evaluate(
                inst, [env[id(o)] for o in inst.operands])
        elif op == "call":
            result = self.functions.call(
                inst.callee, [env[id(o)] for o in inst.operands],
                where=f"in {self.path}")
            if not inst.type.is_void:
                env[id(inst)] = result
        else:
            raise SimulationError(
                f"{self.path}: '{op}' not allowed in an entity")

    def _drive(self, kernel, inst):
        # One entity is one driver for its drv instructions; reg and del
        # each drive through their own key (see _run_reg / run).
        cond = inst.drv_condition()
        if cond is not None and not self.env[id(cond)]:
            return
        kernel.schedule_drive(
            self.order,
            self.env[id(inst.drv_signal())],
            self.env[id(inst.drv_value())],
            self.env[id(inst.drv_delay())])

    # -- activity interface: re-execute the data-flow graph --------------------

    def run(self, kernel):
        from ..ir.values import TimeValue

        env = self.env
        for inst in self.unit.body:
            op = inst.opcode
            if op in ("sig", "inst", "con"):
                continue
            if op == "prb":
                env[id(inst)] = kernel.probe(env[id(inst.operands[0])])
            elif op == "del":
                source = env[id(inst.operands[0])]
                delay = env[id(inst.operands[1])]
                kernel.schedule_drive(
                    ("del", self.order, id(inst)), env[id(inst)],
                    kernel.probe(source), delay)
            elif op == "drv":
                self._drive(kernel, inst)
            elif op == "reg":
                self._run_reg(kernel, inst)
            else:
                self._eval_dataflow(inst)

    _EPSILON = None

    def _run_reg(self, kernel, inst):
        from ..ir.values import TimeValue

        if EntityInstance._EPSILON is None:
            EntityInstance._EPSILON = TimeValue(0, 0, 1)
        prev_list = self.reg_state[id(inst)]
        triggers = self._trigger_values(inst)
        for i, t in enumerate(triggers):
            prev = prev_list[i]
            cur = t["trigger"]
            mode = t["mode"]
            fired = (
                (mode == "rise" and prev == 0 and cur == 1)
                or (mode == "fall" and prev == 1 and cur == 0)
                or (mode == "both" and prev != cur)
                or (mode == "high" and cur == 1)
                or (mode == "low" and cur == 0))
            prev_list[i] = cur
            if not fired:
                continue
            if t["cond"] is not None and not t["cond"]:
                continue
            delay = t["delay"] if t["delay"] is not None else \
                EntityInstance._EPSILON
            kernel.schedule_drive(
                ("reg", self.order, id(inst)),
                self.env[id(inst.reg_signal())], t["value"], delay)
            break  # first firing trigger wins


def _connect(a, b):
    sig_a, path_a = _signal_and_path(a)
    sig_b, path_b = _signal_and_path(b)
    if path_a or path_b:
        raise SimulationError("con of projected sub-signals is not supported")
    sig_a.connect(sig_b)
