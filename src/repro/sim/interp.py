"""LLHD-Sim: the reference interpreter.

Deliberately the *simplest possible* simulator of the LLHD instruction set
(paper, section 6.1): units are executed by walking their instructions.
Since PR 2 the walk is *predecoded*: each unit is lowered once into a plan
of per-instruction step closures (:mod:`repro.sim.plan`), so the hot loop
no longer re-matches opcode strings or rebuilds operand lists — but values
still flow through an interpreted environment, instruction by instruction.
The compiled simulator (:mod:`repro.sim.blaze`) shares this module's
elaboration and the kernel, and replaces the instruction walk with
generated Python code.

Elaboration instantiates the design hierarchy: every ``sig`` becomes a
:class:`~repro.sim.engine.SignalInstance`, every ``inst`` recursively
instantiates the child unit with its ports bound, processes become
suspended control-flow activities, and entity bodies are evaluated once
(their "execute all instructions at initialization" semantics) while
registering data-flow sensitivity for re-execution.

Batch simulation (``lanes`` > 1) elaborates the same hierarchy over
lane-widened values (see :mod:`repro.sim.lanes`) in one of two modes:

* *vectorized* (``replicate=False``): every activity executes once per
  activation covering all K lanes; lane-divergent control raises
  :class:`~repro.sim.lanes.LaneDivergence`;
* *replicated* (``replicate=True``): each process is elaborated K times
  (:class:`LaneProcessInstance`), replica k seeing lane k of every port
  through lane-projection paths — entities stay vectorized in both modes.
"""

from __future__ import annotations

from ..ir.units import UnitDecl
from .engine import Kernel, SignalInstance, SignalRef
from .eval import evaluate, path_of
from .lanes import (
    evaluate_lanes, intrinsic_lanes, lane_default, lane_path,
    path_of_lanes, uindex, uindex_int,
)
from .lanes import drive_cond_lanes
from .plan import (
    Cell, CellRef, _as_cellref, _dynamic_index, _Timeout,
    build_entity_plan, build_function_plan, build_process_plan,
)
from .values import SimulationError, default_value, extract_path, lane_extract

_PURE_OPS = frozenset({
    "const", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
    "srem", "and", "or", "xor", "not", "neg", "shl", "shr", "eq", "neq",
    "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge", "zext", "sext",
    "trunc", "array", "struct", "mux", "inss",
})


class Design:
    """An elaborated design bound to a kernel."""

    # Instance classes used by elaboration; BlazeDesign swaps these for
    # the compiled variants (assigned after the classes are defined).
    entity_class = None
    process_class = None
    lane_process_class = None

    def __init__(self, module, top, kernel, lanes=1, replicate=False,
                 batch_units=None):
        self.module = module
        self.top = top
        self.kernel = kernel
        self.lanes = lanes
        # replicate may be set with lanes == 1 (a 1-lane BatchStimulus):
        # the replica machinery then degenerates to scalar execution over
        # empty lane-projection paths.
        self.replicate = bool(replicate)
        # BatchStimulus: process unit name -> per-lane replacement units.
        self.batch_units = batch_units or {}
        self.activities = []
        self.signal_by_name = {}
        self._order = 0
        self._proc_plans = {}     # id(unit) -> entry BlockPlan
        self._entity_plans = {}   # id(unit) -> tuple of steps
        self._func_plans = {}     # (id(unit), lanes) -> entry BlockPlan

    def next_order(self):
        self._order += 1
        return self._order

    def create_signal(self, name, type, initial):
        sig = self.kernel.create_signal(name, type, initial)
        self.signal_by_name[name] = sig
        return sig

    def signal(self, name):
        """Look up a signal by hierarchical name (e.g. ``"top.clk"``)."""
        return self.signal_by_name[name]

    def proc_plan(self, unit):
        """The predecoded plan for a process unit (built once per unit).

        Replicated-mode processes run per lane on lane-projected ports,
        so they use the ordinary *scalar* plan; only vectorized mode
        builds lane-widened process plans.
        """
        plan = self._proc_plans.get(id(unit))
        if plan is None:
            lanes = 1 if self.replicate else self.lanes
            plan = self._proc_plans[id(unit)] = build_process_plan(
                unit, self.kernel, lanes)
        return plan

    def entity_plan(self, unit):
        """The predecoded re-activation steps for an entity unit."""
        plan = self._entity_plans.get(id(unit))
        if plan is None:
            plan = self._entity_plans[id(unit)] = build_entity_plan(
                unit, self.kernel, self.lanes, self.replicate)
        return plan

    def function_plan(self, unit, lanes=1):
        """The predecoded plan for a function unit.

        In replicated mode both variants coexist: process replicas call
        the scalar plan, vectorized entities the lane-widened one.
        """
        key = (id(unit), lanes)
        plan = self._func_plans.get(key)
        if plan is None:
            plan = self._func_plans[key] = build_function_plan(
                unit, self.kernel, lanes)
        return plan

    def finalize(self):
        """Hook called when the hierarchy is fully elaborated."""
        labels = self.kernel.driver_labels
        for activity in self.activities:
            path = getattr(activity, "path", None)
            if path is not None:
                labels[activity.order] = path
            bind = getattr(activity, "bind", None)
            if bind is not None:
                bind()


def elaborate(module, top, kernel=None, trace=None, lanes=1,
              replicate=False, batch_units=None):
    """Elaborate ``module`` starting at entity ``top``; returns a Design."""
    if kernel is None:
        kernel = Kernel(trace=trace)
    kernel.lanes = lanes
    unit = module.get(top)
    if unit is None or isinstance(unit, UnitDecl):
        raise SimulationError(f"top unit @{top} is not defined")
    if not unit.is_entity:
        raise SimulationError(f"top unit @{top} must be an entity")
    design = Design(module, unit, kernel, lanes, replicate, batch_units)
    ports = {}
    for arg in unit.args:
        sig = design.create_signal(
            f"{top}.{arg.name}", arg.type,
            lane_default(arg.type.element, lanes))
        ports[id(arg)] = sig
    EntityInstance(design, unit, top, ports)
    design.finalize()
    return design


class _FunctionFrame:
    """One function invocation: the activity context for plan steps."""

    __slots__ = ("functions", "path", "design", "result")

    def __init__(self, functions, path, design):
        self.functions = functions
        self.path = path
        self.design = design
        self.result = None


class _FunctionInterpreter:
    """Immediate (zero-time) execution of a function body.

    ``lanes`` > 1 runs function bodies over lane-widened values and
    routes ``llhd.*`` intrinsics through the lane-attributing wrapper
    (which needs the call site's operand ``types`` to slice arguments).
    """

    MAX_STEPS = 2_000_000

    def __init__(self, design, kernel, lanes=1):
        self.design = design
        self.kernel = kernel
        self.lanes = lanes

    def call(self, name, args, where="", types=None):
        lanes = self.lanes
        if name.startswith("llhd."):
            if lanes > 1:
                return intrinsic_lanes(
                    self.kernel, name, args, types, lanes, where)
            return self.kernel.intrinsic(name, args, where)
        design = self.design
        func = design.module.get(name)
        if func is None or isinstance(func, UnitDecl):
            raise SimulationError(f"call to undefined function @{name}")
        env = {}
        for arg, value in zip(func.args, args):
            env[id(arg)] = value
        frame = _FunctionFrame(self, f"@{name}", design)
        bp = design.function_plan(func, lanes)
        budget = self.MAX_STEPS
        executed = 0
        while bp is not None:
            steps = bp.steps
            for step in steps:
                step(env, frame)
            executed += len(steps) + 1
            if executed > budget:
                raise SimulationError(
                    f"@{name}: function execution exceeded "
                    f"{self.MAX_STEPS} steps")
            bp = bp.term(env, frame)
        return frame.result


def _interp_ext(inst, env):
    """extf/exts on values, signals, and pointers (elaboration walk)."""
    base = env[id(inst.operands[0])]
    if inst.opcode == "extf":
        index = inst.attrs.get("index")
        if index is None:
            index = _dynamic_index(env[id(inst.operands[1])])
        step = ("field", index)
    else:
        step = path_of(inst)
    if isinstance(base, (SignalInstance, SignalRef)):
        if isinstance(base, SignalInstance):
            base = SignalRef(base, (), base.type)
        return base.project(step, inst.type)
    if isinstance(base, (Cell, CellRef)):
        return _as_cellref(base).project(step)
    return extract_path(base, (step,))


def _interp_ext_lanes(inst, env, lanes):
    """Lane-mode extf/exts for the elaboration walk.

    Mirrors ``plan._ext_step_lanes``: reference projections need a
    lane-uniform index and lane-aware slice steps; extractions from plain
    values go through the generic lane evaluator.
    """
    from ..ir.ninevalued import LogicVec

    base = env[id(inst.operands[0])]
    if isinstance(base, (SignalInstance, SignalRef, Cell, CellRef)):
        if inst.opcode == "extf":
            index = inst.attrs.get("index")
            if index is None:
                iv = env[id(inst.operands[1])]
                if isinstance(iv, LogicVec):
                    index = uindex(iv, lanes)
                else:
                    ity = inst.operands[1].type
                    index = uindex_int(
                        iv, ity.width if ity.is_int else 1, lanes)
            step = ("field", index)
        else:
            step = path_of_lanes(inst, lanes)
        if isinstance(base, SignalInstance):
            base = SignalRef(base, (), base.type)
        if isinstance(base, SignalRef):
            return base.project(step, inst.type)
        return _as_cellref(base).project(step)
    return evaluate_lanes(
        inst, [env[id(o)] for o in inst.operands], lanes)


class ProcessInstance:
    """One elaborated process: a suspended control-flow activity."""

    def __init__(self, design, unit, path, port_map):
        self.design = design
        self.unit = unit
        self.path = path
        self.order = design.next_order()
        self.env = dict(port_map)  # id(value) -> runtime value
        self.status = "ready"
        self.wait_token = 0
        self.subscribed = []
        self._bp = None            # current BlockPlan (predecoded)
        self.functions = _FunctionInterpreter(
            design, design.kernel,
            design.lanes if not design.replicate else 1)
        design.activities.append(self)
        design.kernel.schedule_initial(self)

    # -- activity interface ----------------------------------------------------

    def run(self, kernel, timed_out=False):
        if self.status == "waiting":
            self._wake()
        elif self.status != "ready":
            return
        self.status = "running"
        self._execute(kernel)

    def _wake(self):
        subscribed = self.subscribed
        if subscribed:
            order = self.order
            for sig in subscribed:
                sig.proc_waiters.pop(order, None)
            self.subscribed = []
        self.wait_token += 1

    def _subscribe(self, signals, timeout):
        self.status = "waiting"
        order = self.order
        subscribed = self.subscribed
        for target in signals:
            sig = target.signal if type(target) is SignalRef else target
            if sig._rep is not None:
                sig = sig.find()
            sig.proc_waiters[order] = self
            subscribed.append(sig)
        if timeout is not None:
            self.design.kernel.schedule_resume(
                _Timeout(self, self.wait_token), timeout)

    # -- execution ----------------------------------------------------------------

    def _execute(self, kernel):
        bp = self._bp
        if bp is None:
            bp = self._bp = self.design.proc_plan(self.unit)
        env = self.env
        while bp is not None:
            for step in bp.steps:
                step(env, self)
            bp = bp.term(env, self)


class LaneProcessInstance(ProcessInstance):
    """One lane's replica of a process (replicated batch mode).

    The replica's ports are lane projections of the shared batched nets,
    so it executes the unchanged *scalar* plan.  Because nets wake their
    waiters when *any* lane changes, each replica captures its lane's
    slice of every subscribed net at suspension and swallows wake-ups
    that left its own lane untouched (re-arming its subscriptions) —
    scalar-equivalent wake-up semantics, which the per-lane trace demux
    relies on.  A replica whose lane has finished is dead and returns
    immediately.
    """

    def __init__(self, design, unit, path, port_map, lane):
        self.lane = lane
        self._wait_capture = None
        super().__init__(design, unit, path, port_map)

    def run(self, kernel, timed_out=False):
        lane = self.lane
        if lane in kernel.finished_lanes:
            return
        if self.status == "waiting":
            if not timed_out and not self._lane_visible_change(kernel):
                # Spurious wake: another lane moved.  Re-arm.
                order = self.order
                for sig in self.subscribed:
                    sig.proc_waiters[order] = self
                return
            self._wake()
        elif self.status != "ready":
            return
        self.status = "running"
        kernel.current_lane = lane
        try:
            self._execute(kernel)
        finally:
            kernel.current_lane = None
        if self.status == "waiting":
            self._capture(kernel)

    def _capture(self, kernel):
        lane, lanes = self.lane, self.design.lanes
        self._wait_capture = [
            lane_extract(sig.value, sig.type.element, lane, lanes)
            for sig in self.subscribed]

    def _lane_visible_change(self, kernel):
        capture = self._wait_capture
        if capture is None:
            return True
        lane, lanes = self.lane, self.design.lanes
        for sig, old in zip(self.subscribed, capture):
            if lane_extract(sig.value, sig.type.element, lane, lanes) != old:
                return True
        return False


def _signal_and_path(target):
    if isinstance(target, SignalRef):
        return target.signal, target.path
    return target, ()


class EntityInstance:
    """One elaborated entity: a data-flow activity.

    The body is executed once at elaboration (creating signals, recursing
    into ``inst``), and re-executed whenever an observed signal changes.
    Re-execution walks the predecoded entity plan.  Entities stay
    lane-vectorized in both batch modes: their bodies are control-free
    data flow, so per-lane divergence is handled value-wise.
    """

    def __init__(self, design, unit, path, port_map):
        self.design = design
        self.unit = unit
        self.path = path
        self.order = design.next_order()
        self.env = dict(port_map)
        self.reg_state = {}  # id(reg inst) -> [prev trigger values]
        self.functions = _FunctionInterpreter(
            design, design.kernel, design.lanes)
        self._observed = {}
        self._plan = None
        design.activities.append(self)
        self._initial_eval()

    def _observe(self, target):
        sig, _ = _signal_and_path(target)
        sig = sig.find()
        if id(sig) not in self._observed:
            self._observed[id(sig)] = sig
            self.design.kernel.add_entity_waiter(sig, self)

    def _initial_eval(self):
        kernel = self.design.kernel
        env = self.env
        # Unnamed nets (techmap-generated cell outputs) get a
        # deterministic body-positional fallback name — the same
        # convention repro.lint uses, so static and dynamic reports
        # line up and trace comparisons never depend on heap addresses.
        for position, inst in enumerate(self.unit.body):
            op = inst.opcode
            if op == "sig":
                env[id(inst)] = self.design.create_signal(
                    f"{self.path}.{inst.name or f'%{position}'}",
                    inst.type, env[id(inst.operands[0])])
            elif op == "inst":
                self._instantiate(inst)
            elif op == "con":
                a = env[id(inst.operands[0])]
                b = env[id(inst.operands[1])]
                _connect(a, b)
            elif op == "del":
                source = env[id(inst.operands[0])]
                init = kernel.probe(source)
                env[id(inst)] = self.design.create_signal(
                    f"{self.path}.{inst.name or f'%{position}'}",
                    inst.type, init)
                self._observe(source)
            elif op == "prb":
                target = env[id(inst.operands[0])]
                self._observe(target)
                env[id(inst)] = kernel.probe(target)
            elif op == "reg":
                self._observe(env[id(inst.reg_signal())])
                self.reg_state[id(inst)] = [
                    self.env[id(t["trigger"])] for t in inst.reg_triggers()]
            elif op == "drv":
                self._drive(kernel, inst)
            else:
                self._eval_dataflow(inst)

    def _instantiate(self, inst):
        design = self.design
        callee = design.module.get(inst.callee)
        if callee is None or isinstance(callee, UnitDecl):
            raise SimulationError(
                f"{self.path}: inst of undefined unit @{inst.callee}")
        operands = inst.inst_inputs() + inst.inst_outputs()
        child_path = f"{self.path}.{inst.callee}"
        if callee.is_entity:
            port_map = {}
            for arg, operand in zip(callee.args, operands):
                port_map[id(arg)] = self.env[id(operand)]
            design.entity_class(design, callee, child_path, port_map)
            return
        if not design.replicate:
            port_map = {}
            for arg, operand in zip(callee.args, operands):
                port_map[id(arg)] = self.env[id(operand)]
            design.process_class(design, callee, child_path, port_map)
            return
        # Replicated batch mode: one scalar replica per lane, each seeing
        # lane k of every batched port net through a lane projection.
        lanes = design.lanes
        for k in range(lanes):
            unit_k = callee
            swap = design.batch_units.get(inst.callee)
            if swap is not None:
                unit_k = swap[k]
            port_map = {}
            for arg, operand in zip(unit_k.args, operands):
                target = self.env[id(operand)]
                path = lane_path(arg.type.element, k, lanes)
                if type(target) is SignalRef:
                    ref = SignalRef(
                        target.signal, target.path + path, arg.type)
                else:
                    ref = SignalRef(target, path, arg.type)
                port_map[id(arg)] = ref
            design.lane_process_class(
                design, unit_k, f"{child_path}#l{k}", port_map, k)

    def _eval_dataflow(self, inst):
        env = self.env
        op = inst.opcode
        lanes = self.design.lanes
        if op in ("extf", "exts"):
            if lanes > 1:
                env[id(inst)] = _interp_ext_lanes(inst, env, lanes)
            else:
                env[id(inst)] = _interp_ext(inst, env)
        elif op in _PURE_OPS or op == "insf":
            if lanes > 1:
                env[id(inst)] = evaluate_lanes(
                    inst, [env[id(o)] for o in inst.operands], lanes)
            else:
                env[id(inst)] = evaluate(
                    inst, [env[id(o)] for o in inst.operands])
        elif op == "call":
            result = self.functions.call(
                inst.callee, [env[id(o)] for o in inst.operands],
                where=f"in {self.path}",
                types=tuple(o.type for o in inst.operands))
            if not inst.type.is_void:
                env[id(inst)] = result
        else:
            raise SimulationError(
                f"{self.path}: '{op}' not allowed in an entity")

    def _drive(self, kernel, inst):
        # One entity is one driver for its drv instructions; reg and del
        # each drive through their own key (see plan._reg_step/_del_step).
        cond = inst.drv_condition()
        lanes = self.design.lanes
        if cond is not None and lanes > 1:
            drive_cond_lanes(
                kernel, self.order, id(inst),
                self.env[id(inst.drv_signal())], inst.drv_value().type,
                self.env[id(inst.drv_value())],
                self.env[id(inst.drv_delay())],
                self.env[id(cond)], lanes)
            return
        if cond is not None and not self.env[id(cond)]:
            return
        kernel.schedule_drive(
            self.order,
            self.env[id(inst.drv_signal())],
            self.env[id(inst.drv_value())],
            self.env[id(inst.drv_delay())])

    # -- activity interface: re-execute the data-flow graph --------------------

    def run(self, kernel):
        plan = self._plan
        if plan is None:
            plan = self._plan = self.design.entity_plan(self.unit)
        env = self.env
        for step in plan:
            step(env, self)


Design.entity_class = EntityInstance
Design.process_class = ProcessInstance
Design.lane_process_class = LaneProcessInstance


def _connect(a, b):
    sig_a, path_a = _signal_and_path(a)
    sig_b, path_b = _signal_and_path(b)
    if path_a or path_b:
        raise SimulationError("con of projected sub-signals is not supported")
    sig_a.connect(sig_b)
