"""Code generation and the on-disk compile cache for levelized cones.

Two halves:

* **templates** — each library cell *type* compiles once to a short
  straight-line Python recipe via the blaze :class:`UnitCompiler` (the
  per-opcode expression emitter is shared with the event-driven
  compiled engine; the input ports become ``__INk__`` placeholders that
  are substituted with ``V[slot]`` reads per gate instance);
* **cone modules** — :func:`generate_source` concatenates the gate
  recipes in levelized order into ``_settle_all(V)`` plus one
  specialized ``_settle_d<k>(V)`` per clock domain, each returning the
  list of net slots it changed.  The module is self-contained given the
  blaze runtime helper namespace and carries its own identity
  (``KEY``/``N_NETS``/``ENGINE_VERSION``) for validation.

Generated modules are cached on disk, content-addressed by the sha256
of the module's bitcode (:func:`repro.ir.bitcode.write_module`) plus
the top name and an engine-version salt — the levelization itself is
deterministic (stable slot numbering, heap-ordered Kahn), so the same
bitcode always regenerates the same source.  A warm run skips code
generation entirely; a corrupted, stale, or truncated entry fails
validation and falls back to a fresh compile that overwrites it.  The
cache directory is ``--cache-dir``, else ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``; writes are atomic
(temp file + rename) and best-effort.
"""

from __future__ import annotations

import hashlib
import os
import tempfile

from ..ir.instructions import Instruction
from ..ir.ninevalued import LogicVec
from ..ir.values import TimeValue
from .blaze import _BASE_GLOBALS, UnitCompiler
from .eval import path_of
from .values import SimulationError

#: Bump to invalidate every cached cone (cache keys carry the salt).
ENGINE_VERSION = 1


class TemplateError(Exception):
    """The cell body cannot be turned into a straight-line recipe."""


def _const_literal(value):
    """A source expression reconstructing a cell-body constant."""
    if isinstance(value, bool):
        return repr(int(value))
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, LogicVec):
        return repr(value)   # LogicVec("01XZ...") round-trips
    if isinstance(value, tuple):
        inner = ", ".join(_const_literal(v) for v in value)
        tail = "," if len(value) == 1 else ""
        return f"({inner}{tail})"
    raise TemplateError(
        f"cell constant {value!r} has no source literal")


class CellTemplate:
    """One cell type's body as substitutable straight-line Python."""

    __slots__ = ("unit", "lines", "out_expr", "n_inputs")

    def __init__(self, unit, lines, out_expr, n_inputs):
        self.unit = unit
        self.lines = lines
        self.out_expr = out_expr
        self.n_inputs = n_inputs


def _projection_probe_expr(comp, placeholders, src):
    """Expression for a probe through an extf/exts chain of a port
    (memory read-port wiring cells)."""
    chain = []
    value = src
    while isinstance(value, Instruction) and value.opcode in ("extf",
                                                              "exts"):
        chain.append(value)
        value = value.operands[0]
    root_ph = placeholders.get(id(value))
    if root_ph is None:
        raise TemplateError("probe source is not an input port")
    steps = []
    for inst in reversed(chain):
        if inst.opcode == "exts":
            steps.append(repr(path_of(inst)))
        else:
            index = inst.attrs.get("index")
            if index is not None:
                steps.append(f"('field', {index})")
            else:
                nm = comp.names.get(id(inst.operands[1]))
                if nm is None:
                    raise TemplateError(
                        "dynamic field index is not a port probe")
                steps.append(f"('field', _idx({nm}))")
    return f"_extract({root_ph}, ({', '.join(steps)},))"


def build_template(unit):
    """Compile one library cell entity into a :class:`CellTemplate`.

    Only called for bodies that already passed
    :func:`repro.interop.techmap.cell_eval_form` comb classification;
    raises :class:`TemplateError` for anything it cannot express as
    self-contained source (the caller falls back to event-driven
    execution for that cell type).
    """
    comp = UnitCompiler(unit)
    placeholders = {}
    for k, arg in enumerate(unit.inputs):
        placeholders[id(arg)] = f"__IN{k}__"
    lines = []
    out_expr = None
    probes = 0
    for inst in unit.body:
        op = inst.opcode
        if op == "drv":
            out_expr = comp.name(inst.drv_value())
            continue
        if op == "prb":
            src = inst.operands[0]
            ph = placeholders.get(id(src))
            if ph is not None:
                comp.names[id(inst)] = ph
                continue
            expr = _projection_probe_expr(comp, placeholders, src)
            name = f"p{probes}"
            probes += 1
            comp.names[id(inst)] = name
            lines.append(f"{name} = {expr}")
            continue
        if op in ("extf", "exts") and inst.type.is_signal:
            continue   # input projection chain, folded at the probe
        if op == "const":
            value = inst.attrs["value"]
            if isinstance(value, TimeValue):
                continue   # the drive delay; not part of the data path
            comp.names[id(inst)] = _const_literal(value)
            continue
        if id(inst) in comp._elided:
            continue   # fused into its consuming mux
        try:
            expr = comp.expr(inst)
        except SimulationError as exc:
            raise TemplateError(str(exc))
        lines.append(f"{comp.name(inst)} = {expr}")
    if out_expr is None:
        raise TemplateError("cell has no output drive")
    if comp._const_counter:
        raise TemplateError("cell body binds runtime-only constants")
    return CellTemplate(unit, lines, out_expr, len(unit.inputs))


# -- source generation ---------------------------------------------------------


def _emit_gate(buf, template, in_slots, out_slot):
    subst = [(f"__IN{k}__", f"V[{s}]")
             for k, s in enumerate(in_slots)]

    def sub(text):
        for ph, rep in subst:
            if ph in text:
                text = text.replace(ph, rep)
        return text

    for line in template.lines:
        buf.append(f"    {sub(line)}")
    buf.append(f"    t = {sub(template.out_expr)}")
    buf.append(f"    if t != V[{out_slot}]:")
    buf.append(f"        V[{out_slot}] = t")
    buf.append(f"        ap({out_slot})")


def _emit_settle(buf, name, gates, members=None):
    buf.append(f"def {name}(V):")
    buf.append("    ch = []")
    buf.append("    ap = ch.append")
    positions = range(len(gates)) if members is None else members
    for pos in positions:
        template, in_slots, out_slot = gates[pos]
        _emit_gate(buf, template, in_slots, out_slot)
    buf.append("    return ch")


def generate_source(plan, key):
    """The cone as a self-contained Python module (one string)."""
    buf = []
    buf.append("# Levelized cone generated by repro.sim.compiled.")
    buf.append("# Safe to delete; regenerated on the next cold run.")
    buf.append(f"ENGINE_VERSION = {ENGINE_VERSION}")
    buf.append(f"KEY = {key!r}")
    buf.append(f"N_NETS = {len(plan.slot_sigs)}")
    buf.append(f"N_GATES = {len(plan.gates)}")
    buf.append("")
    _emit_settle(buf, "_settle_all", plan.gates)
    for di, (slot, covered, members) in enumerate(plan.domains):
        buf.append("")
        _emit_settle(buf, f"_settle_d{di}", plan.gates, members)
    buf.append("")
    if plan.domains:
        buf.append("DOMAINS = (")
        for di, (slot, covered, members) in enumerate(plan.domains):
            cov = ", ".join(map(str, sorted(covered)))
            buf.append(f"    ({slot}, frozenset(({cov},)), "
                       f"_settle_d{di}),")
        buf.append(")")
    else:
        buf.append("DOMAINS = ()")
    buf.append("")
    return "\n".join(buf)


# -- the content-addressed cache -----------------------------------------------


def default_cache_dir():
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def cone_cache_key(module, top):
    """sha256 over the module bitcode, the top, and the version salt."""
    from ..ir.bitcode import write_module

    digest = hashlib.sha256()
    digest.update(f"levelized:{ENGINE_VERSION}:{top}:".encode())
    digest.update(write_module(module))
    return digest.hexdigest()


def _load(source, key, n_nets):
    """Exec a cone module; None when it fails validation."""
    ns = dict(_BASE_GLOBALS)
    try:
        exec(compile(source, "<levelized-cone>", "exec"), ns)
    except Exception:
        return None
    if (ns.get("ENGINE_VERSION") != ENGINE_VERSION
            or ns.get("KEY") != key
            or ns.get("N_NETS") != n_nets
            or not callable(ns.get("_settle_all"))
            or not isinstance(ns.get("DOMAINS"), tuple)):
        return None
    return ns


def _store(path, source):
    """Atomic best-effort write (temp file + rename)."""
    try:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(source)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass   # a read-only or full cache never fails the simulation


def _count(stats, hits, misses, errors):
    stats["cache_hits"] = stats.get("cache_hits", 0) + hits
    stats["cache_misses"] = stats.get("cache_misses", 0) + misses
    stats["cache_errors"] = stats.get("cache_errors", 0) + errors


def compile_cone(plan, module, top, cache_dir, stats):
    """The cone's executable namespace, via the cache when possible."""
    key = cone_cache_key(module, top)
    directory = cache_dir or default_cache_dir()
    path = os.path.join(directory, f"{key}.py")
    n_nets = len(plan.slot_sigs)
    errors = 0
    try:
        with open(path) as fh:
            cached = fh.read()
    except OSError:
        cached = None
    if cached is not None:
        ns = _load(cached, key, n_nets)
        if ns is not None:
            _count(stats, 1, 0, 0)
            return ns
        errors = 1
    source = generate_source(plan, key)
    ns = _load(source, key, n_nets)
    if ns is None:
        raise SimulationError(
            "levelized: generated cone module failed to compile "
            "(this is a bug in repro.sim.compiled)")
    _store(path, source)
    _count(stats, 0, 1, errors)
    return ns
