"""Levelized ahead-of-time execution of netlist combinational cones.

The fourth engine (``--engine levelized``).  The event-driven kernels
charge every techmap gate cell one activity wake plus one scheduled
drive per input change — the reason BENCH_sim.json records netlist
designs running multiples slower than their behavioural reference.
This engine removes the scheduler from the combinational cone entirely:

* during elaboration each ``inst`` of a library cell (recognized by
  :func:`repro.interop.techmap.cell_eval_form` — the classification is
  structural, not mapper-private) is *absorbed* instead of
  instantiated: combinational cells become straight-line gate records,
  ``reg`` storage cells (flip-flops, latches, memory write ports)
  become sequential cut points;
* at finalize the gates are levelized: Kahn's ordering over the cell
  nets, with storage cells cutting the feedback.  Gates that do not
  levelize form zero-delay cycles; they are diagnosed with the same
  Tarjan SCC machinery ``repro.lint.loops`` uses and evaluated by
  fixpoint iteration instead (the design stays runnable);
* :mod:`repro.sim.compiled` emits the ordered cone as one generated
  Python function per clock domain (plus a full-cone fallback), cached
  on disk keyed by the module's bitcode hash;
* at simulation time a single cone activity — always ordered *after*
  every process and fallback entity — wakes on any cone net change,
  settles the whole cone in-place, and commits the changed nets
  directly (recording the trace and resuming waiters), so a clock edge
  costs zero scheduler events per gate.

Anything that is not a recognized zero-delay cell — hierarchical
containers, cells with non-zero gate delays, ports bound to projected
sub-signals — falls back to the inherited compiled (blaze) event-driven
machinery and interoperates with the cone through the ordinary nets,
so hybrid designs still simulate; the fallback reasons are recorded on
``design.report`` for ``--list-designs``.

Traces stay byte-identical to interp/blaze/cycle because absorption
never creates or renames signals (cells create none) and the trace is
per-femtosecond last-wins: condensing a delta/epsilon cascade into one
settle leaves the final per-instant values unchanged.
"""

from __future__ import annotations

import heapq

from ..interop.techmap import cell_eval_form
from ..ir.units import UnitDecl
from ..ir.values import TimeValue
from .blaze import BlazeDesign, BlazeEntityInstance
from .engine import Kernel, SignalInstance, SignalRef
from .eval import logic_level
from .plan import _dynamic_index
from .values import SimulationError, default_value, insert_path

_ZERO = TimeValue(0)

#: Settle iteration cap: a cone needs at most one round per sequential
#: ripple stage; anything deeper is an oscillation.
MAX_SETTLE_ROUNDS = 1000


class LevelizeError(SimulationError):
    """The netlist cannot be levelized (multi-driven cone net)."""


# -- sequential cut points -----------------------------------------------------


class _SeqCell:
    """One absorbed storage cell, evaluated with ``plan._reg_step``'s
    exact trigger semantics (prev updated unconditionally per trigger,
    first hit wins, condition checked after the hit)."""

    __slots__ = ("index", "triggers", "prev", "path_proto", "root_slot",
                 "obs")

    def __init__(self, index, triggers, prev, path_proto, root_slot, obs):
        self.index = index
        self.triggers = triggers  # (mode, data, trig, cond, delay, logic)
        self.prev = prev
        self.path_proto = path_proto
        self.root_slot = root_slot
        self.obs = obs

    def evaluate(self, V):
        """Returns ``(path, data, delay)`` for a fire, else None."""
        prev_list = self.prev
        fire = None
        for i, (mode, data_slot, trig_slot, cond_slot, delay,
                is_logic) in enumerate(self.triggers):
            cur = V[trig_slot]
            prev = prev_list[i]
            prev_list[i] = cur
            if fire is not None:
                continue
            if is_logic:
                if mode == "rise":
                    hit = logic_level(cur) == 1 and \
                        logic_level(prev) in (0, -1)
                elif mode == "fall":
                    hit = logic_level(cur) == 0 and \
                        logic_level(prev) in (1, -1)
                elif mode == "both":
                    hit = prev != cur
                elif mode == "high":
                    hit = logic_level(cur) == 1
                else:
                    hit = logic_level(cur) == 0
            else:
                if mode == "rise":
                    hit = prev == 0 and cur == 1
                elif mode == "fall":
                    hit = prev == 1 and cur == 0
                elif mode == "both":
                    hit = prev != cur
                elif mode == "high":
                    hit = cur == 1
                else:
                    hit = cur == 0
            if not hit:
                continue
            if cond_slot is not None and not V[cond_slot]:
                continue
            fire = (_resolve_path(self.path_proto, V), V[data_slot], delay)
        return fire


def _resolve_path(proto, V):
    """Instantiate a projection path, reading dynamic indices from V."""
    if not proto:
        return ()
    path = []
    for step in proto:
        if step[0] == "fielddyn":
            path.append(("field", _dynamic_index(V[step[1]])))
        else:
            path.append(step)
    return tuple(path)


def _path_proto(root_ty, steps, port_slots):
    """Positional SeqCellForm steps -> insert_path steps over slots."""
    ty = root_ty
    proto = []
    for step in steps:
        if step[0] == "field":
            proto.append(step)
            ty = ty.fields[step[1]] if ty.is_struct else ty.element
        elif step[0] == "fielddyn":
            proto.append(("fielddyn", port_slots[step[1]]))
            ty = ty.element
        else:
            kind = "int" if ty.is_int else \
                "logic" if ty.is_logic else "array"
            proto.append(("slice", step[1], step[2], kind))
    return tuple(proto)


# -- the levelization plan -----------------------------------------------------


class ConePlan:
    """The levelized cone: slots, ordered gates, cut points, domains."""

    __slots__ = ("slot_sigs", "gates", "seqs", "seq_obs", "domains",
                 "has_cycles", "cycle_report", "levels")

    def __init__(self, slot_sigs, gates, seqs, seq_obs, domains,
                 has_cycles, cycle_report, levels):
        self.slot_sigs = slot_sigs
        self.gates = gates          # (template, in_slots, out_slot), ordered
        self.seqs = seqs
        self.seq_obs = seq_obs      # slot -> tuple of seq indices
        self.domains = domains      # (clock_slot, covered frozenset, members)
        self.has_cycles = has_cycles
        self.cycle_report = cycle_report
        self.levels = levels


#: Per-design domain-function cap: beyond this, extra clock nets just
#: use the full-cone settle (correct, merely less specialized).
MAX_DOMAINS = 8


def _build_plan(design):
    slot_of = {}
    slot_sigs = []

    def slot(sig):
        rep = sig.find()
        s = slot_of.get(id(rep))
        if s is None:
            s = slot_of[id(rep)] = len(slot_sigs)
            slot_sigs.append(rep)
        return s

    raw_gates = []
    producer = {}   # out slot -> producing gate index
    for unit, template, ins, out in design.comb_cells:
        in_slots = tuple(slot(p) for p in ins)
        out_slot = slot(out)
        if out_slot in producer:
            raise LevelizeError(
                f"levelized: net {slot_sigs[out_slot].name} is driven by "
                f"more than one combinational cell")
        producer[out_slot] = len(raw_gates)
        raw_gates.append((template, in_slots, out_slot))

    seqs = []
    for index, (unit, form, ports) in enumerate(design.seq_cells):
        port_slots = [slot(p) for p in ports]
        root_slot = port_slots[len(unit.inputs)]
        if root_slot in producer:
            raise LevelizeError(
                f"levelized: net {slot_sigs[root_slot].name} is driven by "
                f"both a combinational cell and a storage cell")
        triggers = tuple(
            (mode, port_slots[data], port_slots[trig],
             None if cond is None else port_slots[cond], delay,
             unit.args[trig].type.element.is_logic)
            for mode, data, trig, cond, delay in form.triggers)
        prev = [slot_sigs[t[2]].value for t in triggers]
        proto = _path_proto(unit.outputs[0].type.element, form.steps,
                            port_slots)
        seqs.append(_SeqCell(index, triggers, prev, proto, root_slot,
                             frozenset(port_slots)))

    seq_obs = {}
    for cell in seqs:
        for s in cell.obs:
            seq_obs.setdefault(s, []).append(cell.index)
    seq_obs = {s: tuple(lst) for s, lst in seq_obs.items()}

    # Kahn's algorithm over the gate-to-gate dependency edges; storage
    # roots and external nets are sources.  The ready heap keeps the
    # order deterministic (and therefore cache-stable).
    n = len(raw_gates)
    consumers = {}
    for gi, (_t, in_slots, _o) in enumerate(raw_gates):
        for s in set(in_slots):
            consumers.setdefault(s, []).append(gi)
    succ = [[] for _ in range(n)]
    indeg = [0] * n
    for gi, (_t, _ins, out_slot) in enumerate(raw_gates):
        for ci in consumers.get(out_slot, ()):
            succ[gi].append(ci)
            indeg[ci] += 1
    ready = [gi for gi in range(n) if indeg[gi] == 0]
    heapq.heapify(ready)
    order = []
    done = [False] * n
    level = [0] * n
    while ready:
        gi = heapq.heappop(ready)
        order.append(gi)
        done[gi] = True
        for ci in succ[gi]:
            indeg[ci] -= 1
            if level[gi] + 1 > level[ci]:
                level[ci] = level[gi] + 1
            if indeg[ci] == 0:
                heapq.heappush(ready, ci)
    levels = (max(level) + 1) if order else 0

    has_cycles = len(order) < n
    cycle_report = []
    if has_cycles:
        # Zero-delay cycles: diagnose with the lint SCC machinery and
        # append the members in condensation-topological order — the
        # cone then settles them by fixpoint iteration.
        from ..lint.loops import _sccs

        leftover = [gi for gi in range(n) if not done[gi]]
        left = set(leftover)
        succ_map = {gi: [c for c in succ[gi] if c in left]
                    for gi in leftover}
        sccs = list(_sccs(leftover, succ_map))
        for scc in sccs:
            if len(scc) > 1 or scc[0] in succ_map.get(scc[0], ()):
                cycle_report.append(sorted(
                    slot_sigs[raw_gates[gi][2]].name for gi in scc))
        for scc in reversed(sccs):
            order.extend(sorted(scc))

    gates = [raw_gates[gi] for gi in order]

    # Per-clock-domain gate subsets: seed with the clock net and the
    # storage roots it triggers, then close over the gate fanout.  A
    # stimulus contained in `covered` can only reach these gates.
    domains = []
    if not has_cycles and gates:
        trigger_slots = sorted(
            {t[2] for cell in seqs for t in cell.triggers})
        for c in trigger_slots[:MAX_DOMAINS]:
            covered = {c}
            for cell in seqs:
                if any(t[2] == c for t in cell.triggers):
                    covered.add(cell.root_slot)
            members = []
            for pos, (_t, in_slots, out_slot) in enumerate(gates):
                if any(s in covered for s in in_slots):
                    members.append(pos)
                    covered.add(out_slot)
            if members and len(members) < len(gates):
                domains.append((c, frozenset(covered), members))

    return ConePlan(slot_sigs, gates, seqs, seq_obs, domains,
                    has_cycles, cycle_report, levels)


# -- the cone activity ---------------------------------------------------------


class _Cone:
    """The single activity evaluating the whole levelized cone.

    Ordered after every other activity (its order is allocated at
    finalize), so within any delta round the testbench probes pre-settle
    values — the same interleaving the event-driven cascade produces.
    """

    def __init__(self, design, plan, ns):
        kernel = design.kernel
        self.design = design
        self.kernel = kernel
        self.plan = plan
        self.order = design.next_order()
        self.path = f"{design.top.name}.(levelized cone)"
        self.slot_sigs = plan.slot_sigs
        self.V = [sig.value for sig in plan.slot_sigs]
        self.seqs = plan.seqs
        self.seq_obs = plan.seq_obs
        self.settle_all = ns["_settle_all"]
        self.domains = ns["DOMAINS"]
        self.has_cycles = plan.has_cycles
        self._forced = False
        kernel.driver_labels[self.order] = self.path
        design.activities.append(self)
        # Only *boundary* nets — those no combinational gate produces
        # (primary inputs, testbench-driven stimulus, storage outputs) —
        # can change under the cone's feet: gate outputs are cone-owned.
        # Scanning and waiting on the boundary alone keeps the per-wake
        # cost proportional to the interface, not the cone size.
        produced = {out_slot for _t, _i, out_slot in plan.gates}
        self.scan = [(i, sig) for i, sig in enumerate(plan.slot_sigs)
                     if i not in produced]
        for _i, sig in self.scan:
            kernel.add_entity_waiter(sig, self)
        # Slots some combinational gate reads: a change anywhere else
        # (e.g. a clock that only feeds register triggers) cannot alter
        # a gate output, so the settle pass is skipped for it — the
        # clock's falling edge then costs one sequential scan, not a
        # full-domain re-evaluation.
        self.comb_roots = frozenset(
            s for _t, in_slots, _o in plan.gates for s in in_slots)
        # Per-slot resolved trace targets, filled lazily at first
        # commit: () when the trace filter drops the signal, else the
        # per-alias history lists — turning each record into a bare
        # list append instead of a method call + dict lookups (commits
        # dominate the marginal cost on change-dense cones).
        self._hists = [None] * len(plan.slot_sigs)
        kernel.schedule_initial(self)

    def run(self, kernel):
        V = self.V
        pending = set()
        for i, sig in self.scan:
            v = sig.value
            if v is not V[i] and v != V[i]:
                V[i] = v
                pending.add(i)
        force = not self._forced
        self._forced = True
        if not pending and not force:
            return
        changed = set(pending)
        comb_roots = self.comb_roots
        run_comb = force or not pending.isdisjoint(comb_roots)
        rounds = 0
        while True:
            fired = self._eval_seq(pending) if pending else set()
            if fired:
                changed |= fired
                if not fired.isdisjoint(comb_roots):
                    run_comb = True
            if run_comb:
                comb = self._eval_comb(pending | fired, force)
                force = False
                run_comb = False
                changed |= comb
                pending = fired | comb
            else:
                # No gate reads anything that changed (a clock that only
                # feeds register triggers): skip the settle, but a fired
                # register may still trigger another one downstream.
                pending = fired
            if not pending:
                break
            rounds += 1
            if rounds > MAX_SETTLE_ROUNDS:
                hot = sorted(self.slot_sigs[i].name for i in pending)
                raise SimulationError(
                    f"levelized cone did not settle at t={kernel.now[0]}fs "
                    f"(oscillating nets: {', '.join(hot[:8])})")
        self._commit(changed)

    def _eval_comb(self, stim, force):
        V = self.V
        if self.has_cycles:
            # Cyclic cones: iterate the full settle to a fixpoint.
            changed = set()
            for _ in range(MAX_SETTLE_ROUNDS):
                ch = self.settle_all(V)
                if not ch:
                    return changed
                changed.update(ch)
            raise SimulationError(
                "levelized: combinational loop did not converge "
                f"({'; '.join(','.join(c) for c in self.plan.cycle_report)})")
        if not force:
            for slot, covered, fn in self.domains:
                if stim <= covered:
                    return set(fn(V))
        return set(self.settle_all(V))

    def _eval_seq(self, stim):
        seq_obs = self.seq_obs
        todo = set()
        for s in stim:
            lst = seq_obs.get(s)
            if lst:
                todo.update(lst)
        if not todo:
            return set()
        V = self.V
        # Two phases: every cell evaluates against the pre-fire values
        # (the event-driven kernel matures all epsilon drives after the
        # whole round ran), then the fires commit in cell order.
        commits = []
        for si in sorted(todo):
            cell = self.seqs[si]
            fire = cell.evaluate(V)
            if fire is not None:
                commits.append((cell, fire))
        fired = set()
        kernel = self.kernel
        for cell, (path, data, delay) in commits:
            if delay is not None and delay.fs > 0:
                # Real-time clock-to-output: back to the scheduler, the
                # maturation re-enters the cone as an external change.
                sig = self.slot_sigs[cell.root_slot]
                target = SignalRef(sig, path, None) if path else sig
                kernel.schedule_drive(("reg", self.order, cell.index),
                                      target, data, delay)
                continue
            root = cell.root_slot
            old = V[root]
            new = insert_path(old, path, data) if path else data
            if new != old:
                V[root] = new
                fired.add(root)
        return fired

    def _commit(self, changed):
        if not changed:
            return
        kernel = self.kernel
        trace = kernel.trace
        now = kernel.now
        fs = now[0]
        V = self.V
        hists = self._hists
        my_order = self.order
        for i in sorted(changed):
            sig = self.slot_sigs[i]
            new = V[i]
            if new == sig.value:
                continue    # settled back to the committed value
            sig.value = new
            if trace is not None:
                # Inlined trace.record fast path: per-alias history
                # lists resolved once per slot, then each record is a
                # bare compare + append with identical semantics.
                hs = hists[i]
                if hs is None:
                    keep = (trace.signal_filter is None
                            or trace.signal_filter(sig))
                    hs = tuple(trace.changes.setdefault(name, [])
                               for name in sig.aliases) if keep else ()
                    hists[i] = hs
                for history in hs:
                    if history and history[-1][0] == fs:
                        history[-1] = (fs, new)
                    else:
                        history.append((fs, new))
            waiters = sig.proc_waiters
            if waiters:
                # Wake next delta; the process pops its subscriptions
                # itself (the one-shot protocol `_wake` implements).
                for act in list(waiters.values()):
                    kernel.schedule_resume(act, _ZERO)
            for order, act in sig.entity_list():
                if order != my_order:
                    kernel.schedule_resume(act, _ZERO)


# -- elaboration ---------------------------------------------------------------


class LevelizedDesign(BlazeDesign):
    """A compiled design whose library cells are absorbed into a cone."""

    def __init__(self, module, top, kernel, cache_dir=None, analysis=False):
        super().__init__(module, top, kernel, 1, False, None)
        self.cache_dir = cache_dir
        self.analysis = analysis
        self._cell_forms = {}       # id(unit) -> eval form or None
        self._cell_templates = {}   # id(unit) -> template | TemplateError
        self.comb_cells = []        # (unit, template, in_ports, out_port)
        self.seq_cells = []         # (unit, form, ports)
        self.fallback_cells = []    # (instance path, reason)
        self.cone = None
        self.report = {}

    def cell_form(self, unit):
        key = id(unit)
        if key not in self._cell_forms:
            self._cell_forms[key] = cell_eval_form(unit)
        return self._cell_forms[key]

    def cell_template(self, unit):
        from .compiled import TemplateError, build_template

        key = id(unit)
        entry = self._cell_templates.get(key)
        if entry is None:
            try:
                entry = build_template(unit)
            except TemplateError as exc:
                entry = exc
            self._cell_templates[key] = entry
        if isinstance(entry, TemplateError):
            raise entry
        return entry

    def absorb_cell(self, parent, inst, callee):
        """Try to absorb one cell instance; (absorbed, fallback_reason)."""
        from .compiled import TemplateError

        form = self.cell_form(callee)
        if form is None:
            for body_inst in callee.body:
                if body_inst.opcode in ("inst", "sig", "con", "del"):
                    return False, None   # structural container: recurse
            return False, "cell body is not a recognized pure form"
        ports = [parent.env[id(op)]
                 for op in inst.inst_inputs() + inst.inst_outputs()]
        for p in ports:
            if type(p) is not SignalInstance:
                return False, "cell port bound to a projected sub-signal"
        if form.kind == "comb":
            d = form.delay
            if d.fs or d.delta or d.epsilon:
                return False, f"non-zero gate delay {d}"
            try:
                template = self.cell_template(callee)
            except TemplateError as exc:
                return False, str(exc)
            self.comb_cells.append((callee, template, ports[:-1], ports[-1]))
        else:
            self.seq_cells.append((callee, form, ports))
        return True, None

    def finalize(self):
        super().finalize()
        self._build_cone()

    def _build_cone(self):
        report = self.report
        report["fallbacks"] = list(self.fallback_cells)
        report["gates"] = len(self.comb_cells)
        report["seqs"] = len(self.seq_cells)
        report["nets"] = 0
        if not self.comb_cells and not self.seq_cells:
            return   # nothing cell-shaped: behaves as plain blaze
        plan = _build_plan(self)
        report["nets"] = len(plan.slot_sigs)
        report["levels"] = plan.levels
        report["cycles"] = plan.cycle_report
        stats = self.kernel.stats
        stats["cone_nets"] = len(plan.slot_sigs)
        stats["cone_gates"] = len(plan.gates)
        stats["cone_seqs"] = len(plan.seqs)
        if self.analysis:
            return
        from .compiled import compile_cone

        ns = compile_cone(plan, self.module, self.top.name,
                          self.cache_dir, stats)
        self.cone = _Cone(self, plan, ns)


class LevelizedEntityInstance(BlazeEntityInstance):
    """Entity elaboration that absorbs library cells instead of
    instantiating them; everything else is inherited unchanged (which
    is what keeps signal naming — and therefore traces — identical)."""

    def _instantiate(self, inst):
        design = self.design
        callee = design.module.get(inst.callee)
        if callee is not None and not isinstance(callee, UnitDecl) \
                and callee.is_entity:
            absorbed, reason = design.absorb_cell(self, inst, callee)
            if absorbed:
                return
            if reason is not None:
                design.fallback_cells.append(
                    (f"{self.path}.{inst.callee}", reason))
        super()._instantiate(inst)


LevelizedDesign.entity_class = LevelizedEntityInstance


def elaborate_levelized(module, top, kernel=None, trace=None,
                        cache_dir=None, analysis=False):
    """Elaborate ``module`` for levelized execution.

    ``analysis=True`` builds the absorption report and the plan but
    skips code generation and the runtime cone — used by the
    ``--list-designs`` engine-support column.
    """
    if kernel is None:
        kernel = Kernel(trace=trace)
    if getattr(kernel, "lanes", 1) != 1:
        raise SimulationError(
            "levelized: batched lanes are not supported")
    if getattr(kernel, "sanitizer", None) is not None:
        raise SimulationError(
            "levelized: the scheduler sanitizer is not supported "
            "(the cone bypasses the scheduler it would instrument)")
    unit = module.get(top)
    if unit is None or isinstance(unit, UnitDecl):
        raise SimulationError(f"top unit @{top} is not defined")
    if not unit.is_entity:
        raise SimulationError(f"top unit @{top} must be an entity")
    design = LevelizedDesign(module, unit, kernel, cache_dir=cache_dir,
                             analysis=analysis)
    ports = {}
    for arg in unit.args:
        sig = design.create_signal(
            f"{top}.{arg.name}", arg.type, default_value(arg.type.element))
        ports[id(arg)] = sig
    LevelizedEntityInstance(design, unit, top, ports)
    design.finalize()
    return design
