"""The LLHD-Blaze analogue: a compiled simulator.

The paper's LLHD-Blaze JIT-compiles LLHD units to LLVM IR and lets LLVM
optimize them for the simulation host.  The pure-Python equivalent here
translates every unit into Python source once, compiles it with
``compile()``, and executes the resulting code objects:

* processes become *generator functions* — ``wait`` is a ``yield`` of the
  subscription request, so resumption is native generator resumption
  instead of interpreting a program counter;
* entities become *bind-time closures*: a generated ``__bind__`` factory
  receives the instance's resolved signals once, hoists everything
  loop-invariant (constants, static sub-signal projections, pure ops over
  already-bound values) out of the activation path, and returns a
  zero-argument ``__activate__`` closure that is the entity's entire
  re-activation — one straight-line function, no per-activation
  dispatch, with whole-signal probes inlined to ``sig.value`` reads;
* functions become plain Python functions.

Elaboration (hierarchy walk, signal creation) is shared with the reference
interpreter.  Because ``con`` net merging happens throughout elaboration,
instances defer closure construction to :meth:`Design.finalize`, which
runs once the hierarchy is complete: bindings are resolved through
``find()`` exactly once, and activations never chase merged nets again.
Traces are bit-identical with LLHD-Sim by construction and verified by the
integration tests.
"""

from __future__ import annotations

import io

from ..ir.ninevalued import LogicVec, lane_ones
from ..ir.units import UnitDecl
from ..ir.values import TimeValue
from .engine import Kernel, SignalInstance, SignalRef
from .eval import (
    _int_binary, _logic_binary, int_shift, logic_compare, logic_level,
    logic_neg, logic_shift,
)
from .interp import (
    Cell, CellRef, Design, EntityInstance, LaneProcessInstance,
    ProcessInstance,
)
from .lanes import (
    evaluate_lanes, intrinsic_lanes, lane_default, lane_kernel,
    path_of_lanes, u1, uindex, uindex_int,
)
from .values import (
    SimulationError, default_value, extract_path, insert_path, lane_widen,
    mask, pack_array, to_signed,
)

_EPSILON = TimeValue(0, 0, 1)


# -- runtime helpers referenced by generated code ------------------------------

def _rt_ld(pointer):
    if type(pointer) is list:
        return pointer[0]
    return pointer.load()


def _rt_st(pointer, value):
    if type(pointer) is list:
        pointer[0] = value
    else:
        pointer.store(value)


def _rt_cell_project(pointer, step):
    if type(pointer) is list:
        return _BlazeCellRef(pointer, (step,))
    return _BlazeCellRef(pointer.cell, pointer.path + (step,))


class _BlazeCellRef:
    __slots__ = ("cell", "path")

    def __init__(self, cell, path):
        self.cell = cell
        self.path = path

    def load(self):
        return extract_path(self.cell[0], self.path)

    def store(self, value):
        self.cell[0] = insert_path(self.cell[0], self.path, value)


def _rt_sig_project(target, step):
    if isinstance(target, SignalRef):
        return SignalRef(target.signal, target.path + (step,), None)
    return SignalRef(target, (step,), None)


def _rt_index(value):
    if isinstance(value, LogicVec):
        if not value.is_two_valued:
            raise SimulationError("dynamic index is unknown (X)")
        return value.to_int()
    return value


def _rt_extf(agg, index):
    index = _rt_index(index)
    if not 0 <= index < len(agg):
        raise SimulationError(
            f"extf index {index} out of range for {len(agg)} elements")
    return agg[index]


def _rt_insf(agg, value, index):
    index = _rt_index(index)
    if not 0 <= index < len(agg):
        raise SimulationError(
            f"insf index {index} out of range for {len(agg)} elements")
    return agg[:index] + (value,) + agg[index + 1:]


def _rt_divmod(op, a, b, width):
    return _int_binary(op, a, b, width)


def _rt_resolve(value):
    """Resolve a binding through ``con`` merging, once, at bind time."""
    if isinstance(value, SignalInstance):
        return value.find()
    if isinstance(value, SignalRef):
        rep = value.signal.find()
        if rep is not value.signal:
            return SignalRef(rep, value.path, value.type)
    return value


_BASE_GLOBALS = {
    "_ld": _rt_ld,
    "_st": _rt_st,
    "_cellproj": _rt_cell_project,
    "_sigproj": _rt_sig_project,
    "_extf": _rt_extf,
    "_insf": _rt_insf,
    "_idx": _rt_index,
    "_ibin": _int_binary,
    "_lbin": _logic_binary,
    "_lneg": logic_neg,
    "_lvl": logic_level,
    "_lshift": logic_shift,
    "_ishift": int_shift,
    "_tosigned": to_signed,
    "_extract": extract_path,
    "_insert": insert_path,
    "_parr": pack_array,
    "_Sig": SignalInstance,
    "LogicVec": LogicVec,
    "TimeValue": TimeValue,
    "SimulationError": SimulationError,
}

_INLINE_INT_OPS = {
    "add": "({a} + {b}) & {m}",
    "sub": "({a} - {b}) & {m}",
    "mul": "({a} * {b}) & {m}",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
}

_INLINE_CMP = {
    "eq": "1 if {a} == {b} else 0",
    "neq": "1 if {a} != {b} else 0",
    "ult": "1 if {a} < {b} else 0",
    "ugt": "1 if {a} > {b} else 0",
    "ule": "1 if {a} <= {b} else 0",
    "uge": "1 if {a} >= {b} else 0",
    "slt": "1 if _tosigned({a}, {w}) < _tosigned({b}, {w}) else 0",
    "sgt": "1 if _tosigned({a}, {w}) > _tosigned({b}, {w}) else 0",
    "sle": "1 if _tosigned({a}, {w}) <= _tosigned({b}, {w}) else 0",
    "sge": "1 if _tosigned({a}, {w}) >= _tosigned({b}, {w}) else 0",
}

# Opcodes with no side effects: eligible for bind-time hoisting in
# entities when every operand is already bound.
_HOISTABLE_OPS = frozenset({
    "const", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
    "srem", "and", "or", "xor", "not", "neg", "shl", "shr", "eq", "neq",
    "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge", "zext", "sext",
    "trunc", "array", "struct", "mux", "insf", "inss", "extf", "exts",
})


class _CodeBuffer:
    def __init__(self, indent=0):
        self.out = io.StringIO()
        self.indent = indent

    def line(self, text=""):
        self.out.write("    " * self.indent + text + "\n")

    def source(self):
        return self.out.getvalue()


class UnitCompiler:
    """Compiles one unit into Python source + metadata."""

    def __init__(self, unit, lanes=1):
        self.unit = unit
        self.lanes = lanes
        self.globals = dict(_BASE_GLOBALS)
        if lanes > 1:
            # Lane-mode runtime hooks, each closing over K.  Pure ops not
            # lane-exact at this layer go through the shared evaluator;
            # control points collapse through the uniformity guards.
            self.globals["_evl"] = \
                lambda inst, ops, _l=lanes: evaluate_lanes(inst, ops, _l)
            self.globals["_u1"] = lambda c, _l=lanes: u1(c, _l)
            self.globals["_uidx"] = lambda v, _l=lanes: uindex(v, _l)
            self.globals["_uidxi"] = \
                lambda v, w, _l=lanes: uindex_int(v, w, _l)
        self.names = {}       # id(value) -> python variable name
        self.slots = {}       # id(value) -> binding slot (entities/args)
        self.reg_slots = {}   # id(reg inst) -> (state_base, n_triggers)
        self.n_state = 0
        self._counter = 0
        self._const_counter = 0
        self.code = _CodeBuffer()
        # Mux/array fusion folds the selector into Python control flow;
        # in lane mode selection is per-lane *data*, so keep the array
        # and let the evaluator handle it value-wise.
        self._elided = set() if lanes > 1 else self._elidable_mux_arrays()

    def _all_instructions(self):
        unit = self.unit
        if unit.is_entity:
            return list(unit.body)
        return [inst for block in unit.blocks
                for inst in block.instructions]

    def _elidable_mux_arrays(self):
        """2-element ``array`` insts consumed by exactly one i1 ``mux``.

        ``c ? a : b`` lowers to ``mux [b, a], c``; when the pair is
        private, the tuple build is fused into a Python conditional
        expression (the instcombine LLVM would do for Blaze).
        """
        instructions = self._all_instructions()
        uses = {}
        for inst in instructions:
            for operand in inst.operands:
                key = id(operand)
                uses[key] = uses.get(key, 0) + 1
        elided = set()
        for inst in instructions:
            if inst.opcode != "mux":
                continue
            arr, sel = inst.operands
            if (getattr(arr, "opcode", None) == "array"
                    and not arr.attrs.get("splat")
                    and len(arr.operands) == 2
                    and sel.type.is_int and sel.type.width == 1
                    and uses.get(id(arr)) == 1):
                elided.add(id(arr))
        return elided

    # -- naming ------------------------------------------------------------

    def name(self, value):
        nm = self.names.get(id(value))
        if nm is None:
            nm = f"v{self._counter}"
            self._counter += 1
            self.names[id(value)] = nm
        return nm

    def runtime_const(self, obj):
        """Bind a non-literal constant object into the code's globals."""
        name = f"K{self._const_counter}"
        self._const_counter += 1
        self.globals[name] = obj
        return name

    def bind_slot(self, value):
        if id(value) not in self.slots:
            self.slots[id(value)] = len(self.slots)
        return self.slots[id(value)]

    # -- expressions ----------------------------------------------------------

    def const_expr(self, inst):
        value = inst.attrs["value"]
        if self.lanes > 1:
            value = lane_widen(value, inst.type, self.lanes)
        if isinstance(value, int):
            return repr(value)
        return self.runtime_const(value)

    def expr(self, inst):
        """RHS Python expression for a pure instruction."""
        if self.lanes > 1:
            return self._expr_lanes(inst)
        op = inst.opcode
        ops = inst.operands
        n = self.name

        if op == "const":
            return self.const_expr(inst)
        if op in _INLINE_INT_OPS or op in ("udiv", "sdiv", "umod", "smod",
                                           "urem", "srem"):
            a, b = n(ops[0]), n(ops[1])
            if ops[0].type.is_logic:
                # Table ops dispatch straight to the packed methods; only
                # lN arithmetic (two-valued fast path or degrade-to-X)
                # goes through the shared helper.
                if op == "and":
                    return f"{a}.and_({b})"
                if op == "or":
                    return f"{a}.or_({b})"
                if op == "xor":
                    return f"{a}.xor({b})"
                return f"_lbin({op!r}, {a}, {b})"
            w = inst.type.width
            if op in _INLINE_INT_OPS:
                return _INLINE_INT_OPS[op].format(a=a, b=b, m=hex(mask(w)))
            return f"_ibin({op!r}, {a}, {b}, {w})"
        if op in _INLINE_CMP:
            a, b = n(ops[0]), n(ops[1])
            if ops[0].type.is_logic:
                return (f"_lcmp({op!r}, {a}, {b})")
            if ops[0].type.is_int:
                w = ops[0].type.width
                return _INLINE_CMP[op].format(a=a, b=b, w=w)
            # Aggregates / enums / time: plain equality.
            if op == "eq":
                return f"1 if {a} == {b} else 0"
            return f"1 if {a} != {b} else 0"
        if op == "not":
            if ops[0].type.is_logic:
                return f"{n(ops[0])}.not_()"
            return f"(~{n(ops[0])}) & {hex(mask(inst.type.width))}"
        if op == "neg":
            if ops[0].type.is_logic:
                return f"_lneg({n(ops[0])})"
            return f"(-{n(ops[0])}) & {hex(mask(inst.type.width))}"
        if op in ("shl", "shr"):
            # Unknown bits (X/Z) in either operand propagate: all-X result
            # on lN values, a SimulationError on iN (no unknown encoding).
            a, b = n(ops[0]), n(ops[1])
            if ops[0].type.is_logic:
                return f"_lshift({op!r}, {a}, {b})"
            if ops[1].type.is_logic:
                return f"_ishift({op!r}, {a}, {b}, {inst.type.width})"
            if op == "shl":
                return f"({a} << {b}) & {hex(mask(inst.type.width))}"
            return f"{a} >> {b}"
        if op == "zext":
            if ops[0].type.is_logic:
                return f"{n(ops[0])}.zext({inst.type.width})"
            return n(ops[0])
        if op == "sext":
            if ops[0].type.is_logic:
                return f"{n(ops[0])}.sext({inst.type.width})"
            return (f"_tosigned({n(ops[0])}, {ops[0].type.width}) & "
                    f"{hex(mask(inst.type.width))}")
        if op == "trunc":
            if ops[0].type.is_logic:
                return f"{n(ops[0])}.trunc({inst.type.width})"
            return f"{n(ops[0])} & {hex(mask(inst.type.width))}"
        if op == "array":
            if inst.attrs.get("splat"):
                expr = f"({n(ops[0])},) * {inst.type.length}"
            else:
                expr = "(" + ", ".join(n(o) for o in ops) + \
                    ("," if len(ops) == 1 else "") + ")"
            if inst.type.element.is_logic:
                return f"_parr({expr})"
            return expr
        if op == "struct":
            return "(" + ", ".join(n(o) for o in ops) + ("," if len(ops) == 1
                                                         else "") + ")"
        if op == "extf":
            return self._extf_expr(inst)
        if op == "insf":
            return self._insf_expr(inst)
        if op == "exts":
            return self._exts_expr(inst)
        if op == "inss":
            return self._inss_expr(inst)
        if op == "mux":
            if id(ops[0]) in self._elided:
                f_val, t_val = ops[0].operands
                return f"({n(t_val)} if {n(ops[1])} else {n(f_val)})"
            arr, sel = n(ops[0]), n(ops[1])
            if ops[1].type.is_logic:
                sel = f"_idx({sel})"
            length = ops[0].type.length
            if length == 2 and ops[1].type.is_int and \
                    ops[1].type.width == 1:
                # i1 selector over two choices needs no clamping.
                return f"{arr}[{sel}]"
            return f"{arr}[{sel} if {sel} < {length} else {length - 1}]"
        raise SimulationError(f"blaze: cannot compile pure op {op}")

    def _expr_lanes(self, inst):
        """RHS expression for a pure instruction over lane-widened values.

        Bitwise table ops, aggregate (re)packing, and static projections
        are lane-exact and stay inline; every other op dispatches to the
        shared lane evaluator (`_evl`), which takes the uniform fast path
        or loops per lane.
        """
        op = inst.opcode
        ops = inst.operands
        n = self.name
        if op == "const":
            return self.const_expr(inst)
        if op in ("and", "or", "xor"):
            a, b = n(ops[0]), n(ops[1])
            if ops[0].type.is_logic:
                meth = {"and": "and_", "or": "or_", "xor": "xor"}[op]
                return f"{a}.{meth}({b})"
            if ops[0].type.is_int:
                sym = {"and": "&", "or": "|", "xor": "^"}[op]
                return f"{a} {sym} {b}"
        elif op == "not":
            if ops[0].type.is_logic:
                return f"{n(ops[0])}.not_()"
            if inst.type.is_int:
                m = mask(inst.type.width * self.lanes)
                return f"(~{n(ops[0])}) & {hex(m)}"
        elif op == "array":
            if inst.attrs.get("splat"):
                expr = f"({n(ops[0])},) * {inst.type.length}"
            else:
                expr = "(" + ", ".join(n(o) for o in ops) + \
                    ("," if len(ops) == 1 else "") + ")"
            if inst.type.element.is_logic:
                return f"_parr({expr})"
            return expr
        elif op == "struct":
            return "(" + ", ".join(n(o) for o in ops) + ("," if len(ops) == 1
                                                         else "") + ")"
        elif op == "extf":
            expr = self._extf_expr_lanes(inst)
            if expr is not None:
                return expr
        elif op == "exts":
            return self._exts_expr_lanes(inst)
        elif op == "insf":
            index = inst.attrs.get("index")
            if index is not None:
                agg, value = ops[0], ops[1]
                return (f"{n(agg)}[:{index}] + ({n(value)},) + "
                        f"{n(agg)}[{index + 1}:]")
        elif op == "inss":
            base, value = ops[0], ops[1]
            step = path_of_lanes(inst, self.lanes)
            return f"_insert({n(base)}, ({step!r},), {n(value)})"
        elif op in ("add", "sub") and inst.type.is_int:
            # SWAR add/sub: carries/borrows cannot cross lane
            # boundaries once the per-lane MSB is cleared (add) or
            # preset (sub); the MSB is patched back via XOR.
            w = inst.type.width
            ones = lane_ones(w, self.lanes)
            high = (1 << (w - 1)) * ones
            low = (mask(w) * ones) ^ high
            a, b = n(ops[0]), n(ops[1])
            if op == "add":
                return (f"((({a} & {hex(low)}) + ({b} & {hex(low)})) ^ "
                        f"(({a} ^ {b}) & {hex(high)}))")
            return (f"((({a} | {hex(high)}) - ({b} & {hex(low)})) ^ "
                    f"(({a} ^ {b}) & {hex(high)}) ^ {hex(high)})")
        kern = lane_kernel(inst, self.lanes)
        if kern is not None:
            args = ", ".join(n(o) for o in ops)
            return f"{self.runtime_const(kern)}({args})"
        args = ", ".join(n(o) for o in ops)
        tail = "," if len(ops) == 1 else ""
        return f"_evl({self.runtime_const(inst)}, ({args}{tail}))"

    def _extf_expr_lanes(self, inst):
        base = inst.operands[0]
        n = self.name
        index = inst.attrs.get("index")
        if base.type.is_signal or base.type.is_pointer:
            proj = "_sigproj" if base.type.is_signal else "_cellproj"
            if index is None:
                iop = inst.operands[1]
                if iop.type.is_logic:
                    iexpr = f"_uidx({n(iop)})"
                else:
                    w = iop.type.width if iop.type.is_int else 1
                    iexpr = f"_uidxi({n(iop)}, {w})"
                return f"{proj}({n(base)}, ('field', {iexpr}))"
            return f"{proj}({n(base)}, ('field', {index}))"
        if index is not None:
            # Aggregates hold lane-widened elements; static extraction is
            # the plain element read.
            return f"{n(base)}[{index}]"
        return None  # dynamic value extraction: fall through to _evl

    def _exts_expr_lanes(self, inst):
        base = inst.operands[0]
        n = self.name
        step = path_of_lanes(inst, self.lanes)
        if base.type.is_signal:
            return f"_sigproj({n(base)}, {step!r})"
        if base.type.is_pointer:
            return f"_cellproj({n(base)}, {step!r})"
        return f"_extract({n(base)}, ({step!r},))"

    def _extf_expr(self, inst):
        base = inst.operands[0]
        n = self.name
        index = inst.attrs.get("index")
        if base.type.is_signal:
            if index is not None:
                return f"_sigproj({n(base)}, ('field', {index}))"
            return f"_sigproj({n(base)}, ('field', _idx({n(inst.operands[1])})))"
        if base.type.is_pointer:
            if index is not None:
                return f"_cellproj({n(base)}, ('field', {index}))"
            return (f"_cellproj({n(base)}, "
                    f"('field', _idx({n(inst.operands[1])})))")
        if index is not None:
            return f"{n(base)}[{index}]"
        return f"_extf({n(base)}, {n(inst.operands[1])})"

    def _insf_expr(self, inst):
        agg, value = inst.operands[0], inst.operands[1]
        n = self.name
        index = inst.attrs.get("index")
        if index is not None:
            return (f"{n(agg)}[:{index}] + ({n(value)},) + "
                    f"{n(agg)}[{index + 1}:]")
        return f"_insf({n(agg)}, {n(value)}, {n(inst.operands[2])})"

    def _slice_step(self, inst):
        from .eval import path_of

        return path_of(inst)

    def _exts_expr(self, inst):
        base = inst.operands[0]
        n = self.name
        offset = inst.attrs["offset"]
        length = inst.attrs["length"]
        if base.type.is_signal:
            step = self._slice_step(inst)
            return f"_sigproj({n(base)}, {step!r})"
        if base.type.is_pointer:
            step = self._slice_step(inst)
            return f"_cellproj({n(base)}, {step!r})"
        inner = base.type
        if inner.is_int:
            return f"({n(base)} >> {offset}) & {hex(mask(length))}"
        step = self._slice_step(inst)
        return f"_extract({n(base)}, ({step!r},))"

    def _inss_expr(self, inst):
        base, value = inst.operands[0], inst.operands[1]
        n = self.name
        offset = inst.attrs["offset"]
        length = inst.attrs["length"]
        if base.type.is_int:
            m = mask(length)
            return (f"(({n(base)} & {hex(~(m << offset) & mask(base.type.width))}) "
                    f"| (({n(value)} & {hex(m)}) << {offset}))")
        step = self._slice_step(inst)
        return f"_insert({n(base)}, ({step!r},), {n(value)})"

    def probe_expr(self, inst):
        """Inline probe: direct ``.value`` read for whole signals."""
        s = self.name(inst.operands[0])
        return f"({s}.value if type({s}) is _Sig else probe({s}))"

    def _call_expr(self, inst):
        n = self.name
        args = ", ".join(n(o) for o in inst.operands)
        tail = "," if len(inst.operands) == 1 else ""
        if self.lanes > 1:
            # Lane-attributing intrinsics need the operand types to slice
            # the batched arguments (see lanes.intrinsic_lanes).
            tk = self.runtime_const(tuple(o.type for o in inst.operands))
            return f"call({inst.callee!r}, ({args}{tail}), {tk})"
        return f"call({inst.callee!r}, ({args}{tail}))"


_BASE_GLOBALS["_lcmp"] = logic_compare


class ProcessCompiler(UnitCompiler):
    """Compile a process (or function) body into a Python function.

    ``var``/``alloc`` cells whose pointer never escapes (only ever the
    pointer operand of ``ld``/``st``/``free``) are promoted to plain
    Python locals — the mem2reg optimization LLVM would perform for the
    paper's Blaze.
    """

    def _find_promotable_cells(self):
        cells = set()
        for block in self.unit.blocks:
            for inst in block.instructions:
                if inst.opcode in ("var", "alloc"):
                    cells.add(id(inst))
        if not cells:
            return cells
        for block in self.unit.blocks:
            for inst in block.instructions:
                op = inst.opcode
                for pos, operand in enumerate(inst.operands):
                    if id(operand) in cells and op != "free" and \
                            not (pos == 0 and op in ("ld", "st")):
                        cells.discard(id(operand))
        return cells

    def compile_process(self):
        unit = self.unit
        code = self.code
        self._promoted = self._find_promotable_cells()
        block_index = {id(b): i for i, b in enumerate(unit.blocks)}
        code.line("def __process__(B, probe, drive, call, intrinsic):")
        code.indent += 1
        # A process without wait would otherwise compile to a plain
        # function; force generator semantics so the kernel drives it.
        code.line("if 0: yield (None, ())")
        for arg in unit.args:
            slot = self.bind_slot(arg)
            code.line(f"{self.name(arg)} = B[{slot}]")
        code.line("_b = 0")
        code.line("while True:")
        code.indent += 1
        for i, block in enumerate(unit.blocks):
            code.line(f"{'if' if i == 0 else 'elif'} _b == {i}:")
            code.indent += 1
            self._emit_block(block, block_index, kind="proc")
            code.indent -= 1
        code.indent -= 2
        return self._finish("__process__")

    def compile_function(self):
        unit = self.unit
        code = self.code
        self._promoted = self._find_promotable_cells()
        block_index = {id(b): i for i, b in enumerate(unit.blocks)}
        code.line("def __function__(B, call, intrinsic):")
        code.indent += 1
        for arg in unit.args:
            slot = self.bind_slot(arg)
            code.line(f"{self.name(arg)} = B[{slot}]")
        code.line("_b = 0")
        code.line("while True:")
        code.indent += 1
        for i, block in enumerate(unit.blocks):
            code.line(f"{'if' if i == 0 else 'elif'} _b == {i}:")
            code.indent += 1
            self._emit_block(block, block_index, kind="func")
            code.indent -= 1
        code.indent -= 2
        return self._finish("__function__")

    def _finish(self, symbol):
        source = self.code.source()
        namespace = dict(self.globals)
        exec(compile(source, f"<blaze:{self.unit.name}>", "exec"), namespace)
        return CompiledUnit(self.unit, source, namespace[symbol], self)

    def _emit_block(self, block, block_index, kind):
        code = self.code
        n = self.name
        emitted = False
        for inst in block.instructions:
            op = inst.opcode
            if op == "phi":
                continue  # materialized at the branch edges
            if id(inst) in self._elided:
                continue  # fused into its consuming mux
            emitted = True
            if op == "drv":
                cond = inst.drv_condition()
                if cond is None:
                    prefix = ""
                elif self.lanes > 1:
                    # Uniform-mode processes gate whole-batch drives on a
                    # lane-agreeing condition (divergence -> replicate).
                    prefix = f"if _u1({n(cond)}): "
                else:
                    prefix = f"if {n(cond)}: "
                code.line(
                    f"{prefix}drive({n(inst.drv_signal())}, "
                    f"{n(inst.drv_value())}, {n(inst.drv_delay())})")
            elif op == "prb":
                code.line(f"{n(inst)} = {self.probe_expr(inst)}")
            elif op == "var" or op == "alloc":
                if id(inst) in self._promoted:
                    code.line(f"{n(inst)} = {n(inst.operands[0])}")
                else:
                    code.line(f"{n(inst)} = [{n(inst.operands[0])}]")
            elif op == "free":
                code.line("pass")
            elif op == "ld":
                ptr = inst.operands[0]
                if id(ptr) in self._promoted:
                    code.line(f"{n(inst)} = {n(ptr)}")
                elif getattr(ptr, "opcode", None) in ("var", "alloc"):
                    # The pointer is this unit's own cell: index directly.
                    code.line(f"{n(inst)} = {n(ptr)}[0]")
                else:
                    code.line(f"{n(inst)} = _ld({n(ptr)})")
            elif op == "st":
                ptr = inst.operands[0]
                if id(ptr) in self._promoted:
                    code.line(f"{n(ptr)} = {n(inst.operands[1])}")
                elif getattr(ptr, "opcode", None) in ("var", "alloc"):
                    code.line(f"{n(ptr)}[0] = {n(inst.operands[1])}")
                else:
                    code.line(f"_st({n(ptr)}, {n(inst.operands[1])})")
            elif op == "sig":
                raise SimulationError(
                    "blaze: sig inside processes is not supported; "
                    "declare signals in the enclosing entity")
            elif op == "call":
                target = self._call_expr(inst)
                if inst.type.is_void:
                    code.line(target)
                else:
                    code.line(f"{n(inst)} = {target}")
            elif op == "br":
                self._emit_branch(inst, block, block_index)
            elif op == "wait":
                self._emit_wait(inst, block, block_index)
            elif op == "halt":
                code.line("return")
            elif op == "ret":
                if inst.operands:
                    code.line(f"return {n(inst.operands[0])}")
                else:
                    code.line("return None")
            else:
                code.line(f"{n(inst)} = {self.expr(inst)}")
        if not emitted:
            code.line("pass")

    def _phi_copies(self, target, pred):
        """Emit the parallel copies for jumping pred -> target."""
        phis = target.phis()
        if not phis:
            return
        n = self.name
        sources = [n(phi.phi_value_for(pred)) for phi in phis]
        if len(phis) == 1:
            self.code.line(f"{n(phis[0])} = {sources[0]}")
            return
        temps = ", ".join(sources)
        dests = ", ".join(n(phi) for phi in phis)
        self.code.line(f"{dests} = {temps}")

    def _emit_branch(self, inst, block, block_index):
        code = self.code
        n = self.name
        if inst.is_conditional_branch:
            cond = n(inst.operands[0])
            if self.lanes > 1:
                cond = f"_u1({cond})"
            f_dest, t_dest = inst.operands[1], inst.operands[2]
            code.line(f"if {cond}:")
            code.indent += 1
            self._phi_copies(t_dest, block)
            code.line(f"_b = {block_index[id(t_dest)]}")
            code.line("continue")
            code.indent -= 1
            code.line("else:")
            code.indent += 1
            self._phi_copies(f_dest, block)
            code.line(f"_b = {block_index[id(f_dest)]}")
            code.line("continue")
            code.indent -= 1
        else:
            dest = inst.operands[0]
            self._phi_copies(dest, block)
            code.line(f"_b = {block_index[id(dest)]}")
            code.line("continue")

    def _emit_wait(self, inst, block, block_index):
        code = self.code
        n = self.name
        dest = inst.wait_dest()
        time_op = inst.wait_time()
        timeout = n(time_op) if time_op is not None else "None"
        signals = inst.wait_signals()
        sig_tuple = ", ".join(n(s) for s in signals)
        tail = "," if len(signals) == 1 else ""
        self._phi_copies(dest, block)
        code.line(f"yield ({timeout}, ({sig_tuple}{tail}))")
        code.line(f"_b = {block_index[id(dest)]}")
        code.line("continue")


class EntityCompiler(UnitCompiler):
    """Compile an entity body into a bind-time closure factory.

    The generated ``__bind__(B, S, ...)`` runs once per instance (after
    the hierarchy is fully elaborated): it unpacks the binding tuple,
    evaluates every hoistable instruction — constants, static sub-signal
    projections, pure ops whose operands are all bound — and returns the
    ``__activate__`` closure holding only the per-activation work.
    """

    def compile_entity(self):
        unit = self.unit
        # Reserve binding slots for args and persistent values first.
        for arg in unit.args:
            self.bind_slot(arg)
        for inst in unit.body:
            if inst.opcode in ("sig", "del"):
                self.bind_slot(inst)
        bind = _CodeBuffer(indent=1)
        activate = _CodeBuffer(indent=2)
        bound = set()
        self._probe_flags = {}
        for arg in unit.args:
            bind.line(f"{self.name(arg)} = B[{self.slots[id(arg)]}]")
            bound.add(id(arg))
        emitted = False
        for inst in unit.body:
            op = inst.opcode
            if op in ("inst", "con"):
                continue
            if id(inst) in self._elided:
                # Fused into its consuming mux; usable at bind time when
                # its own operands are.
                if all(id(o) in bound for o in inst.operands):
                    bound.add(id(inst))
                continue
            n = self.name
            if op == "sig":
                bind.line(f"{n(inst)} = B[{self.slots[id(inst)]}]")
                bound.add(id(inst))
                continue
            if op == "del":
                bind.line(f"{n(inst)} = B[{self.slots[id(inst)]}]")
                bound.add(id(inst))
                src = n(inst.operands[0])
                flag = self._probe_flag(bind, inst.operands[0], bound)
                value = (f"({src}.value if {flag} else probe({src}))"
                         if flag else f"probe({src})")
                activate.line(
                    f"drive_del({id(inst)}, {n(inst)}, {value}, "
                    f"{n(inst.operands[1])})")
                emitted = True
                continue
            if op in _HOISTABLE_OPS and \
                    all(id(o) in bound for o in inst.operands):
                self.code = bind
                bind.line(f"{n(inst)} = {self.expr(inst)}")
                bound.add(id(inst))
                continue
            emitted = True
            self.code = activate
            if op == "prb":
                src_op = inst.operands[0]
                flag = self._probe_flag(bind, src_op, bound)
                src = n(src_op)
                if flag:
                    activate.line(
                        f"{n(inst)} = {src}.value if {flag} "
                        f"else probe({src})")
                else:
                    activate.line(f"{n(inst)} = probe({src})")
            elif op == "drv":
                cond = inst.drv_condition()
                prefix = f"if {n(cond)}: " if cond is not None else ""
                activate.line(
                    f"{prefix}drive({n(inst.drv_signal())}, "
                    f"{n(inst.drv_value())}, {n(inst.drv_delay())})")
            elif op == "reg":
                self._emit_reg(inst)
            elif op == "call":
                target = self._call_expr(inst)
                if inst.type.is_void:
                    activate.line(target)
                else:
                    activate.line(f"{n(inst)} = {target}")
            else:
                activate.line(f"{n(inst)} = {self.expr(inst)}")
        if not emitted:
            activate.line("pass")
        out = _CodeBuffer()
        out.line("def __bind__(B, S, probe, drive, drive_del, drive_reg, "
                 "call, intrinsic):")
        out.out.write(bind.source())
        out.out.write("    def __activate__():\n")
        out.out.write(activate.source())
        out.out.write("    return __activate__\n")
        source = out.source()
        namespace = dict(self.globals)
        exec(compile(source, f"<blaze:{unit.name}>", "exec"), namespace)
        return CompiledUnit(unit, source, namespace["__bind__"], self)

    def _probe_flag(self, bind, operand, bound):
        """A bind-time ``type(x) is _Sig`` flag for a bound signal value."""
        if id(operand) not in bound:
            return None
        flag = self._probe_flags.get(id(operand))
        if flag is None:
            src = self.name(operand)
            flag = f"w_{src}"
            bind.line(f"{flag} = type({src}) is _Sig")
            self._probe_flags[id(operand)] = flag
        return flag

    def _emit_reg(self, inst):
        code = self.code
        n = self.name
        base = self.n_state
        triggers = list(inst.reg_triggers())
        self.reg_slots[id(inst)] = (base, len(triggers))
        self.n_state += len(triggers)
        sig = n(inst.reg_signal())
        eps = self.runtime_const(_EPSILON)
        code.line("_fired = False")
        for i, t in enumerate(triggers):
            slot = base + i
            cur = n(t["trigger"])
            mode = t["mode"]
            if t["trigger"].type.is_logic:
                # Mirrors plan._reg_step: rise needs the previous X01
                # level to be 0 (the iN rule) or unknown (X -> 1 is a
                # rising edge per IEEE 1800); 'both' compares exact
                # values.
                tests = {
                    "rise": f"_lvl({cur}) == 1 and "
                            f"_lvl(S[{slot}]) in (0, -1)",
                    "fall": f"_lvl({cur}) == 0 and "
                            f"_lvl(S[{slot}]) in (1, -1)",
                    "both": f"S[{slot}] != {cur}",
                    "high": f"_lvl({cur}) == 1",
                    "low": f"_lvl({cur}) == 0",
                }
            else:
                tests = {
                    "rise": f"S[{slot}] == 0 and {cur} == 1",
                    "fall": f"S[{slot}] == 1 and {cur} == 0",
                    "both": f"S[{slot}] != {cur}",
                    "high": f"{cur} == 1",
                    "low": f"{cur} == 0",
                }
            cond = tests[mode]
            if t["cond"] is not None:
                cond = f"({cond}) and {n(t['cond'])}"
            delay = n(t["delay"]) if t["delay"] is not None else eps
            code.line(f"if not _fired and ({cond}):")
            code.indent += 1
            code.line(f"drive_reg({id(inst)}, {sig}, {n(t['value'])}, "
                      f"{delay})")
            code.line("_fired = True")
            code.indent -= 1
            code.line(f"S[{slot}] = {cur}")


class CompiledUnit:
    """A unit compiled to a Python callable, plus its metadata."""

    def __init__(self, unit, source, fn, compiler):
        self.unit = unit
        self.source = source
        self.fn = fn
        self.slots = compiler.slots
        self.n_state = compiler.n_state
        self.reg_slots = compiler.reg_slots


class BlazeDesign(Design):
    """A Design with per-unit compilation caches."""

    def __init__(self, module, top, kernel, lanes=1, replicate=False,
                 batch_units=None):
        super().__init__(module, top, kernel, lanes, replicate, batch_units)
        self._compiled = {}
        self._functions = {}

    def compiled(self, unit, lanes=1):
        key = (id(unit), lanes)
        cu = self._compiled.get(key)
        if cu is None:
            if unit.is_process:
                cu = ProcessCompiler(unit, lanes).compile_process()
            elif unit.is_function:
                cu = ProcessCompiler(unit, lanes).compile_function()
            else:
                cu = EntityCompiler(unit).compile_entity()
            self._compiled[key] = cu
        return cu

    def call_function(self, name, args, where="", types=None):
        if name.startswith("llhd."):
            if self.lanes > 1 and not self.replicate:
                return intrinsic_lanes(
                    self.kernel, name, list(args), types, self.lanes, where)
            return self.kernel.intrinsic(name, list(args), where)
        lanes = 1 if self.replicate else self.lanes
        entry = self._functions.get((name, lanes))
        if entry is None:
            unit = self.module.get(name)
            if unit is None or isinstance(unit, UnitDecl):
                raise SimulationError(f"call to undefined function @{name}")
            # Calls issued *from* @name carry its frame as context, the
            # same "in @name" the interpreter's function frames report.
            entry = (self.compiled(unit, lanes).fn,
                     self.caller(f"in @{name}"))
            self._functions[(name, lanes)] = entry
        fn, inner_call = entry
        return fn(args, inner_call, self.kernel.intrinsic)

    def caller(self, where):
        """A call hook carrying a fixed ``where`` context.

        Generated code calls ``call(name, args)`` (plus the operand types
        in lane mode); binding the context here keeps intrinsic
        diagnostics (assertion messages) identical to the interpreter's,
        which reports ``in <instance path>``.
        """
        def call(name, args, types=None):
            return self.call_function(name, args, where, types)
        return call


class BlazeProcessInstance(ProcessInstance):
    """A process running as a compiled generator.

    The generator is created at bind time (after full elaboration) so
    its signal bindings are resolved through ``con`` merging once.
    """

    def __init__(self, design, unit, path, port_map):
        self._gen = None
        super().__init__(design, unit, path, port_map)

    def bind(self):
        design = self.design
        cu = design.compiled(
            self.unit, 1 if design.replicate else design.lanes)
        bindings = [None] * len(cu.slots)
        for arg in self.unit.args:
            bindings[cu.slots[id(arg)]] = _rt_resolve(self.env[id(arg)])
        kernel = design.kernel
        order = self.order

        def drive(sig, value, delay):
            kernel.schedule_drive(order, sig, value, delay)

        self._gen = cu.fn(
            tuple(bindings), kernel.probe, drive,
            design.caller(f"in {self.path}"), kernel.intrinsic)

    def _execute(self, kernel):
        gen = self._gen
        if gen is None:
            self.bind()
            gen = self._gen
        try:
            timeout, signals = gen.send(None)
        except StopIteration:
            self.status = "halted"
            return
        self._subscribe(signals, timeout)


class BlazeLaneProcessInstance(LaneProcessInstance):
    """One lane's compiled replica (replicated batch mode).

    Wake gating, lane attribution, and dead-lane handling come from the
    interpreter's replica class; the execution body is the compiled
    scalar generator over lane-projected bindings.
    """

    def __init__(self, design, unit, path, port_map, lane):
        self._gen = None
        super().__init__(design, unit, path, port_map, lane)

    bind = BlazeProcessInstance.bind
    _execute = BlazeProcessInstance._execute


class BlazeEntityInstance(EntityInstance):
    """An entity whose re-activation is one compiled closure.

    Initial elaboration (signal creation, hierarchy, sensitivity) is
    inherited from the interpreter; :meth:`bind` then resolves the
    bindings and asks the compiled ``__bind__`` factory for the
    activation closure.  Binding is deferred to ``Design.finalize`` so
    every ``con`` merge in the hierarchy has already happened.
    """

    def __init__(self, design, unit, path, port_map):
        self._activate = None
        super().__init__(design, unit, path, port_map)

    def bind(self):
        design = self.design
        if design.lanes > 1:
            # Entity bodies in batch mode run the interpreter's
            # lane-vectorized plan (see ``run``); nothing to bind.
            return
        cu = design.compiled(self.unit)
        bindings = [None] * len(cu.slots)
        for key, slot in cu.slots.items():
            bindings[slot] = _rt_resolve(self.env[key])
        state = [0] * cu.n_state
        for inst_id, (base, count) in cu.reg_slots.items():
            prev = self.reg_state.get(inst_id, [])
            for i in range(count):
                state[base + i] = prev[i]
        kernel = design.kernel
        order = self.order

        def drive(sig, value, delay):
            kernel.schedule_drive(order, sig, value, delay)

        def drive_del(key, sig, value, delay):
            kernel.schedule_drive(("del", order, key), sig, value, delay)

        def drive_reg(key, sig, value, delay):
            kernel.schedule_drive(("reg", order, key), sig, value, delay)

        self._activate = cu.fn(
            bindings, state, kernel.probe, drive, drive_del, drive_reg,
            design.caller(f"in {self.path}"), kernel.intrinsic)

    def run(self, kernel):
        if self.design.lanes > 1:
            # Entity activations are data flow over batched values;
            # the lane-vectorized interpreter plan handles per-lane
            # divergence value-wise (per-lane reg fire masks, per-lane
            # conditional drives), which straight-line compiled code
            # cannot.  Processes stay compiled — they dominate runtime.
            EntityInstance.run(self, kernel)
            return
        fn = self._activate
        if fn is None:
            self.bind()
            fn = self._activate
        fn()


BlazeDesign.entity_class = BlazeEntityInstance
BlazeDesign.process_class = BlazeProcessInstance
BlazeDesign.lane_process_class = BlazeLaneProcessInstance


def elaborate_compiled(module, top, kernel=None, trace=None, lanes=1,
                       replicate=False, batch_units=None):
    """Elaborate ``module`` for compiled (Blaze) execution."""
    if kernel is None:
        kernel = Kernel(trace=trace)
    kernel.lanes = lanes
    unit = module.get(top)
    if unit is None or isinstance(unit, UnitDecl):
        raise SimulationError(f"top unit @{top} is not defined")
    if not unit.is_entity:
        raise SimulationError(f"top unit @{top} must be an entity")
    design = BlazeDesign(module, unit, kernel, lanes, replicate, batch_units)
    ports = {}
    for arg in unit.args:
        sig = design.create_signal(
            f"{top}.{arg.name}", arg.type,
            lane_default(arg.type.element, lanes))
        ports[id(arg)] = sig
    BlazeEntityInstance(design, unit, top, ports)
    design.finalize()
    return design
