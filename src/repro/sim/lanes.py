"""Typed lane (batch) operations over runtime values.

Batch simulation runs K independent stimulus sets ("lanes") through one
elaborated design.  Every runtime value is *lane-widened*:

=========  ==========================================================
``lN``     one :class:`LogicVec` of width K*N, lane-strided (lane k
           occupies bits [k*N, (k+1)*N) of every plane)
``iN``     one ``int`` of K*N bits, same lane-strided layout
``nN``     one ``int``, lane stride ``bit_width(nN)``
``time``   a single :class:`TimeValue` (delays are lane-invariant)
array      tuple / :class:`PackedLogicArray` of lane-widened elements
struct     tuple of lane-widened fields
=========  ==========================================================

This module is the single place that knows the layout.  It provides the
typed primitives (broadcast / extract / insert / uniformity), the generic
lane-aware evaluator used by both the interpreter plans and the Blaze
code generator, and the control-point guards: batched *data* may diverge
freely between lanes (handled per lane), but batched *control* — branch
conditions, dynamic indices — must be lane-uniform; a divergent control
value raises :class:`LaneDivergence`, which the batch driver catches to
re-run the simulation with per-lane replicated processes.

The fast path everywhere is uniformity: when all lanes hold the same
scalar (the case for identical-stimulus batches, and an invariant that
propagates through every operation), an op costs one uniformity check,
one scalar evaluation, and one O(1) broadcast — so the *per-lane*
marginal cost shrinks roughly by 1/K.
"""

from __future__ import annotations

import operator

from ..ir.ninevalued import (
    LogicVec, expand_lane_mask, lane_blend, lane_broadcast, lane_ones,
    lane_slice, lane_splice, lane_uniform,
)
from ..ir.types import bit_width
from ..ir.values import TimeValue
from .eval import evaluate, logic_level
from .values import (
    PackedLogicArray, SimulationError, default_value, mask,
    lane_extract as lane_get, lane_insert as lane_set,
    lane_stride as stride, lane_widen as broadcast,
)


class LaneDivergence(SimulationError):
    """Raised when batched *control flow* diverges between lanes.

    Data divergence is handled per lane; control divergence (a branch
    condition or dynamic index that differs between lanes) cannot be,
    because one process activity has a single program counter.  The
    batch driver catches this and re-runs in replicated-process mode.
    """


# broadcast / lane_get / lane_set / stride live in repro.sim.values
# (imported above) so the path-step machinery can use them without a
# circular import; this module re-exports them under their lane names.

def lane_pack(scalars, ty, lanes):
    """Assemble one lane-widened value from K scalar values."""
    if lanes == 1:
        return scalars[0]
    if ty.is_logic:
        w = ty.width
        val = unk = weak = aux = 0
        for k, s in enumerate(scalars):
            sh = k * w
            val |= s._val << sh
            unk |= s._unk << sh
            weak |= s._weak << sh
            aux |= s._aux << sh
        return LogicVec._make(w * lanes, val, unk, weak, aux)
    if ty.is_int or ty.is_enum:
        w = stride(ty)
        out = 0
        for k, s in enumerate(scalars):
            out |= s << (k * w)
        return out
    if ty.is_array:
        elems = tuple(
            lane_pack([s[i] for s in scalars], ty.element, lanes)
            for i in range(ty.length))
        if ty.element.is_logic:
            return PackedLogicArray.from_elements(elems)
        return elems
    if ty.is_struct:
        return tuple(lane_pack([s[i] for s in scalars], f, lanes)
                     for i, f in enumerate(ty.fields))
    if ty.is_time:
        return scalars[0]
    raise SimulationError(f"cannot lane-pack values of type {ty}")


def is_uniform(value, ty, lanes):
    """True if every lane of a lane-widened value holds the same scalar."""
    if lanes == 1:
        return True
    if ty.is_logic:
        return lane_uniform(value, ty.width, lanes)
    if ty.is_int or ty.is_enum:
        w = stride(ty)
        return value == (value & mask(w)) * lane_ones(w, lanes)
    if ty.is_array:
        el = ty.element
        return all(is_uniform(v, el, lanes) for v in value)
    if ty.is_struct:
        return all(is_uniform(v, f, lanes)
                   for v, f in zip(value, ty.fields))
    if ty.is_time:
        return True
    return False


def lane_default(ty, lanes):
    """The lane-widened initial value of a type."""
    return broadcast(default_value(ty), ty, lanes)


def lane_path(ty, lane, lanes):
    """The projection path that selects one lane of a batched signal."""
    if lanes == 1:
        return ()
    return (("lane", lane, lanes, ty),)


def path_of_lanes(inst, lanes):
    """Lane-aware variant of :func:`repro.sim.eval.path_of` for ``exts``.

    Slices of int/logic values must be gathered per lane in a batched
    parent (an ``lslice`` step carrying the parent's scalar stride);
    array slices select whole batched elements and stay lane-transparent.
    """
    inner = inst.operands[0].type
    if inner.is_signal:
        inner = inner.element
    elif inner.is_pointer:
        inner = inner.pointee
    offset = inst.attrs["offset"]
    length = inst.attrs["length"]
    if inner.is_int:
        return ("lslice", offset, length, "int", lanes, inner.width)
    if inner.is_logic:
        return ("lslice", offset, length, "logic", lanes, inner.width)
    return ("slice", offset, length, "array")


# -- control-point guards -----------------------------------------------------

def u1(cond, lanes):
    """Collapse a batched ``i1`` to a Python bool; all lanes must agree."""
    if cond == 0:
        return False
    if cond == lane_ones(1, lanes):
        return True
    raise LaneDivergence(
        f"branch condition diverges between lanes (mask {cond:#x})")


def uindex(value, lanes):
    """Collapse a batched dynamic index to a scalar int; must be uniform."""
    if isinstance(value, LogicVec):
        w = value._width // lanes
        if not lane_uniform(value, w, lanes):
            raise LaneDivergence("dynamic index diverges between lanes")
        v = lane_slice(value, 0, w)
        if not v.is_two_valued:
            raise SimulationError("dynamic index is unknown (X)")
        return v.to_int()
    # ints are packed with the operand's stride; uniformity is checked by
    # the caller supplying the stride via `uindex_int`.
    return value


def uindex_int(value, width, lanes):
    """Uniform dynamic index from a batched iN value."""
    if isinstance(value, LogicVec):
        return uindex(value, lanes)
    lane0 = value & mask(width)
    if value != lane0 * lane_ones(width, lanes):
        raise LaneDivergence("dynamic index diverges between lanes")
    return lane0


# -- generic lane-aware evaluation -------------------------------------------

_BITWISE_INT = {"and": int.__and__, "or": int.__or__, "xor": int.__xor__}

# Lane-exact fast paths for the hot ``iN`` opcodes.  The generic tiers
# below are correct for every op but cost ~15 Python calls per
# instruction (uniformity probes, per-lane extraction, scalar
# evaluation, re-packing); on the opcodes that dominate compiled
# processes — add/sub, compares, shifts, resizes, mux — that overhead
# is the entire batch runtime.  Each function here computes the same
# result as the scalar evaluator applied per lane, using O(1) SWAR
# plane arithmetic where the op allows it and a tight O(K) integer
# loop otherwise, and returns ``None`` to defer to the generic tiers
# for the operand shapes it does not cover (``lN`` values, enums,
# divergent selectors on aggregate types).

_REL_OPS = {
    "lt": operator.lt, "gt": operator.gt,
    "le": operator.le, "ge": operator.ge,
}


def _lanes_addsub(inst, operands, lanes):
    # SWAR add/sub: clearing (add) or presetting (sub) the per-lane MSB
    # keeps carries/borrows from crossing lane boundaries; the MSB is
    # then patched via XOR.  Exact for every width including w == 1.
    ty = inst.type
    if not ty.is_int:
        return None
    w = ty.width
    a, b = operands
    ones = lane_ones(w, lanes)
    high = (1 << (w - 1)) * ones
    low = (mask(w) * ones) ^ high
    if inst.opcode == "add":
        return ((a & low) + (b & low)) ^ ((a ^ b) & high)
    return ((a | high) - (b & low)) ^ ((a ^ b) & high) ^ high


def _lanes_compare(inst, operands, lanes):
    ty = inst.operands[0].type
    if not ty.is_int:
        return None
    w = ty.width
    a, b = operands
    mw = mask(w)
    ones = lane_ones(w, lanes)
    a0 = a & mw
    b0 = b & mw
    op = inst.opcode
    half = 1 << (w - 1)
    span = 1 << w
    if a == a0 * ones and b == b0 * ones:
        if op == "eq":
            hit = a0 == b0
        elif op == "neq":
            hit = a0 != b0
        else:
            if op[0] == "s":
                if a0 & half:
                    a0 -= span
                if b0 & half:
                    b0 -= span
            hit = _REL_OPS[op[1:]](a0, b0)
        return lane_ones(1, lanes) if hit else 0
    out = 0
    if op == "eq" or op == "neq":
        want_equal = op == "eq"
        for k in range(lanes):
            sh = k * w
            if ((((a >> sh) ^ (b >> sh)) & mw) == 0) == want_equal:
                out |= 1 << k
        return out
    rel = _REL_OPS[op[1:]]
    if op[0] == "s":
        for k in range(lanes):
            sh = k * w
            x = (a >> sh) & mw
            y = (b >> sh) & mw
            if x & half:
                x -= span
            if y & half:
                y -= span
            if rel(x, y):
                out |= 1 << k
    else:
        for k in range(lanes):
            sh = k * w
            if rel((a >> sh) & mw, (b >> sh) & mw):
                out |= 1 << k
    return out


def _lanes_shift(inst, operands, lanes):
    ty = inst.type
    aty = inst.operands[1].type
    if not ty.is_int or not aty.is_int:
        return None
    w = ty.width
    a, amount = operands
    wa = aty.width
    amt0 = amount & mask(wa)
    shl = inst.opcode == "shl"
    if amount == amt0 * lane_ones(wa, lanes):
        if amt0 >= w:
            return 0
        keep = mask(w - amt0) * lane_ones(w, lanes)
        if shl:
            return (a & keep) << amt0
        return (a >> amt0) & keep
    mw = mask(w)
    ma = mask(wa)
    out = 0
    for k in range(lanes):
        x = (a >> (k * w)) & mw
        amt = (amount >> (k * wa)) & ma
        v = ((x << amt) & mw) if shl else (x >> amt)
        out |= v << (k * w)
    return out


def _lanes_resize(inst, operands, lanes):
    sty = inst.operands[0].type
    ty = inst.type
    if not ty.is_int or not sty.is_int:
        return None
    w, wd = sty.width, ty.width
    a = operands[0]
    mw = mask(w)
    a0 = a & mw
    op = inst.opcode
    half = 1 << (w - 1)
    ext = mask(wd) ^ (mask(wd) & mw)
    if a == a0 * lane_ones(w, lanes):
        if op == "trunc":
            v = a0 & mask(wd)
        elif op == "sext" and a0 & half:
            v = a0 | ext
        else:
            v = a0
        return v * lane_ones(wd, lanes)
    out = 0
    if op == "trunc":
        md = mask(wd)
        for k in range(lanes):
            out |= ((a >> (k * w)) & md) << (k * wd)
    elif op == "sext":
        for k in range(lanes):
            x = (a >> (k * w)) & mw
            if x & half:
                x |= ext
            out |= x << (k * wd)
    else:
        for k in range(lanes):
            out |= ((a >> (k * w)) & mw) << (k * wd)
    return out


def _lanes_mux(inst, operands, lanes):
    choices, sel = operands
    sty = inst.operands[1].type
    n = len(choices)
    if sty.is_int:
        ws = sty.width
        ms = mask(ws)
        s0 = sel & ms
        if sel == s0 * lane_ones(ws, lanes):
            return choices[min(s0, n - 1)]
        if inst.type.is_int:
            # Divergent selector over an int array: gather per lane
            # with plain integer arithmetic.
            w = inst.type.width
            mw = mask(w)
            out = 0
            for k in range(lanes):
                idx = (sel >> (k * ws)) & ms
                if idx >= n:
                    idx = n - 1
                out |= ((choices[idx] >> (k * w)) & mw) << (k * w)
            return out
        return None
    if isinstance(sel, LogicVec):
        ws = sel._width // lanes
        if lane_uniform(sel, ws, lanes):
            v = lane_slice(sel, 0, ws)
            if not v.is_two_valued:
                raise SimulationError("mux selector is unknown (X)")
            return choices[min(v.to_int(), n - 1)]
    return None


def _uniform_index(value, ty, lanes):
    """A lane-uniform element index as an int, or ``None``."""
    if isinstance(value, LogicVec):
        w = value._width // lanes
        if not lane_uniform(value, w, lanes):
            return None
        v = lane_slice(value, 0, w)
        if not v.is_two_valued:
            raise SimulationError("index is unknown (X)")
        return v.to_int()
    w = stride(ty)
    lane0 = value & mask(w)
    if value != lane0 * lane_ones(w, lanes):
        return None
    return lane0


def _lanes_extf(inst, operands, lanes):
    # Element extraction is lane-transparent: the aggregate's elements
    # are themselves lane-widened, so a (uniform) index selects the
    # whole batched element.
    index = inst.attrs.get("index")
    if index is None:
        index = _uniform_index(operands[1], inst.operands[1].type, lanes)
        if index is None:
            return None
    agg = operands[0]
    if not 0 <= index < len(agg):
        raise SimulationError(
            f"extf index {index} out of range for {len(agg)} elements")
    return agg[index]


def _lanes_insf(inst, operands, lanes):
    index = inst.attrs.get("index")
    if index is None:
        index = _uniform_index(operands[2], inst.operands[2].type, lanes)
        if index is None:
            return None
    agg, value = operands[0], operands[1]
    if not 0 <= index < len(agg):
        raise SimulationError(
            f"insf index {index} out of range for {len(agg)} elements")
    return agg[:index] + (value,) + agg[index + 1:]


def _lanes_array(inst, operands, lanes):
    if inst.attrs.get("splat"):
        elems = tuple(operands[0] for _ in range(inst.type.length))
    else:
        elems = tuple(operands)
    if inst.type.element.is_logic:
        return PackedLogicArray.from_elements(elems)
    return elems


def _lanes_struct(inst, operands, lanes):
    return tuple(operands)


# -- per-instruction specialized kernels (Blaze lane-mode codegen) ------------

def _kernel_addsub(op, w, lanes):
    ones = lane_ones(w, lanes)
    high = (1 << (w - 1)) * ones
    low = (mask(w) * ones) ^ high
    if op == "add":
        def f(a, b):
            return ((a & low) + (b & low)) ^ ((a ^ b) & high)
    else:
        def f(a, b):
            return ((a | high) - (b & low)) ^ ((a ^ b) & high) ^ high
    return f


def _kernel_mul(w, lanes):
    mw = mask(w)
    ones = lane_ones(w, lanes)
    shifts = tuple(k * w for k in range(lanes))

    def f(a, b):
        a0 = a & mw
        b0 = b & mw
        if a == a0 * ones and b == b0 * ones:
            return ((a0 * b0) & mw) * ones
        out = 0
        for sh in shifts:
            out |= ((((a >> sh) & mw) * ((b >> sh) & mw)) & mw) << sh
        return out
    return f


def _kernel_compare(op, w, lanes):
    mw = mask(w)
    ones = lane_ones(w, lanes)
    full = lane_ones(1, lanes)
    half = 1 << (w - 1)
    span = 1 << w
    shifts = tuple(k * w for k in range(lanes))
    if op in ("eq", "neq"):
        want = op == "eq"

        def f(a, b):
            if a == b:
                return full if want else 0
            a0 = a & mw
            b0 = b & mw
            if a == a0 * ones and b == b0 * ones:
                return 0 if want else full
            out = 0
            for k, sh in enumerate(shifts):
                if ((((a >> sh) ^ (b >> sh)) & mw) == 0) == want:
                    out |= 1 << k
            return out
        return f
    rel = _REL_OPS[op[1:]]
    if op[0] == "s":
        def f(a, b):
            a0 = a & mw
            b0 = b & mw
            if a == a0 * ones and b == b0 * ones:
                if a0 & half:
                    a0 -= span
                if b0 & half:
                    b0 -= span
                return full if rel(a0, b0) else 0
            out = 0
            for k, sh in enumerate(shifts):
                x = (a >> sh) & mw
                y = (b >> sh) & mw
                if x & half:
                    x -= span
                if y & half:
                    y -= span
                if rel(x, y):
                    out |= 1 << k
            return out
    else:
        def f(a, b):
            a0 = a & mw
            b0 = b & mw
            if a == a0 * ones and b == b0 * ones:
                return full if rel(a0, b0) else 0
            out = 0
            for k, sh in enumerate(shifts):
                if rel((a >> sh) & mw, (b >> sh) & mw):
                    out |= 1 << k
            return out
    return f


def _kernel_shift(op, w, wa, lanes):
    mw = mask(w)
    ma = mask(wa)
    ones_a = lane_ones(wa, lanes)
    ones_w = lane_ones(w, lanes)
    keeps = tuple(mask(w - s) * ones_w for s in range(w))
    shl = op == "shl"
    pairs = tuple((k * w, k * wa) for k in range(lanes))

    def f(a, amount):
        amt0 = amount & ma
        if amount == amt0 * ones_a:
            if amt0 >= w:
                return 0
            if shl:
                return (a & keeps[amt0]) << amt0
            return (a >> amt0) & keeps[amt0]
        out = 0
        for sh, sha in pairs:
            x = (a >> sh) & mw
            amt = (amount >> sha) & ma
            v = ((x << amt) & mw) if shl else (x >> amt)
            out |= v << sh
        return out
    return f


def _kernel_resize(op, w, wd, lanes):
    mw = mask(w)
    md = mask(wd)
    ones = lane_ones(w, lanes)
    ones_d = lane_ones(wd, lanes)
    half = 1 << (w - 1)
    ext = md ^ (md & mw)
    pairs = tuple((k * w, k * wd) for k in range(lanes))
    if op == "trunc":
        def f(a):
            a0 = a & mw
            if a == a0 * ones:
                return (a0 & md) * ones_d
            out = 0
            for sh, shd in pairs:
                out |= ((a >> sh) & md) << shd
            return out
    elif op == "sext":
        def f(a):
            a0 = a & mw
            if a == a0 * ones:
                if a0 & half:
                    a0 |= ext
                return a0 * ones_d
            out = 0
            for sh, shd in pairs:
                x = (a >> sh) & mw
                if x & half:
                    x |= ext
                out |= x << shd
            return out
    else:
        def f(a):
            a0 = a & mw
            if a == a0 * ones:
                return a0 * ones_d
            out = 0
            for sh, shd in pairs:
                out |= ((a >> sh) & mw) << shd
            return out
    return f


def _kernel_mux(inst, w, ws, lanes):
    ms = mask(ws)
    ones_s = lane_ones(ws, lanes)
    mw = mask(w) if w is not None else None
    pairs = tuple((k * w if w is not None else 0, k * ws)
                  for k in range(lanes))

    def f(choices, sel):
        n = len(choices)
        s0 = sel & ms
        if sel == s0 * ones_s:
            return choices[s0 if s0 < n else n - 1]
        if mw is not None:
            out = 0
            for sh, shs in pairs:
                idx = (sel >> shs) & ms
                if idx >= n:
                    idx = n - 1
                out |= ((choices[idx] >> sh) & mw) << sh
            return out
        return evaluate_lanes(inst, (choices, sel), lanes)
    return f


def lane_kernel(inst, lanes):
    """Compile one pure instruction to a specialized lane callable.

    Returns ``fn(*operands) -> value`` with every type query, mask, and
    lane shift precomputed at compile time, or ``None`` when the
    op/type combination has no specialized form.  The Blaze lane-mode
    code generator binds the callable as a compiled-code constant, so
    executing the op costs one call — no per-execution dispatch.
    """
    op = inst.opcode
    ops = inst.operands
    ty = inst.type
    if op in ("add", "sub"):
        if ty.is_int:
            return _kernel_addsub(op, ty.width, lanes)
    elif op == "mul":
        if ty.is_int:
            return _kernel_mul(ty.width, lanes)
    elif op in ("eq", "neq", "ult", "ugt", "ule", "uge",
                "slt", "sgt", "sle", "sge"):
        if ops[0].type.is_int:
            return _kernel_compare(op, ops[0].type.width, lanes)
    elif op in ("shl", "shr"):
        if ty.is_int and ops[1].type.is_int:
            return _kernel_shift(op, ty.width, ops[1].type.width, lanes)
    elif op in ("zext", "sext", "trunc"):
        if ty.is_int and ops[0].type.is_int:
            return _kernel_resize(op, ops[0].type.width, ty.width, lanes)
    elif op == "mux":
        if ops[1].type.is_int:
            w = ty.width if ty.is_int else None
            return _kernel_mux(inst, w, ops[1].type.width, lanes)
    return None


_LANE_FAST = {
    "add": _lanes_addsub, "sub": _lanes_addsub,
    "shl": _lanes_shift, "shr": _lanes_shift,
    "zext": _lanes_resize, "sext": _lanes_resize, "trunc": _lanes_resize,
    "mux": _lanes_mux,
    "extf": _lanes_extf, "insf": _lanes_insf,
    "array": _lanes_array, "struct": _lanes_struct,
}
for _op in ("eq", "neq", "ult", "ugt", "ule", "uge",
            "slt", "sgt", "sle", "sge"):
    _LANE_FAST[_op] = _lanes_compare
del _op


def evaluate_lanes(inst, operands, lanes):
    """Evaluate one pure instruction over lane-widened operands.

    Four tiers, checked in order:

    1. bitwise ops (`and`/`or`/`xor`/`not`) are lane-exact on the widened
       planes — the same single integer expression as the scalar op;
    2. the hot ``iN`` opcodes dispatch to a dedicated lane-exact fast
       path (``_LANE_FAST``): O(1) SWAR arithmetic or a tight O(K)
       integer loop, no per-lane extraction / re-packing;
    3. when every operand is lane-uniform, evaluate once on lane 0 and
       broadcast (the identical-stimulus fast path);
    4. otherwise loop over lanes, evaluating the scalar op per lane —
       per-lane *data* divergence is handled exactly, and any per-lane
       error (division by zero, X selector) surfaces as the scalar run's
       :class:`SimulationError`.
    """
    op = inst.opcode
    if op == "const":
        return broadcast(inst.attrs["value"], inst.type, lanes)
    ops = inst.operands
    if op in _BITWISE_INT and len(operands) == 2:
        a, b = operands
        if ops[0].type.is_logic:
            if op == "and":
                return a.and_(b)
            if op == "or":
                return a.or_(b)
            return a.xor(b)
        if ops[0].type.is_int:
            return _BITWISE_INT[op](a, b)
    elif op == "not":
        a = operands[0]
        if ops[0].type.is_logic:
            return a.not_()
        if inst.type.is_int:
            return (~a) & mask(inst.type.width * lanes)
    fast = _LANE_FAST.get(op)
    if fast is not None:
        result = fast(inst, operands, lanes)
        if result is not None:
            return result
    types = [o.type for o in ops]
    if all(is_uniform(v, t, lanes) for v, t in zip(operands, types)):
        scalars = [lane_get(v, t, 0, lanes)
                   for v, t in zip(operands, types)]
        return broadcast(evaluate(inst, scalars), inst.type, lanes)
    per_lane = []
    for k in range(lanes):
        scalars = [lane_get(v, t, k, lanes)
                   for v, t in zip(operands, types)]
        per_lane.append(evaluate(inst, scalars))
    return lane_pack(per_lane, inst.type, lanes)


# -- intrinsics ---------------------------------------------------------------

def intrinsic_lanes(kernel, name, args, types, lanes, where=""):
    """Invoke an intrinsic from a lane-vectorized context.

    Uniform arguments collapse to one scalar invocation applying to all
    lanes (``kernel.current_lane`` stays ``None``); divergent arguments
    invoke per lane with lane attribution, so assertion failures, print
    output, and per-lane ``finish`` land on the right lane.
    """
    if all(is_uniform(v, t, lanes) for v, t in zip(args, types)):
        scalars = [lane_get(v, t, 0, lanes) for v, t in zip(args, types)]
        return kernel.intrinsic(name, scalars, where)
    result = None
    try:
        for k in range(lanes):
            if hasattr(kernel, "finished_lanes") and \
                    k in kernel.finished_lanes:
                continue
            kernel.current_lane = k
            scalars = [lane_get(v, t, k, lanes)
                       for v, t in zip(args, types)]
            result = kernel.intrinsic(name, scalars, where)
    finally:
        kernel.current_lane = None
    return result


# -- entity helpers: per-lane conditional drives and vectorized reg ----------

def drive_cond_lanes(kernel, order, inst_key, target, vty, value, delay,
                     cond, lanes):
    """Per-lane conditional drive from a vectorized entity.

    Lanes whose condition bit is set drive their lane projection of the
    target under a per-lane driver key; keying is per-lane even when the
    condition happens to be uniform, so a lane's drive timeline stays
    consistent across activations (cancellation semantics).
    """
    if cond == 0:
        return
    from .engine import SignalRef

    m = cond
    while m:
        low = m & -m
        k = low.bit_length() - 1
        m ^= low
        if isinstance(target, SignalRef):
            ref = SignalRef(
                target.signal, target.path + lane_path(vty, k, lanes),
                target.type)
        else:
            ref = SignalRef(target, lane_path(vty, k, lanes), target.type)
        kernel.schedule_drive(
            ("drv", order, inst_key, k), ref,
            lane_get(value, vty, k, lanes), delay)


def blend(old, new, lane_mask, ty, lanes):
    """Per-lane select between two lane-widened values of type ``ty``."""
    full = lane_ones(1, lanes)
    if lane_mask == 0:
        return old
    if lane_mask == full:
        return new
    if ty.is_logic:
        return lane_blend(old, new, lane_mask, ty.width, lanes)
    if ty.is_int or ty.is_enum:
        w = stride(ty)
        mexp = expand_lane_mask(lane_mask, w, lanes)
        return (old & ~mexp) | (new & mexp)
    if ty.is_array:
        elems = tuple(blend(o, v, lane_mask, ty.element, lanes)
                      for o, v in zip(old, new))
        if ty.element.is_logic:
            return PackedLogicArray.from_elements(elems)
        return elems
    if ty.is_struct:
        return tuple(blend(o, v, lane_mask, f, lanes)
                     for o, v, f in zip(old, new, ty.fields))
    raise SimulationError(f"cannot lane-blend a value of type {ty}")


def edge_mask(mode, prev, cur, ty, lanes):
    """The K-bit lane mask of a ``reg`` trigger's firing lanes.

    Single-bit ``l1`` triggers (the ubiquitous clock case) compute the
    mask with O(1) plane arithmetic; wider or integer triggers take the
    uniform fast path or fall back to a per-lane loop.  The per-lane
    rules mirror ``plan._reg_step`` exactly (X counts as the matching
    previous level for rise/fall).
    """
    full = lane_ones(1, lanes)
    if ty.is_logic and ty.width == 1:
        pv, pu = prev._val, prev._unk
        cv, cu = cur._val, cur._unk
        if mode == "rise":
            return cv & ~cu & (pu | ~pv) & full
        if mode == "fall":
            return ~cv & ~cu & (pu | pv) & full
        if mode == "both":
            return ((pv ^ cv) | (pu ^ cu) | (prev._weak ^ cur._weak)
                    | (prev._aux ^ cur._aux)) & full
        if mode == "high":
            return cv & ~cu & full
        return ~cv & ~cu & full
    if is_uniform(prev, ty, lanes) and is_uniform(cur, ty, lanes):
        hit = _edge_hit(mode, lane_get(prev, ty, 0, lanes),
                        lane_get(cur, ty, 0, lanes))
        return full if hit else 0
    out = 0
    for k in range(lanes):
        if _edge_hit(mode, lane_get(prev, ty, k, lanes),
                     lane_get(cur, ty, k, lanes)):
            out |= 1 << k
    return out


def _edge_hit(mode, prev, cur):
    if isinstance(cur, LogicVec):
        if mode == "rise":
            return logic_level(cur) == 1 and logic_level(prev) in (0, -1)
        if mode == "fall":
            return logic_level(cur) == 0 and logic_level(prev) in (1, -1)
        if mode == "both":
            return prev != cur
        if mode == "high":
            return logic_level(cur) == 1
        return logic_level(cur) == 0
    if mode == "rise":
        return prev == 0 and cur == 1
    if mode == "fall":
        return prev == 1 and cur == 0
    if mode == "both":
        return prev != cur
    if mode == "high":
        return cur == 1
    return cur == 0
