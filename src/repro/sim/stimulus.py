"""Randomized stimulus generation, shared by tests, CLI, and benchmarks.

The single-seed :func:`inject_stimulus` splices one randomized stimulus
process into a design's top entity — the differential-fuzz workhorse of
``tests/sim/test_engine_equivalence.py``.  The batch variants split the
seed in two: *target selection* always derives from the base seed (so
every lane drives the same nets with the same process signature, a
requirement for lane replicas), while the *waveform* derives from a
per-lane seed.  :func:`inject_batch_stimulus` packages K waveform
variants as a :class:`~repro.sim.batch.BatchStimulus`;
:func:`inject_lane_stimulus` builds the matching scalar reference run
for one lane.
"""

from __future__ import annotations

import random

from ..ir import Builder
from ..ir.units import Process
from ..ir.values import TimeValue
from .batch import BatchStimulus

#: Biased nine-valued alphabet: mostly two-valued so the designs keep
#: making progress, with enough X/Z/L/H/W/U/- to stress the planes.
FUZZ_ALPHABET = "0011" * 4 + "XZLHWU-"

STIMULUS_NAME = "__fuzz_stim__"


def random_logic_text(rng, width):
    return "".join(rng.choice(FUZZ_ALPHABET) for _ in range(width))


def stimulus_candidates(module, top_name, exclude_names=frozenset()):
    """The injectable signals of a top entity, in stable name order.

    Keyed by signal *name*, not body position: the same seed must pick
    the same nets before and after the lowering pipeline ran cleanup
    over the entity body (which may renumber or drop instructions).
    ``exclude_names`` removes nets from the pool (e.g. design-driven
    outputs, whose multi-driver conflicts are not preserved across the
    drv -> con rewrite of the technology mapper).
    """
    top = module.get(top_name)
    return sorted(
        (inst for inst in top.body if inst.opcode == "sig"
         and inst.name is not None and inst.name not in exclude_names
         and (inst.type.element.is_int or inst.type.element.is_logic)),
        key=lambda inst: inst.name)


def design_driven_names(module, top_name):
    """Names of top-level nets driven by the design itself — entity
    instance outputs and the top's own continuous assigns.

    Back-driving these is excluded from batch stimulus: a lane replica
    only patches its own lane, while the vectorized design driver
    re-drives *all* lanes whenever any lane's inputs change, so the
    scalar run's last-driver-wins-over-time conflict on such a net is
    not reproducible lane by lane.  (The lowering fuzz harness excludes
    them for the analogous reason: the techmap turns drives into net
    merges, where a second driver resolves instead of overwriting.)
    """
    top = module.get(top_name)
    driven = set()
    for inst in top.body:
        if inst.opcode == "inst":
            callee = module.get(inst.callee)
            if callee is not None and getattr(callee, "is_entity", False):
                driven.update(o.name for o in inst.inst_outputs()
                              if o.name is not None)
        elif inst.opcode == "drv":
            target = inst.drv_signal()
            if target.name is not None:
                driven.add(target.name)
    return frozenset(driven)


def stimulus_targets(module, top_name, seed, exclude_names=frozenset(),
                     limit=4):
    """Pick up to ``limit`` target nets from the base seed alone."""
    candidates = stimulus_candidates(module, top_name, exclude_names)
    if not candidates:
        return []
    rng = random.Random(f"{seed}:targets")
    return rng.sample(candidates, min(len(candidates), limit))


def _emit_waves(proc, rng, waves, drives_per_wave, phase_fs=0):
    """Fill a stimulus process body with randomized drive waves.

    A nonzero ``phase_fs`` makes the stimulus *race-free*: every drive
    delay is offset by it (shifting transitions off the testbenches'
    500ps time grid) and all drive maturation times are kept pairwise
    distinct.  Two nets changing in the same femtosecond as a clock edge
    make the registered view of them legitimately scheduler-dependent,
    so comparisons across *different* elaborations of one design
    (behavioural vs netlist) need race-free stimulus; same-module
    cross-engine comparisons do not (all engines see the same races).
    """
    blocks = [proc.create_block(f"wave{i}") for i in range(waves + 1)]
    b = Builder.at_end(blocks[0])
    now_fs = 0
    used_fs = set()
    for wave, block in enumerate(blocks[:-1]):
        b.set_insert_point(block)
        for _ in range(drives_per_wave):
            target = rng.choice(proc.outputs)
            elem = target.type.element
            if elem.is_logic:
                value = b.const_logic(random_logic_text(rng, elem.width))
            else:
                value = b.const_int(elem, rng.getrandbits(elem.width))
            delay_fs = rng.randrange(1, 4) * 500_000 + phase_fs
            if phase_fs:
                while now_fs + delay_fs in used_fs:
                    delay_fs += 500_000
                used_fs.add(now_fs + delay_fs)
            b.drv(target, value, b.const_time(TimeValue(delay_fs)))
        pause_fs = rng.randrange(1, 5) * 1_000_000
        b.wait(blocks[wave + 1], b.const_time(TimeValue(pause_fs)), [])
        now_fs += pause_fs
    b.set_insert_point(blocks[-1])
    b.halt()


def build_stimulus_process(module, name, targets, seed, waves=6,
                           drives_per_wave=3):
    """One stimulus process over fixed ``targets``, waveform from
    ``seed``.  Added to ``module`` but not instantiated."""
    proc = Process(name, (), (), [s.type for s in targets],
                   [f"t{i}" for i in range(len(targets))])
    module.add(proc)
    _emit_waves(proc, random.Random(seed), waves, drives_per_wave)
    return proc


def inject_stimulus(module, top_name, seed, waves=6, drives_per_wave=3,
                    exclude_names=frozenset(), phase_fs=0):
    """Splice a randomized stimulus process into the design's top entity.

    Drives random values — nine-valued strings with X/Z/L/H/W/U/-
    injections on ``lN`` nets, random integers on ``iN`` nets — onto up
    to four of the top's internal signals at randomized times.  Returns
    True if any signal was targeted.  Built from ``Random(seed)`` only,
    so every backend sees a byte-identical module.  ``phase_fs`` shifts
    the drive times off the testbench clock grid (see ``_emit_waves``).
    """
    rng = random.Random(seed)
    candidates = stimulus_candidates(module, top_name, exclude_names)
    if not candidates:
        return False
    targets = rng.sample(candidates, min(len(candidates), 4))
    proc = Process(STIMULUS_NAME, (), (), [s.type for s in targets],
                   [f"t{i}" for i in range(len(targets))])
    module.add(proc)
    _emit_waves(proc, rng, waves, drives_per_wave, phase_fs)
    top = module.get(top_name)
    Builder.at_end(top.body).inst(proc, [], targets)
    return True


def inject_batch_stimulus(module, top_name, seed, lane_seeds, waves=6,
                          drives_per_wave=3, exclude_names=frozenset()):
    """Inject a K-lane divergent stimulus into the top entity.

    Targets come from the base ``seed``; lane k's waveform from
    ``lane_seeds[k]``.  Lane 0's process is instantiated in the design;
    the returned :class:`BatchStimulus` swaps lane k's replica for the
    k-th variant.  Design-driven nets are always excluded (see
    :func:`design_driven_names`).  Returns None when the top has no
    injectable nets.
    """
    exclude_names = (frozenset(exclude_names)
                     | design_driven_names(module, top_name))
    targets = stimulus_targets(module, top_name, seed, exclude_names)
    if not targets:
        return None
    units = []
    for k, lane_seed in enumerate(lane_seeds):
        name = STIMULUS_NAME if k == 0 else f"{STIMULUS_NAME}l{k}"
        units.append(build_stimulus_process(
            module, name, targets, lane_seed, waves, drives_per_wave))
    top = module.get(top_name)
    Builder.at_end(top.body).inst(units[0], [], targets)
    return BatchStimulus({units[0].name: units})


def inject_lane_stimulus(module, top_name, seed, lane_seed, waves=6,
                         drives_per_wave=3, exclude_names=frozenset()):
    """The scalar reference of one batch lane: same targets (from the
    base ``seed``), same exclusions, waveform from ``lane_seed``.
    Returns True if any signal was targeted."""
    exclude_names = (frozenset(exclude_names)
                     | design_driven_names(module, top_name))
    targets = stimulus_targets(module, top_name, seed, exclude_names)
    if not targets:
        return False
    proc = build_stimulus_process(
        module, STIMULUS_NAME, targets, lane_seed, waves, drives_per_wave)
    top = module.get(top_name)
    Builder.at_end(top.body).inst(proc, [], targets)
    return True
