"""Batch-parallel simulation: K stimulus lanes per elaborated design.

One elaboration + one kernel run simulates K independent "lanes" over
lane-widened values (see :mod:`repro.sim.lanes`): every ``lN`` plane and
``iN`` word carries K lane-strided copies, so uniform work costs one
scalar operation plus an O(1) broadcast regardless of K.

Two execution modes, selected automatically by :func:`simulate_batch`:

* *vectorized* — every activity runs once per activation covering all
  lanes.  Correct while control stays lane-uniform, which identical
  stimulus guarantees by induction; a divergent control point raises
  :class:`~repro.sim.lanes.LaneDivergence`.
* *replicated* — processes are elaborated once per lane over
  lane-projected ports (GPU-style predication for the process layer),
  entities stay vectorized.  Used for divergent stimulus
  (:class:`BatchStimulus`) and as the automatic fallback when a
  vectorized run diverges (deterministic re-run from t=0).

The result demultiplexes per lane: :meth:`BatchSimulationResult.lane`
returns a scalar-equivalent view whose trace, print output, assertion
failures, and finish time are byte-identical to the corresponding
scalar run.
"""

from __future__ import annotations

from .trace import Trace
from .values import SimulationError, lane_extract


class BatchStimulus:
    """Per-lane stimulus: swap a process unit for K lane variants.

    Maps a process unit *name* (as instantiated in the design) to a list
    of K replacement process units, one per lane.  All replacements must
    share the original's signature — same argument types in the same
    order — because lane k's replica binds the original instantiation's
    operands.  Any replacement forces replicated mode: divergent
    stimulus cannot run vectorized.
    """

    def __init__(self, units=None):
        self.units = dict(units or {})

    def replace(self, name, per_lane_units):
        self.units[name] = list(per_lane_units)
        return self

    def validate(self, lanes):
        for name, units in self.units.items():
            if len(units) != lanes:
                raise SimulationError(
                    f"BatchStimulus for @{name} supplies {len(units)} "
                    f"units for {lanes} lanes")
            sig0 = [a.type for a in units[0].args]
            for unit in units[1:]:
                if [a.type for a in unit.args] != sig0:
                    raise SimulationError(
                        f"BatchStimulus for @{name}: lane unit "
                        f"@{unit.name} signature differs from lane 0")


def demux_trace(trace, types, lane, lanes, finish_fs=None,
                finish_state=None):
    """Extract one lane's scalar trace from a batched trace.

    ``types`` maps signal name -> element type (the lane stride is
    type-dependent).  Consecutive identical per-lane values collapse —
    a change on another lane is no change on this one — and changes
    past the lane's own finish time are dropped (a finished lane's
    scalar run records nothing after its final instant).  The batched
    trace is per-fs last-wins, but the kernel kept running other lanes
    through later delta rounds of the finish instant; ``finish_state``
    (the kernel's snapshot at the moment the lane finished) supplies
    the lane's true final values for that instant.
    """
    out = Trace()
    for name, history in trace.finalize().changes.items():
        ty = types.get(name)
        if ty is None:
            continue
        demuxed = []
        for fs, value in history:
            if finish_fs is not None and fs >= finish_fs:
                break
            v = lane_extract(value, ty, lane, lanes)
            if demuxed and demuxed[-1][1] == v:
                continue
            demuxed.append((fs, v))
        if finish_fs is not None and finish_state is not None:
            final = finish_state.get(name)
            if final is not None:
                v = lane_extract(final, ty, lane, lanes)
                if not demuxed or demuxed[-1][1] != v:
                    demuxed.append((finish_fs, v))
        out.changes[name] = demuxed
    return out


class LaneResult:
    """One lane's scalar-equivalent view of a batch run.

    Mirrors the :class:`~repro.sim.SimulationResult` surface that the
    equivalence harnesses consume (``trace``, ``output``,
    ``assertion_failures``, ``final_time_fs``, ``ok()``).  ``stats``
    are the shared kernel's and are *not* comparable to a scalar run's.
    """

    def __init__(self, lane, trace, output, assertion_failures,
                 final_time_fs, stats):
        self.lane = lane
        self.trace = trace
        self.output = output
        self.assertion_failures = assertion_failures
        self.final_time_fs = final_time_fs
        self.stats = stats

    def ok(self):
        return not self.assertion_failures


def _lane_text(entries, lane):
    """Entries attributed to ``lane`` (or to all lanes), lane markers
    stripped so instance paths read like the scalar run's."""
    marker = f"#l{lane}"
    return [text.replace(marker, "")
            for entry_lane, text in entries
            if entry_lane is None or entry_lane == lane]


class BatchSimulationResult:
    """Outcome of a batch simulation: the raw batched run + lane views."""

    def __init__(self, design, kernel, trace, lanes, mode):
        self.design = design
        self.kernel = kernel
        self.trace = trace
        self.lanes = lanes
        self.mode = mode  # "scalar" | "vectorized" | "replicated"
        self.assertion_failures = kernel.assertion_failures
        self.output = kernel.output
        self.stats = kernel.stats
        self._lane_cache = {}

    @property
    def final_time_fs(self):
        return self.kernel.now[0]

    def ok(self):
        return not self.assertion_failures

    def _signal_types(self):
        types = {}
        for sig in self.kernel.signals:
            for name in sig.aliases:
                types[name] = sig.type.element
        return types

    def lane(self, k):
        """The scalar-equivalent result of lane ``k``."""
        if not 0 <= k < self.lanes:
            raise IndexError(f"lane {k} out of range for {self.lanes}")
        cached = self._lane_cache.get(k)
        if cached is not None:
            return cached
        kernel = self.kernel
        if self.mode == "scalar":
            result = LaneResult(
                k, self.trace, list(kernel.output),
                list(kernel.assertion_failures), kernel.now[0],
                kernel.stats)
        else:
            finish_fs = kernel.lane_finish_fs.get(k)
            final = finish_fs if finish_fs is not None else kernel.now[0]
            result = LaneResult(
                k,
                demux_trace(self.trace, self._signal_types(), k,
                            self.lanes, finish_fs,
                            kernel.lane_finish_state.get(k)),
                _lane_text(kernel.output, k),
                _lane_text(kernel.assertion_failures, k),
                final, kernel.stats)
        self._lane_cache[k] = result
        return result

    def lane_results(self):
        return [self.lane(k) for k in range(self.lanes)]


def _elaborate_batch(module, top, backend, trace, lanes, replicate,
                     batch_units):
    from .engine import Kernel

    if backend == "interp":
        from .interp import elaborate

        kernel = Kernel(trace=trace)
        design = elaborate(module, top, kernel, lanes=lanes,
                           replicate=replicate, batch_units=batch_units)
    elif backend == "blaze":
        from .blaze import elaborate_compiled

        kernel = Kernel(trace=trace)
        design = elaborate_compiled(
            module, top, kernel, lanes=lanes, replicate=replicate,
            batch_units=batch_units)
    elif backend == "cycle":
        from .cycle import CycleKernel, elaborate_cycle

        kernel = CycleKernel(trace=trace)
        design = elaborate_cycle(
            module, top, kernel, lanes=lanes, replicate=replicate,
            batch_units=batch_units)
    else:
        from . import BACKENDS

        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return design, kernel


def _run_batch(module, top, lanes, until_fs, backend, trace_filter,
               replicate, batch_units):
    trace = Trace(trace_filter)
    design, kernel = _elaborate_batch(
        module, top, backend, trace, lanes, replicate, batch_units)
    kernel.run(until_fs=until_fs)
    trace.finalize()
    mode = "replicated" if design.replicate else "vectorized"
    return BatchSimulationResult(design, kernel, trace, lanes, mode)


def simulate_batch(module, top, lanes, until_fs=None, backend="interp",
                   stimulus=None, trace_filter=None):
    """Simulate ``lanes`` stimulus sets through one elaborated design.

    With no ``stimulus`` every lane sees identical inputs and the run is
    vectorized (uniform fast path); should control nonetheless diverge —
    e.g. per-lane X propagation into a branch — the run deterministically
    restarts from t=0 in replicated-process mode.  A
    :class:`BatchStimulus` supplies per-lane process variants and goes
    straight to replicated mode.  ``lanes == 1`` without stimulus is the
    unmodified scalar pipeline.
    """
    from .lanes import LaneDivergence

    batch_units = {}
    if stimulus is not None and stimulus.units:
        stimulus.validate(lanes)
        batch_units = dict(stimulus.units)
    if lanes == 1 and not batch_units:
        from . import simulate

        result = simulate(module, top, until_fs=until_fs, backend=backend,
                          trace_filter=trace_filter)
        return BatchSimulationResult(
            result.design, result.kernel, result.trace, 1, "scalar")
    if batch_units:
        return _run_batch(module, top, lanes, until_fs, backend,
                          trace_filter, True, batch_units)
    try:
        return _run_batch(module, top, lanes, until_fs, backend,
                          trace_filter, False, {})
    except LaneDivergence:
        # Divergent control under supposedly-uniform stimulus (per-lane
        # finish, X-dependent branches): re-run from t=0 replicated.
        return _run_batch(module, top, lanes, until_fs, backend,
                          trace_filter, True, {})
