"""Simulation of LLHD designs.

Four simulators — the three of the paper's evaluation (section 6.1)
plus a levelized netlist engine:

* ``interp`` — *LLHD-Sim*, the reference interpreter: deliberately the
  simplest possible simulator of the instruction set.
* ``blaze`` — the *LLHD-Blaze* analogue: compiles every unit to Python
  code objects ahead of simulation (the paper JIT-compiles to LLVM IR).
* ``cycle`` — an independently implemented, statically scheduled
  compiled-code simulator standing in for the paper's commercial
  simulator baseline (see DESIGN.md, substitution 1).
* ``levelized`` — ahead-of-time compiled execution of netlist designs:
  techmap library cells are levelized into straight-line generated
  code (cached on disk, keyed by the module's bitcode hash) with
  storage cells as sequential cut points; zero scheduler events per
  gate (see :mod:`repro.sim.levelize`).

All four produce :class:`~repro.sim.trace.Trace` objects that can be
compared for equivalence — the paper's "traces match" claim.
"""

from __future__ import annotations

from .batch import (
    BatchSimulationResult, BatchStimulus, demux_trace, simulate_batch,
)
from .engine import Kernel, SignalInstance, SignalRef, advance_time
from .trace import Trace
from .values import SimulationError, default_value

BACKENDS = ("interp", "blaze", "cycle", "levelized")


class SimulationResult:
    """Outcome of a simulation run."""

    def __init__(self, design, kernel, trace):
        self.design = design
        self.kernel = kernel
        self.trace = trace
        self.assertion_failures = kernel.assertion_failures
        self.output = kernel.output
        self.stats = kernel.stats
        self.sanitizer = kernel.sanitizer

    @property
    def findings(self):
        """Sanitizer findings (empty when run without ``sanitize=True``)."""
        if self.sanitizer is None:
            return []
        return list(self.sanitizer.findings)

    @property
    def final_time_fs(self):
        return self.kernel.now[0]

    def ok(self):
        """True if no assertion failed during simulation."""
        return not self.assertion_failures


def simulate(module, top, until_fs=None, backend="interp",
             trace_filter=None, sanitize=False, cache_dir=None):
    """Elaborate and simulate ``module`` from entity ``top``.

    Returns a :class:`SimulationResult` whose trace records every signal
    value change (filtered by ``trace_filter(signal) -> bool`` if given).
    With ``sanitize=True`` the scheduler records drive races and
    oscillations as :class:`~repro.sim.sanitize.Finding` objects instead
    of raising, exposed as ``result.findings``.  ``cache_dir`` overrides
    the levelized engine's on-disk compile cache location.
    """
    trace = Trace(trace_filter)
    if backend == "interp":
        from .interp import elaborate as elaborator

        kernel = Kernel(trace=trace)
    elif backend == "blaze":
        from .blaze import elaborate_compiled as elaborator

        kernel = Kernel(trace=trace)
    elif backend == "cycle":
        from .cycle import CycleKernel
        from .cycle import elaborate_cycle as elaborator

        kernel = CycleKernel(trace=trace)
    elif backend == "levelized":
        from .levelize import elaborate_levelized

        kernel = Kernel(trace=trace)

        def elaborator(module, top, kernel, _dir=cache_dir):
            return elaborate_levelized(module, top, kernel,
                                       cache_dir=_dir)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if sanitize:
        from .sanitize import Sanitizer

        kernel.sanitizer = Sanitizer()
    design = elaborator(module, top, kernel)
    kernel.run(until_fs=until_fs)
    trace.finalize()
    return SimulationResult(design, kernel, trace)


__all__ = [
    "BACKENDS", "BatchSimulationResult", "BatchStimulus", "Kernel",
    "SignalInstance", "SignalRef", "SimulationError", "SimulationResult",
    "Trace", "advance_time", "default_value", "demux_trace", "simulate",
    "simulate_batch",
]
