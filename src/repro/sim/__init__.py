"""Simulation of LLHD designs.

Three simulators, as in the paper's evaluation (section 6.1):

* ``interp`` — *LLHD-Sim*, the reference interpreter: deliberately the
  simplest possible simulator of the instruction set.
* ``blaze`` — the *LLHD-Blaze* analogue: compiles every unit to Python
  code objects ahead of simulation (the paper JIT-compiles to LLVM IR).
* ``cycle`` — an independently implemented, statically scheduled
  compiled-code simulator standing in for the paper's commercial
  simulator baseline (see DESIGN.md, substitution 1).

All three produce :class:`~repro.sim.trace.Trace` objects that can be
compared for equivalence — the paper's "traces match" claim.
"""

from __future__ import annotations

from .batch import (
    BatchSimulationResult, BatchStimulus, demux_trace, simulate_batch,
)
from .engine import Kernel, SignalInstance, SignalRef, advance_time
from .trace import Trace
from .values import SimulationError, default_value

BACKENDS = ("interp", "blaze", "cycle")


class SimulationResult:
    """Outcome of a simulation run."""

    def __init__(self, design, kernel, trace):
        self.design = design
        self.kernel = kernel
        self.trace = trace
        self.assertion_failures = kernel.assertion_failures
        self.output = kernel.output
        self.stats = kernel.stats

    @property
    def final_time_fs(self):
        return self.kernel.now[0]

    def ok(self):
        """True if no assertion failed during simulation."""
        return not self.assertion_failures


def simulate(module, top, until_fs=None, backend="interp",
             trace_filter=None):
    """Elaborate and simulate ``module`` from entity ``top``.

    Returns a :class:`SimulationResult` whose trace records every signal
    value change (filtered by ``trace_filter(signal) -> bool`` if given).
    """
    trace = Trace(trace_filter)
    if backend == "interp":
        from .interp import elaborate

        kernel = Kernel(trace=trace)
        design = elaborate(module, top, kernel)
    elif backend == "blaze":
        from .blaze import elaborate_compiled

        kernel = Kernel(trace=trace)
        design = elaborate_compiled(module, top, kernel)
    elif backend == "cycle":
        from .cycle import CycleKernel, elaborate_cycle

        kernel = CycleKernel(trace=trace)
        design = elaborate_cycle(module, top, kernel)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    kernel.run(until_fs=until_fs)
    trace.finalize()
    return SimulationResult(design, kernel, trace)


__all__ = [
    "BACKENDS", "BatchSimulationResult", "BatchStimulus", "Kernel",
    "SignalInstance", "SignalRef", "SimulationError", "SimulationResult",
    "Trace", "advance_time", "default_value", "demux_trace", "simulate",
    "simulate_batch",
]
