"""Simulation traces: recording, comparison, and VCD export.

The paper's Table 2 claim "traces match between the two simulators for all
designs" is reproduced by running every design under the interpreter, the
compiled simulator, and the independent cycle simulator, and asserting
:func:`Trace.equivalent` across the results.
"""

from __future__ import annotations

import io

from .values import format_value


class Trace:
    """A value-change trace: per-signal lists of ``(time, value)``.

    Only physical time (femtoseconds) is recorded; intra-instant delta and
    epsilon steps are simulator implementation detail, so two correct
    simulators agree on the final value a signal holds at each femtosecond
    even when their internal delta sequences differ.
    """

    def __init__(self, signal_filter=None):
        self.changes = {}       # signal name -> [(fs, value), ...]
        self.signal_filter = signal_filter

    def record(self, time, signal, value):
        if self.signal_filter is not None and not self.signal_filter(signal):
            return
        changes = self.changes
        fs = time[0]
        # A net that absorbed others through `con` records under every
        # merged name, so netlist-level traces stay comparable with the
        # pre-techmap design signal-for-signal (aliases is a 1-tuple for
        # the vast majority of nets, which never merged).
        for name in signal.aliases:
            history = changes.get(name)
            if history is None:
                history = changes[name] = []
            if history and history[-1][0] == fs:
                history[-1] = (fs, value)
            else:
                history.append((fs, value))

    def finalize(self):
        """Collapse consecutive identical values (delta-step churn)."""
        for name, history in self.changes.items():
            collapsed = []
            for fs, value in history:
                if collapsed and collapsed[-1][1] == value:
                    continue
                collapsed.append((fs, value))
            self.changes[name] = collapsed
        return self

    def signals(self):
        return sorted(self.changes)

    def live_signals(self):
        """Names that record an actual change beyond their initial value.

        The semantic-preservation harnesses require every live signal of
        a reference run to survive a transformation under its own name
        (declared-but-unused nets may legitimately be DCE'd away); this
        is the one shared definition of "live".
        """
        return {name for name, history in self.finalize().changes.items()
                if len(history) > 1}

    def history(self, name):
        return list(self.changes.get(name, []))

    def value_at(self, name, fs):
        """The value a signal holds at (the end of) time ``fs``."""
        result = None
        for t, value in self.changes.get(name, []):
            if t > fs:
                break
            result = value
        return result

    # -- comparison ------------------------------------------------------------

    def equivalent(self, other, signals=None):
        """True if both traces record identical value sequences.

        ``signals`` restricts the comparison (e.g. to the design's ports);
        by default all signals present in *both* traces are compared.
        """
        return not self.differences(other, signals)

    def differences(self, other, signals=None, limit=10):
        """Human-readable list of trace mismatches (empty = equivalent)."""
        a, b = self.finalize(), other.finalize()
        if signals is None:
            signals = sorted(set(a.changes) & set(b.changes))
        issues = []
        for name in signals:
            ha, hb = a.history(name), b.history(name)
            if ha == hb:
                continue
            for i in range(max(len(ha), len(hb))):
                ea = ha[i] if i < len(ha) else None
                eb = hb[i] if i < len(hb) else None
                if ea != eb:
                    issues.append(
                        f"{name}: change {i}: {_fmt(ea)} vs {_fmt(eb)}")
                    if len(issues) >= limit:
                        return issues
                    break
        return issues

    # -- export -----------------------------------------------------------------

    def to_vcd(self, timescale="1fs"):
        """Render as a Value Change Dump (two-valued signals only)."""
        out = io.StringIO()
        out.write(f"$timescale {timescale} $end\n")
        idents = {}
        for i, name in enumerate(self.signals()):
            ident = _vcd_ident(i)
            idents[name] = ident
            out.write(f"$var wire 64 {ident} {name} $end\n")
        out.write("$enddefinitions $end\n")
        events = []
        for name, history in self.changes.items():
            for fs, value in history:
                events.append((fs, name, value))
        events.sort(key=lambda e: e[0])
        current_time = None
        for fs, name, value in events:
            if fs != current_time:
                out.write(f"#{fs}\n")
                current_time = fs
            if isinstance(value, int):
                out.write(f"b{value:b} {idents[name]}\n")
            else:
                out.write(f"s{format_value(value)} {idents[name]}\n")
        return out.getvalue()


def _fmt(entry):
    if entry is None:
        return "<missing>"
    fs, value = entry
    return f"({fs}fs, {format_value(value)})"


def _vcd_ident(i):
    chars = "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    ident = ""
    while True:
        ident += chars[i % len(chars)]
        i //= len(chars)
        if i == 0:
            return ident
