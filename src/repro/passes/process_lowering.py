"""Process Lowering (PL) — section 4.5.

A process reduced to a single block whose ``wait`` terminator observes all
probed signals (and has no timeout) behaves exactly like an entity: its
body re-executes whenever an input changes.  PL removes the wait and moves
the instructions into an entity with the same signature.
"""

from __future__ import annotations

from ..ir.instructions import Instruction
from ..ir.units import Entity
from .clone import clone_instruction
from .manager import PRESERVE_ALL, ModulePass, register_pass

_ENTITY_OK = frozenset({
    "const", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
    "srem", "and", "or", "xor", "not", "neg", "shl", "shr", "eq", "neq",
    "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge", "zext", "sext",
    "trunc", "array", "struct", "insf", "extf", "inss", "exts", "mux",
    "sig", "prb", "drv", "call",
})


def can_lower(proc):
    """True if PL applies: single self-looping block, total sensitivity."""
    if not proc.is_process or len(proc.blocks) != 1:
        return False
    block = proc.blocks[0]
    term = block.terminator
    if term is None or term.opcode != "wait":
        return False
    if term.wait_time() is not None:
        return False
    if term.wait_dest() is not block:
        return False
    observed = {id(s) for s in term.wait_signals()}
    for inst in block.instructions[:-1]:
        if inst.opcode not in _ENTITY_OK:
            return False
        if inst.opcode == "prb":
            root = _root_signal(inst.operands[0])
            if root is None or id(root) not in observed:
                return False
    return True


def _root_signal(value):
    """Follow extf/exts projections back to the underlying signal."""
    while isinstance(value, Instruction) and value.opcode in ("extf", "exts"):
        value = value.operands[0]
    if value.type.is_signal:
        return value
    return None


def lower_process(module, proc):
    """Replace a PL-eligible process with an equivalent entity in-place."""
    assert can_lower(proc)
    entity = Entity(
        proc.name,
        [a.type for a in proc.inputs], [a.name for a in proc.inputs],
        [a.type for a in proc.outputs], [a.name for a in proc.outputs])
    value_map = {}
    for old, new in zip(proc.args, entity.args):
        value_map[id(old)] = new
    block = proc.blocks[0]
    for inst in block.instructions[:-1]:
        entity.body.append(clone_instruction(inst, value_map))
    module.remove(proc.name)
    module.add(entity)
    return entity


def run(module, am=None):
    """Lower every eligible process; returns the number lowered."""
    lowered = 0
    for proc in list(module.processes()):
        if can_lower(proc):
            lower_process(module, proc)
            if am is not None:
                am.forget(proc)
            lowered += 1
    return lowered


@register_pass
class ProcessLoweringPass(ModulePass):
    """Rewrite single-block fully-sensitive processes as entities (§4.5).

    Lowered processes are replaced wholesale; analyses cached for other
    units stay valid, and the replaced process is forgotten precisely.
    """

    name = "pl"
    preserves = PRESERVE_ALL

    def run_on_module(self, module, am):
        lowered = run(module, am)
        if lowered:
            self.stat("lowered", lowered)
        return bool(lowered)
