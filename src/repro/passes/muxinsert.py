"""Mux insertion — conditional and partial drives become plain drives.

The technology mapper (:mod:`repro.interop.techmap`) maps *unconditional
whole-signal* drives: a zero-delay drive is a ``con`` net merge, a
delayed one a ``del`` node.  Structural entities produced by TCM/PL and
Deseq may still carry

* **conditional drives** — ``drv %s, %v if %c`` holds the previous value
  while ``%c`` is low (latch-style semantics on a single-driver net), and
* **partial drives** — ``drv`` of an ``exts``/``extf`` projection of a
  signal, updating only a slice or element.

This pass rewrites both into unconditional drives of the whole signal by
inserting multiplexers (the classic mux-insertion step of synthesis):
the driven value becomes ``mux([prb %s, %v], %c)`` — the signal feeds
back its own present value when the condition is low — and a partial
drive re-inserts the driven slice into the probed whole value
(``inss``/``insf``).  Only *exclusively-driven* signals are rewritten:
with several drivers the rewrite would turn "at most one driver
active" into permanent multi-driver resolution.  Exclusivity is
checked beyond the entity: a drive of an output argument is only
rewritten when every instantiation of the entity in the enclosing
module binds that port to a net with no other drivers (another
instance's output, a ``drv``, ``reg``, or ``con`` in the parent, or a
net escaping through the parent's own ports all block the rewrite).

As a second step, left-nested priority mux chains (the shape TCM's drive
coalescing and Deseq's value specialization produce —
``mux([mux([mux([v0,v1],c1),v2],c2),v3],c3)``) are flattened into a
single **N-way mux** over all the choices, selected by a narrow priority
index: the wide datapath then goes through one N-way mux cell instead of
a tower of 2-way cells, and the priority encoding runs on an index a few
bits wide.  Only two-valued (``i1``) selectors are flattened: an ``lN``
selector with an ``X`` is a runtime error the rewrite must not displace.
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.instructions import Instruction
from ..ir.types import int_type
from ..ir.values import TimeValue
from .manager import PRESERVE_ALL, UnitPass, register_pass

#: Flatten priority chains of at least this many 2-way muxes (the result
#: is a mux with one more choice than the chain has muxes).
MIN_CHAIN = 3


def run(unit):
    """Run mux insertion on one entity; returns True if it changed."""
    return MuxInsertPass().run_on_unit(unit, None)


@register_pass
class MuxInsertPass(UnitPass):
    """Rewrite conditional/partial drives into unconditional N-way mux
    drives so the technology mapper can map them.

    Only inserts and replaces instructions inside one entity body — the
    (trivial) CFG and all cached analyses survive.
    """

    name = "muxinsert"
    applies_to = ("entity",)
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        if not unit.is_entity:
            return False
        changed = False
        for kind, count in _rewrite_drives(unit).items():
            if count:
                self.stat(kind, count)
                changed = True
        flattened = _flatten_priority_chains(unit)
        if flattened:
            self.stat("nway", flattened)
            changed = True
        return changed


# -- conditional and partial drives -------------------------------------------


def _root_signal(value):
    """Walk ``exts``/``extf`` projections back to the projected signal."""
    steps = []
    while isinstance(value, Instruction) and value.opcode in ("extf",
                                                              "exts"):
        steps.append(value)
        value = value.operands[0]
    if value.type.is_signal:
        return value, list(reversed(steps))
    return None, None


def _rewrite_drives(unit):
    counts = {"conditional": 0, "partial": 0}
    drives = {}
    for inst in unit.body:
        if inst.opcode == "drv":
            root, steps = _root_signal(inst.drv_signal())
            if root is not None:
                drives.setdefault(id(root), []).append((inst, root, steps))
    for group in drives.values():
        if len(group) != 1:
            continue  # several drivers: resolution, not priority — leave
        drv, root, steps = group[0]
        cond = drv.drv_condition()
        if cond is None and not steps:
            continue
        if not _zero_delay(drv.drv_delay()):
            # A delayed conditional drive interacts with the driver's
            # pending timeline (a feedback re-drive truncates scheduled
            # transitions the original would have left alone) — leave
            # those to explicit modelling.
            continue
        if not _exclusive_driver(unit, root, drv):
            continue  # the net may have drivers beyond this entity
        builder = Builder.before(drv)
        old = builder.prb(root)
        value = drv.drv_value()
        if steps:
            value = _insert_projection(builder, old, steps, value)
            counts["partial"] += 1
        if cond is not None:
            choices = builder.array([old, value])
            value = builder.mux(choices, cond)
            counts["conditional"] += 1
        builder.drv(root, value, drv.drv_delay())
        drv.erase()
    return counts


def _zero_delay(delay):
    return (isinstance(delay, Instruction) and delay.opcode == "const"
            and delay.attrs["value"] == TimeValue(0))


def _drives_net(use, keep=None):
    """True when this use of a net is a *driver* (or net merge) other
    than ``keep`` — a drv target, a con, a reg target, or a binding to
    an instance output port."""
    user = use.user
    if user is keep:
        return False
    op = user.opcode
    if op == "drv" or op == "reg":
        return use.index == 0
    if op == "con":
        return True
    if op == "inst":
        return use.index >= user.attrs["num_inputs"]
    return False


def _output_port_index(unit, arg):
    for index, out in enumerate(unit.outputs):
        if out is arg:
            return index
    return None


def _exclusive_driver(unit, root, drv):
    """True when ``drv`` is provably the only driver of ``root``'s net.

    A local ``sig`` qualifies unless something else in this entity
    drives or merges it.  An output argument additionally requires a
    look at every instantiation of this entity in the module: the bound
    parent net must have no other drivers — following ports
    transitively when a parent forwards the net through its own output
    (the Moore wrapper-entity pattern).  Without a module (a standalone
    entity under test) the argument case is accepted — there are no
    instantiations to conflict.
    """
    if any(_drives_net(use, keep=drv) for use in root.uses):
        return False
    if isinstance(root, Instruction):  # a local sig
        return True
    port = _output_port_index(unit, root)
    if port is None:
        return False  # an *input* argument: its net lives elsewhere
    module = getattr(unit, "module", None)
    if module is None:
        return True
    seen = set()
    work = [(unit, port)]
    while work:
        entity, p = work.pop()
        if (id(entity), p) in seen:
            continue
        seen.add((id(entity), p))
        for other in module:
            for inst in getattr(other, "instructions", lambda: ())():
                if inst.opcode != "inst" or inst.callee != entity.name:
                    continue
                net = inst.inst_outputs()[p]
                self_index = inst.attrs["num_inputs"] + p
                for use in net.uses:
                    if use.user is inst and use.index == self_index:
                        continue  # the binding under scrutiny itself
                    if _drives_net(use):
                        return False
                if isinstance(net, Instruction):
                    continue  # a local sig of the parent, fully checked
                outer = _output_port_index(other, net)
                if outer is None:
                    return False  # enters through an input port: opaque
                work.append((other, outer))
    return True


def _insert_projection(builder, whole, steps, value):
    """Re-insert ``value`` at the projection described by ``steps``
    (outermost first) into the probed ``whole`` value."""
    step = steps[0]
    if step.opcode == "exts":
        offset, length = step.attrs["offset"], step.attrs["length"]
        inner = builder.exts(whole, offset, length)
        if len(steps) > 1:
            value = _insert_projection(builder, inner, steps[1:], value)
        return builder.inss(whole, value, offset, length)
    index = step.attrs.get("index")
    if index is None:
        index = step.operands[1]
    inner = builder.extf(whole, index)
    if len(steps) > 1:
        value = _insert_projection(builder, inner, steps[1:], value)
    return builder.insf(whole, value, index)


# -- N-way mux formation -------------------------------------------------------


#: Attribute marking a mux this pass generated for a priority *index*;
#: such muxes are themselves left-nested 2-way chains and must never be
#: collected for flattening again, or the pass would re-flatten its own
#: output forever.  (The attribute is internal bookkeeping: the printer
#: does not emit it, so a round-tripped module merely re-flattens once.)
_INDEX_MARK = "muxinsert_index"


def _is_two_way(inst):
    if not isinstance(inst, Instruction) or inst.opcode != "mux" \
            or inst.attrs.get(_INDEX_MARK):
        return False
    array = inst.operands[0]
    if not isinstance(array, Instruction) or array.opcode != "array" \
            or array.attrs.get("splat") or len(array.operands) != 2:
        return False
    sel = inst.operands[1]
    return sel.type.is_int and sel.type.width == 1


def _flatten_priority_chains(unit):
    flattened = 0
    # Heads: 2-way muxes not themselves the fallback arm of another.
    for inst in list(unit.body):
        if not _is_two_way(inst):
            continue
        if _chain_parent(inst) is not None:
            continue  # interior link; handled from its head
        chain = _collect_chain(inst)
        if len(chain) < MIN_CHAIN:
            continue
        _build_nway(unit, inst, chain)
        flattened += 1
    return flattened


def _chain_parent(mux):
    """The 2-way mux using ``mux`` as its priority fallback, if any."""
    uses = list(mux.uses)
    if len(uses) != 1:
        return None
    array = uses[0].user
    if not isinstance(array, Instruction) or array.opcode != "array" \
            or uses[0].index != 0:
        return None
    array_uses = list(array.uses)
    if len(array_uses) != 1:
        return None
    parent = array_uses[0].user
    if _is_two_way(parent) and parent.operands[0] is array:
        return parent
    return None


def _collect_chain(head):
    """Walk the fallback arms down from ``head``; returns the chain from
    the bottom mux up to ``head`` (each a 2-way mux)."""
    chain = [head]
    current = head
    while True:
        fallback = current.operands[0].operands[0]
        if not _is_two_way(fallback) or _chain_parent(fallback) is not current:
            break
        chain.append(fallback)
        current = fallback
    chain.reverse()
    return chain


def _build_nway(unit, head, chain):
    """Replace the chain with one N-way mux and a priority index."""
    bottom = chain[0]
    choices = [bottom.operands[0].operands[0]]
    conds = []
    for mux in chain:
        choices.append(mux.operands[0].operands[1])
        conds.append(mux.operands[1])
    bits = max(1, (len(choices) - 1).bit_length())
    ty = int_type(bits)
    # Insert at the head: every choice and condition of the chain is
    # defined at or above its mux, hence above the head.
    builder = Builder.before(head)
    index = builder.const_int(ty, 0)
    consts = [builder.const_int(ty, i + 1) for i in range(len(conds))]
    for value, cond in zip(consts, conds):
        pair = builder.array([index, value])
        index = builder.mux(pair, cond)
        index.attrs[_INDEX_MARK] = True
    array = builder.array(choices)
    nway = builder.mux(array, index, name=head.name)
    head.replace_all_uses_with(nway)
    # The old chain is dead; DCE would get it, but erase it here so the
    # pass leaves a clean body even when run standalone.
    for mux in reversed(chain):
        array_inst = mux.operands[0]
        mux.erase()
        if not array_inst.uses:
            array_inst.erase()
