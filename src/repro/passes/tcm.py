"""Temporal Code Motion (TCM) — section 4.3.

Moves ``drv`` instructions into a single exiting block of their temporal
region, making the drive unconditional in control flow but conditional in
data (the path condition becomes the drv's condition operand):

1. Ensure each TR has a single exiting block, inserting an auxiliary block
   when several arcs leave one TR toward another (section 4.3.2).
2. Move each drv to its TR's exiting block, attaching the branch-decision
   chain from the closest common dominator as the drive condition
   (section 4.3.3).
3. Coalesce drives of the same signal in the exiting block into one drive
   whose value is selected by the conditions (realized directly as the
   array+mux form that TCFE would otherwise produce from a phi).
"""

from __future__ import annotations

from ..analysis.manager import AnalysisManager
from ..ir.builder import Builder
from .manager import PRESERVE_ALL, UnitPass, register_pass


class TCMError(Exception):
    """Raised when a drive cannot be scheduled into its TR exit."""


def run(unit, am=None):
    """Run TCM on a process; returns True if the unit changed."""
    return TemporalCodeMotionPass().run_on_unit(
        unit, am if am is not None else AnalysisManager())


@register_pass
class TemporalCodeMotionPass(UnitPass):
    """Move drives into a single exiting block per TR (§4.3).

    Step 1 may insert auxiliary blocks (invalidated precisely when it
    does); steps 2 and 3 only move and insert instructions, so the
    analyses refreshed after step 1 remain valid afterwards.
    """

    name = "tcm"
    applies_to = ("proc",)
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        if not unit.is_process:
            return False
        changed = _single_exit_per_region(unit, am.get("temporal", unit))
        if changed:
            self.stat("aux_blocks")
            am.invalidate(unit)
        regions = am.get("temporal", unit)
        domtree = am.get("domtree", unit)
        moved = _move_drives(unit, regions, domtree)
        if moved:
            self.stat("moved_drives")
        coalesced = _coalesce_drives(unit, regions)
        if coalesced:
            self.stat("coalesced")
        return changed | moved | coalesced


# -- step 1: single exiting block per TR ---------------------------------------


def _single_exit_per_region(unit, regions):
    changed = False
    for tr in regions.regions():
        # Arcs from `tr` into each other TR, grouped by target entry block.
        arcs = {}
        for block in regions.blocks_of(tr):
            term = block.terminator
            if term is None or term.opcode != "br":
                continue
            for succ in block.successors():
                succ_tr = regions.region_of.get(id(succ))
                if succ_tr is not None and succ_tr != tr:
                    arcs.setdefault(id(succ), (succ, []))[1].append(block)
        for _, (target, sources) in arcs.items():
            if len(sources) < 2:
                continue
            # Insert an auxiliary block: all sources branch to it, and it
            # branches to the target TR's entry (Figure 5d's %aux).
            aux = unit.create_block("aux")
            for source in sources:
                term = source.terminator
                for i, op in enumerate(term.operands):
                    if op is target:
                        term.set_operand(i, aux)
            # Phis in the target lose per-edge resolution when edges merge:
            # only targets without phis are handled (canonical HDL forms).
            if target.phis():
                raise TCMError(
                    f"@{unit.name}: cannot merge arcs into block with phis")
            Builder.at_end(aux).br(target)
            changed = True
    return changed


# -- step 2: move drives into the exiting block --------------------------------


def _move_drives(unit, regions, domtree):
    changed = False
    for tr in regions.regions():
        exits = regions.exiting_blocks(tr)
        if len(exits) != 1:
            continue  # leave drives; lowering will reject if needed
        exit_block = exits[0]
        for block in regions.blocks_of(tr):
            for inst in list(block.instructions):
                if inst.opcode != "drv" or block is exit_block:
                    continue
                if not _move_one_drive(unit, inst, block, exit_block,
                                       domtree, regions):
                    continue
                changed = True
    return changed


def _move_one_drive(unit, drv, block, exit_block, domtree, regions):
    dominator = domtree.common_dominator(block, exit_block)
    if dominator is None:
        return False
    condition = _path_condition(unit, dominator, block, domtree, regions,
                                exit_block)
    if condition is _UNREACHABLE:
        return False
    block.remove(drv)
    index = len(exit_block.instructions)
    if exit_block.terminator is not None:
        index -= 1
    exit_block.insert(index, drv)
    if condition is not None:
        existing = drv.drv_condition()
        if existing is not None:
            builder = Builder.before(drv)
            condition = builder.and_(existing, condition)
        if drv.attrs.get("has_cond"):
            drv.set_operand(3, condition)
        else:
            drv.attrs["has_cond"] = True
            drv.add_operand(condition)
    return True


_UNREACHABLE = object()


def _path_condition(unit, dominator, target, domtree, regions, exit_block):
    """The condition under which control flows ``dominator -> target``.

    Returns None for "always", an i1 SSA value otherwise, or _UNREACHABLE
    if a required branch condition does not dominate the exit block (the
    materialized condition would break SSA dominance).
    """
    memo = {id(dominator): None}
    builder = Builder(exit_block,
                      max(0, len(exit_block.instructions) - 1)
                      if exit_block.terminator is not None
                      else len(exit_block.instructions))
    not_cache = {}

    def negate(value):
        cached = not_cache.get(id(value))
        if cached is None:
            cached = builder.not_(value)
            not_cache[id(value)] = cached
        return cached

    def visit(block):
        if id(block) in memo:
            return memo[id(block)]
        terms = []
        for pred in block.predecessors():
            if not domtree.dominates(dominator, pred):
                continue
            if regions.region_of.get(id(pred)) != \
                    regions.region_of.get(id(block)):
                continue  # arcs from other TRs (e.g. loop back-edges)
            term = pred.terminator
            if term is None:
                continue
            pred_cond = visit(pred)
            if pred_cond is _UNREACHABLE:
                return _mark(block, _UNREACHABLE)
            edge_cond = None
            if term.opcode == "br" and term.is_conditional_branch:
                cond_value = term.branch_condition()
                if not domtree.value_dominates(cond_value, exit_block.terminator
                                               or exit_block.instructions[-1]):
                    return _mark(block, _UNREACHABLE)
                dest_false, dest_true = term.operands[1], term.operands[2]
                if dest_true is block and dest_false is block:
                    edge_cond = None
                elif dest_true is block:
                    edge_cond = cond_value
                else:
                    edge_cond = negate(cond_value)
            combined = _and(builder, pred_cond, edge_cond)
            terms.append(combined)
        if not terms:
            return _mark(block, _UNREACHABLE)
        result = terms[0]
        for term_cond in terms[1:]:
            result = _or(builder, result, term_cond)
        return _mark(block, result)

    def _mark(block, value):
        memo[id(block)] = value
        return value

    return visit(target)


def _and(builder, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return builder.and_(a, b)


def _or(builder, a, b):
    if a is None or b is None:
        return None  # "always" absorbs
    return builder.or_(a, b)


# -- step 3: coalesce same-signal drives in the exit block ----------------------


def _coalesce_drives(unit, regions):
    changed = False
    for tr in regions.regions():
        exits = regions.exiting_blocks(tr)
        if len(exits) != 1:
            continue
        exit_block = exits[0]
        groups = {}
        for inst in exit_block.instructions:
            if inst.opcode != "drv":
                continue
            key = (id(inst.drv_signal()), id(inst.drv_delay()))
            groups.setdefault(key, []).append(inst)
        for drvs in groups.values():
            if len(drvs) < 2:
                continue
            _coalesce_group(exit_block, drvs)
            changed = True
    return changed


def _coalesce_group(exit_block, drvs):
    """Merge ordered drives of one signal: the last satisfied one wins.

    The merged drive replaces the group's *last* member in place rather
    than moving to the end of the block: scheduling is transport-
    cancelling (a drive deletes this driver's pending transactions at or
    after its time), so reordering a drive past a same-signal drive with
    a different delay would change which transactions survive.
    """
    last = drvs[-1]
    builder = Builder.before(last)
    value = drvs[0].drv_value()
    condition = drvs[0].drv_condition()
    for drv in drvs[1:]:
        v, c = drv.drv_value(), drv.drv_condition()
        if c is None:
            # An unconditional later drive overrides everything before it.
            value, condition = v, None
        else:
            choices = builder.array([value, v])
            value = builder.mux(choices, c)
            condition = None if condition is None \
                else builder.or_(condition, c)
    signal = last.drv_signal()
    delay = last.drv_delay()
    for drv in drvs[:-1]:
        drv.erase()
    index = exit_block.index_of(last)
    last.erase()
    Builder(exit_block, index).drv(signal, value, delay, condition)


def _strip_terminator(block):
    """A tiny adapter letting Builder.at_end insert before the terminator."""
    class _View:
        def __init__(self, block):
            self._block = block

        def append(self, inst):
            index = len(self._block.instructions)
            if self._block.terminator is not None:
                index -= 1
            self._block.insert(index, inst)
            return inst

        def insert(self, index, inst):
            return self._block.insert(index, inst)

        def index_of(self, inst):
            return self._block.index_of(inst)

    return _View(block)
