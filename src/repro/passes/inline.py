"""Function call inlining — section 4.1.

"To facilitate later transformations, all function calls are inlined at
this point."  Calls to ``llhd.*`` intrinsics are kept; recursive calls
cannot be inlined and are reported to the caller (the lowering pipeline
rejects such processes).
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.units import UnitDecl
from .clone import clone_blocks_into
from .manager import PassError, UnitPass, register_pass


class InlineError(Exception):
    """Raised when a call cannot be inlined (recursion, missing body)."""


@register_pass
class InlinePass(UnitPass):
    """Inline every non-intrinsic call in a unit (§4.1).

    Splices cloned callee blocks into the caller — a CFG change.  The
    callee is looked up through ``unit.module``, so the unit must live in
    a module.
    """

    name = "inline"
    applies_to = ("func", "proc")
    preserves = frozenset()

    def run_on_unit(self, unit, am):
        if unit.is_entity:
            return False
        if unit.module is None:
            raise PassError(
                f"inline: @{unit.name} is not part of a module")
        inlined = inline_calls(unit, unit.module)
        if inlined:
            self.stat("inlined", inlined)
        return bool(inlined)


def inline_calls(unit, module, _stack=()):
    """Inline every non-intrinsic call in ``unit``; returns #calls inlined."""
    if unit.is_entity:
        return 0
    inlined = 0
    progress = True
    while progress:
        progress = False
        for block in list(unit.blocks):
            call = next((i for i in block.instructions
                         if i.opcode == "call"
                         and not i.callee.startswith("llhd.")), None)
            if call is None:
                continue
            callee = module.get(call.callee)
            if callee is None or isinstance(callee, UnitDecl):
                raise InlineError(
                    f"@{unit.name}: cannot inline call to undefined "
                    f"@{call.callee}")
            if callee.name in _stack or callee is unit:
                raise InlineError(
                    f"@{unit.name}: recursive call to @{call.callee}")
            # First make sure the callee itself is call-free.
            inline_calls(callee, module, _stack + (unit.name,))
            _inline_one(unit, block, call, callee)
            inlined += 1
            progress = True
    return inlined


def _inline_one(unit, block, call, callee):
    # Split the caller block at the call site.
    index = block.index_of(call)
    continuation = unit.create_block((block.name or "bb") + ".cont")
    tail = block.instructions[index + 1:]
    del block.instructions[index + 1:]
    for inst in tail:
        inst.parent = continuation
        continuation.instructions.append(inst)
    # Phis in successors referencing `block` must now reference the
    # continuation (control reaches them through it).
    term = continuation.terminator
    if term is not None:
        for succ in continuation.successors():
            for phi in succ.phis():
                for i, (value, pred) in enumerate(phi.phi_pairs()):
                    if pred is block:
                        phi.set_operand(2 * i + 1, continuation)

    # Clone the callee body, mapping its arguments to the call operands.
    value_map = {}
    for arg, operand in zip(callee.args, call.operands):
        value_map[id(arg)] = operand
    new_blocks = clone_blocks_into(
        unit, callee.blocks, value_map, name_suffix=f".{callee.name}")

    # Rewrite cloned rets into branches to the continuation.
    returned = []
    for new_block in new_blocks:
        term = new_block.terminator
        if term is not None and term.opcode == "ret":
            value = term.operands[0] if term.operands else None
            term.erase()
            Builder.at_end(new_block).br(continuation)
            if value is not None:
                returned.append((value, new_block))

    # Replace the call result.
    if not call.type.is_void and returned:
        if len(returned) == 1:
            result = returned[0][0]
        else:
            result = Builder(continuation, 0).phi(returned)
        call.replace_all_uses_with(result)
    call.erase()
    Builder.at_end(block).br(new_blocks[0])

    # Keep block order readable: continuation after the inlined body.
    unit.blocks.remove(continuation)
    unit.blocks.append(continuation)
