"""Memory-to-register promotion — section 2.5.8.

Promotes ``var`` stack slots whose only uses are direct ``ld``/``st`` into
SSA values with phi nodes, using the classic iterated-dominance-frontier
phi placement [Cytron et al.].  The paper requires all stack and heap
memory instructions to be promoted before lowering to Structural LLHD, as
memory has no hardware equivalent.
"""

from __future__ import annotations

from ..analysis.manager import AnalysisManager
from ..ir.instructions import Instruction
from .manager import PRESERVE_ALL, UnitPass, register_pass


def promotable_vars(unit):
    """``var``/``alloc`` instructions used only by direct ld/st."""
    out = []
    for block in unit.blocks:
        for inst in block.instructions:
            if inst.opcode not in ("var", "alloc"):
                continue
            ok = True
            for use in inst.uses:
                user = use.user
                if user.opcode == "ld":
                    continue
                if user.opcode == "st" and use.index == 0:
                    continue
                ok = False
                break
            if ok:
                out.append(inst)
    return out


def run(unit, am=None):
    """Promote all promotable vars in a CF unit; returns True if changed."""
    return Mem2RegPass().run_on_unit(
        unit, am if am is not None else AnalysisManager())


@register_pass
class Mem2RegPass(UnitPass):
    """Promote stack slots to SSA values with phi nodes (§2.5.8).

    Inserts phis and erases ld/st/var instructions inside existing blocks;
    the CFG — and with it the dominator tree it consumes — is unchanged.
    """

    name = "mem2reg"
    applies_to = ("func", "proc")
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        if unit.is_entity:
            return False
        candidates = promotable_vars(unit)
        if not candidates:
            return False
        domtree = am.get("domtree", unit)
        frontier = domtree.dominance_frontier()
        reachable = {id(b) for b in domtree.order}

        for var in candidates:
            if id(var.parent) not in reachable:
                continue
            _promote(unit, var, domtree, frontier)
            self.stat("promoted")
        return True


def _promote(unit, var, domtree, frontier):
    # 1. Blocks containing a definition (st) — plus the var's own block,
    #    whose init value acts as the initial store.
    def_blocks = {id(var.parent): var.parent}
    loads = []
    stores = []
    for use in list(var.uses):
        user = use.user
        if user.opcode == "ld":
            loads.append(user)
        else:
            stores.append(user)
            def_blocks[id(user.parent)] = user.parent

    # 2. Phi placement at the iterated dominance frontier.
    phis = {}  # id(block) -> phi instruction
    worklist = list(def_blocks.values())
    while worklist:
        block = worklist.pop()
        for df_block in frontier.get(id(block), []):
            if id(df_block) in phis:
                continue
            phi = Instruction("phi", var.type.pointee, (), None,
                              var.name)
            df_block.insert(0, phi)
            phis[id(df_block)] = phi
            if id(df_block) not in def_blocks:
                def_blocks[id(df_block)] = df_block
                worklist.append(df_block)

    # 3. Renaming walk over the dominator tree.
    children = {id(b): [] for b in domtree.order}
    for block in domtree.order:
        idom = domtree.immediate_dominator(block)
        if idom is not None:
            children[id(idom)].append(block)

    init_value = var.operands[0]
    incoming = {}  # id(phi) -> [(value, pred_block)]

    def rename(block, current):
        phi = phis.get(id(block))
        if phi is not None:
            current = phi
        for inst in list(block.instructions):
            if inst is var:
                current = init_value
            elif inst.opcode == "ld" and inst.operands \
                    and inst.operands[0] is var:
                inst.replace_all_uses_with(current)
                inst.erase()
            elif inst.opcode == "st" and inst.operands \
                    and inst.operands[0] is var:
                current = inst.operands[1]
                inst.erase()
        for succ in block.successors():
            succ_phi = phis.get(id(succ))
            if succ_phi is not None:
                incoming.setdefault(id(succ_phi), []).append(
                    (current, block))
        for child in children[id(block)]:
            rename(child, current)

    rename(domtree.order[0], init_value)

    # 4. Wire up phi operands (deduplicate multi-edge predecessors).
    for phi in phis.values():
        seen = set()
        for value, pred in incoming.get(id(phi), []):
            if id(pred) in seen:
                continue
            seen.add(id(pred))
            phi.add_operand(value if value is not None else init_value)
            phi.add_operand(pred)

    var.erase()

    # 5. Prune phis that ended up trivial (single or self-referential).
    _prune_trivial_phis(unit, set(phis.values()))


def _prune_trivial_phis(unit, candidates):
    again = True
    while again:
        again = False
        for phi in list(candidates):
            if phi.parent is None:
                candidates.discard(phi)
                continue
            values = {id(v) for v, _ in phi.phi_pairs() if v is not phi}
            if len(values) == 1:
                replacement = next(v for v, _ in phi.phi_pairs()
                                   if v is not phi)
                phi.replace_all_uses_with(replacement)
                phi.erase()
                candidates.discard(phi)
                again = True
