"""Desequentialization (Deseq) — section 4.6.

Identifies processes describing sequential circuits (flip-flops, latches)
and rewrites them into entities with explicit ``reg`` storage:

1. Consider processes with exactly two basic blocks and temporal regions
   (the canonical form TCM/TCFE produce; "covers all relevant practical
   HDL inputs").
2. Canonicalize each drive condition into DNF; each disjunctive term
   identifies a separate trigger.
3. Classify each probed sample as *past* (TR of the ``wait``) or *present*
   (TR of the ``drv``); pattern-match ``¬T0 ∧ T1`` as a rising edge,
   ``T0 ∧ ¬T1`` as falling, the disjunction of both as either-edge; all
   remaining terms become high/low level triggers or trigger conditions.
4. Emit a ``reg`` in a new entity, cloning the full DFG of the driven
   value, delay, and conditions.

Nine-valued (``l1``) triggers: the Moore frontend detects edges on logic
clocks by comparing X01 levels against the edge's target level —
``posedge`` is ``eq(now, '1') ∧ ¬eq(old, '1')``, ``negedge`` is
``eq(now, '0') ∧ ¬eq(old, '0')`` — so an ``X``/``Z`` phase matches
neither edge while ``X → 1`` still counts as rising (IEEE 1800).  The DNF
literals of such a condition are the i1 ``eq``/``neq`` comparisons, not
raw probes; :func:`_classify_literal` recognizes them as level samples of
the probed ``l1`` signal, and the emitted ``reg`` uses the *probe* as its
trigger.  This is exact: the simulators' ``reg`` edge detection
(``sim.eval.logic_level``) fires a rise when the level is 1 now and was
0-or-unknown before, which is precisely ``eq(now,'1') ∧ ¬eq(old,'1')``
for a one-bit trigger.  Polarity combinations with no ``reg``
equivalent (e.g. "was 1, now anything-but-1", which would fire on
``1 → X``) are rejected.

Processes whose drives all map to registers are replaced by the entity;
anything else is left untouched (the lowering pipeline then rejects it,
carrying the precise :class:`DeseqError` reason when one was recorded).
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.instructions import Instruction
from ..ir.units import Entity
from .clone import clone_instruction
from .dnf import FALSE, build_dnf, literals, terms
from .manager import PRESERVE_ALL, ModulePass, register_pass


class DeseqError(Exception):
    """Raised internally when a process does not match a sequential form."""


def matches_shape(proc, am=None):
    """Two blocks, two TRs: one wait block, one drive block."""
    from ..analysis.temporal import TemporalRegions

    if not proc.is_process or len(proc.blocks) != 2:
        return False
    regions = am.get("temporal", proc) if am is not None \
        else TemporalRegions(proc)
    if regions.count != 2:
        return False
    waits = [b for b in proc.blocks
             if b.terminator is not None and b.terminator.opcode == "wait"]
    if len(waits) != 1:
        return False
    b0 = waits[0]
    b1 = next(b for b in proc.blocks if b is not b0)
    term = b1.terminator
    if term is None or term.opcode != "br" or term.is_conditional_branch:
        return False
    return term.operands[0] is b0 and b0.terminator.wait_dest() is b1


def _root_signal(value):
    while isinstance(value, Instruction) and value.opcode in ("extf", "exts"):
        value = value.operands[0]
    return value if value.type.is_signal else None


def _logic_level_literal(value):
    """Decompose an i1 literal testing the X01 level of an ``l1`` probe.

    The Moore frontend expresses nine-valued edge and level tests as
    ``eq``/``neq`` of a one-bit probe against a two-valued one-bit
    constant.  For a one-bit vector ``neq(x, '0')`` is the same predicate
    as ``eq(x, '1')`` (both are false on any unknown), so both normalize
    to ``(probe, level)``.  Returns None when the literal is not of this
    shape.
    """
    if not isinstance(value, Instruction) or value.opcode not in ("eq",
                                                                  "neq"):
        return None
    a, b = value.operands
    if isinstance(a, Instruction) and a.opcode == "const":
        a, b = b, a
    if not (isinstance(a, Instruction) and a.opcode == "prb"
            and a.type.is_logic and a.type.width == 1):
        return None
    if not (isinstance(b, Instruction) and b.opcode == "const"
            and b.type.is_logic and b.type.width == 1):
        return None
    const = b.attrs["value"]
    if not const.is_two_valued:
        return None
    level = const.to_int()
    if value.opcode == "neq":
        level = 1 - level
    return a, level


def _classify_literal(value, b0, b1):
    """-> (kind, root_signal, level, sample_value).

    ``kind`` is ``"past"``/``"present"`` for samples, ``"opaque"``
    otherwise.  ``level`` is None for plain i1 probes and 0/1 for
    nine-valued level tests (``eq``/``neq`` of an ``l1`` probe against a
    constant); ``sample_value`` is the probe instruction itself — the
    value a ``reg`` trigger observes.
    """
    probe = value
    level = None
    decomposed = _logic_level_literal(value)
    if decomposed is not None:
        probe, level = decomposed
    if isinstance(probe, Instruction) and probe.opcode == "prb":
        root = _root_signal(probe.operands[0])
        if probe.parent is b0:
            return "past", root, level, probe
        if probe.parent is b1:
            return "present", root, level, probe
    return "opaque", None, None, None


def _analyze_drive(drv, b0, b1):
    """Map one drive's condition DNF into trigger specs.

    Returns a list of ``(mode, trigger_value, rest_literals, assignment)``
    where rest_literals is a tuple of (value, positive) evaluated in the
    present TR.  Raises DeseqError when no sequential pattern matches.
    """
    cond = drv.drv_condition()
    if cond is None:
        raise DeseqError("unconditional drive in a two-TR process")
    dnf = build_dnf(cond)
    if dnf == FALSE:
        return []
    specs = []
    for term in terms(dnf):
        # Samples keyed by (id(root), level): a nine-valued signal has a
        # distinct is-0 and is-1 predicate (an X satisfies neither), so
        # the two levels are independent literals.  i1 probes use level
        # None.  Entries: (lit_value, positive, root, probe).
        past = {}
        present = {}
        opaque = []
        for value, positive in sorted(
                literals(term), key=lambda lit: lit[0].serial):
            kind, root, level, probe = _classify_literal(value, b0, b1)
            if kind == "past":
                if (id(root), level) in past:
                    raise DeseqError("signal sampled twice in the past")
                past[id(root), level] = (value, positive, root, probe)
            elif kind == "present":
                if (id(root), level) in present:
                    raise DeseqError("signal sampled twice in the present")
                present[id(root), level] = (value, positive, root, probe)
            else:
                opaque.append((value, positive))
        edges = []
        for key, (p_val, p_pos, root, p_probe) in past.items():
            if key not in present:
                raise DeseqError(
                    "past sample without a matching present sample")
            q_val, q_pos, _, q_probe = present[key]
            level = key[1]
            if level is None:
                if not p_pos and q_pos:
                    edges.append(("rise", q_val, key))
                elif p_pos and not q_pos:
                    edges.append(("fall", q_val, key))
                else:
                    raise DeseqError(
                        "past/present samples with equal polarity")
            else:
                # Nine-valued: ¬was-at-level ∧ now-at-level is exactly
                # the reg edge toward that level (unknown phases fire
                # neither).  The opposite combination would fire on a
                # transition *into* an unknown, which reg cannot express.
                if not p_pos and q_pos:
                    edges.append(("rise" if level else "fall", q_probe,
                                  key))
                else:
                    raise DeseqError(
                        "nine-valued past/present polarity combination "
                        "has no reg equivalent")
        if len(edges) > 1:
            raise DeseqError("more than one edge in a single trigger term")
        rest = list(opaque)
        # Full literal assignment of this term, used to specialize the
        # stored value per trigger (partial evaluation).
        assignment = {}
        for value, positive in literals(term):
            assignment[id(value)] = 1 if positive else 0
        ordered = sorted(present.items(),
                         key=lambda kv: (kv[1][2].serial, kv[0][1] or 0))
        if edges:
            mode, trigger_value, edge_key = edges[0]
            for key, (q_val, q_pos, _, _probe) in ordered:
                if key != edge_key:
                    rest.append((q_val, q_pos))
            specs.append((mode, trigger_value, tuple(rest), assignment))
        else:
            # Level trigger: pick the first present sample that a reg
            # level mode can express.  A positive nine-valued sample at
            # level L is a high/low trigger on the probe; a *negative*
            # one ("not at level L", true for unknowns too) has no reg
            # mode and stays a condition literal.
            chosen = None
            for key, (q_val, q_pos, _, q_probe) in ordered:
                if key[1] is None:
                    chosen = ("high" if q_pos else "low", q_val, key)
                elif q_pos:
                    chosen = ("high" if key[1] else "low", q_probe, key)
                if chosen is not None:
                    break
            if chosen is None:
                raise DeseqError("term has no samples to trigger on")
            mode, trigger_value, chosen_key = chosen
            for key, (q_val, q_pos, _, _probe) in ordered:
                if key != chosen_key:
                    rest.append((q_val, q_pos))
            specs.append((mode, trigger_value, tuple(rest), assignment))
    return _merge_either_edges(specs)


def _merge_either_edges(specs):
    """(rise T ∧ C) ∨ (fall T ∧ C) -> both-edges trigger."""
    merged = []
    used = [False] * len(specs)
    for i, (mode, trig, rest, assign) in enumerate(specs):
        if used[i]:
            continue
        if mode in ("rise", "fall") and not trig.type.is_logic:
            # Nine-valued rise/fall stay separate triggers: the "both"
            # reg mode fires on *any* value change (X → Z included),
            # whereas the behavioural rise ∨ fall only fires on edges
            # between defined levels.
            partner = "fall" if mode == "rise" else "rise"
            for j in range(i + 1, len(specs)):
                m2, t2, r2, a2 = specs[j]
                if not used[j] and m2 == partner and t2 is trig \
                        and r2 == rest:
                    # Drop the (conflicting) edge samples from the merged
                    # assignment; shared literals keep their values.
                    common = {k: v for k, v in assign.items()
                              if a2.get(k) == v}
                    merged.append(("both", trig, rest, common))
                    used[i] = used[j] = True
                    break
            if used[i]:
                continue
        merged.append((mode, trig, rest, assign))
        used[i] = True
    return merged


def _merge_probes(proc):
    """Unify multiple probes of one signal inside one block.

    Within a temporal region all probes of a signal observe the same
    instant, so they are interchangeable; unifying them is what lets the
    DNF literals of one signal line up (e.g. the reset sampled both by the
    edge detector and by the body's ``if``).

    Merging probes exposes pure duplicates downstream — in four-state
    mode every boolean test of a signal is a distinct ``neq(prb, '0')``
    instruction, and those only become CSE-able once their probe operands
    are unified.  CSE's single-scope scan does both in one pass (its
    probe merging shares exactly this rationale: within one instant all
    probes of a signal observe the same value), which is what lets the
    nine-valued DNF literals of one signal line up too.
    """
    from .cse import _run_linear

    for block in proc.blocks:
        _run_linear(block)


def desequentialize(module, proc, am=None, reasons=None):
    """Rewrite one matching process into an entity with reg storage.

    Returns the new entity, or None if the process does not match.
    ``reasons`` optionally collects the precise :class:`DeseqError`
    message per rejected process name (consumed by the lowering pipeline
    so a non-strict run reports *why* deseq refused, e.g. "more than one
    edge in a single trigger term", instead of a generic shape message).
    """
    if not matches_shape(proc, am):
        return None
    _merge_probes(proc)
    b0 = next(b for b in proc.blocks if b.terminator.opcode == "wait")
    b1 = next(b for b in proc.blocks if b is not b0)
    drives = [i for b in proc.blocks for i in b.instructions
              if i.opcode == "drv"]
    if not drives or any(d.parent is not b1 for d in drives):
        return None
    try:
        analyzed = [(d, _analyze_drive(d, b0, b1)) for d in drives]
    except DeseqError as error:
        if reasons is not None:
            reasons[proc.name] = str(error)
        return None

    entity = Entity(
        proc.name,
        [a.type for a in proc.inputs], [a.name for a in proc.inputs],
        [a.type for a in proc.outputs], [a.name for a in proc.outputs])
    value_map = {}
    for old, new in zip(proc.args, entity.args):
        value_map[id(old)] = new
    builder = Builder.at_end(entity.body)

    def clone(value, subst=None):
        """Clone a value's DFG into the entity, specializing under a
        substitution of sample values (partial evaluation).

        Past samples (probes in the wait TR) must fold away under the
        substitution; if one survives, the data would depend on a previous
        instant, which an entity cannot express — reject.
        """
        return _specialize(value, subst or {}, builder, value_map, b0)

    try:
        for drv, specs in analyzed:
            signal = clone(drv.drv_signal())
            delay = clone(drv.drv_delay())
            triggers = []
            for mode, trigger_value, rest, assignment in specs:
                # Specialize the stored value under the term's literal
                # assignment: under the "reset falls" trigger,
                # `mux([0, d], posedge & ...)` folds to the constant 0.
                value = clone(drv.drv_value(), assignment)
                trigger = clone(trigger_value)
                cond = None
                for lit_value, positive in rest:
                    lit = clone(lit_value)
                    if not positive:
                        lit = builder.not_(lit)
                    cond = lit if cond is None else builder.and_(cond, lit)
                triggers.append((mode, value, trigger, cond, delay))
            if triggers:
                builder.reg(signal, triggers)
    except (DeseqError, KeyError, ValueError) as error:
        if reasons is not None and isinstance(error, DeseqError):
            reasons[proc.name] = str(error)
        return None

    module.remove(proc.name)
    module.add(entity)
    if am is not None:
        am.forget(proc)
    return entity


def _specialize(value, subst, builder, value_map, b0, memo=None):
    """Clone ``value``'s DFG into the entity under a literal substitution.

    Returns an entity value.  Sample literals present in ``subst`` become
    constants and constant subexpressions fold (via the simulator's own
    evaluator), which is how per-trigger value specialization eliminates
    the edge-detection logic from the stored value.
    """
    if memo is None:
        memo = {}
    result = _spec_rec(value, subst, builder, value_map, b0, memo)
    if result[0] == "c":
        return _materialize(result[1], value.type, builder)
    return result[1]


def _spec_rec(value, subst, builder, value_map, b0, memo):
    key = id(value)
    if key in subst:
        return ("c", subst[key])
    if key in memo:
        return memo[key]
    mapped = value_map.get(key)
    if mapped is not None:
        return ("v", mapped)
    if not isinstance(value, Instruction):
        raise DeseqError(f"value %{value.name or '?'} is not mapped")
    if value.opcode == "const":
        result = ("c", value.attrs["value"])
        memo[key] = result
        return result
    if value.opcode == "prb":
        if value.parent is b0:
            raise DeseqError("past sample used as data")
        target = _spec_rec(value.operands[0], subst, builder, value_map,
                           b0, memo)
        inst = builder.prb(target[1], name=value.name)
        memo[key] = ("v", inst)
        return memo[key]
    if not value.is_pure and value.opcode not in ("extf", "exts"):
        raise DeseqError(f"'{value.opcode}' cannot move into an entity")
    operands = []
    for op in value.operands:
        try:
            operands.append(_spec_rec(op, subst, builder, value_map, b0,
                                      memo))
        except DeseqError as error:
            # The operand depends on a past sample; it may still be
            # irrelevant if an algebraic short-circuit absorbs it.
            operands.append(("p", error))
    shortcut = _short_circuit(value, operands, subst, builder, value_map,
                              b0, memo)
    if shortcut is not None:
        memo[key] = shortcut
        return shortcut
    for result in operands:
        if result[0] == "p":
            raise result[1]
    if all(o[0] == "c" for o in operands) and value.is_pure:
        from ..sim.eval import evaluate
        from ..sim.values import SimulationError

        try:
            folded = evaluate(value, [o[1] for o in operands])
            memo[key] = ("c", folded)
            return memo[key]
        except SimulationError:
            pass
    materialized = [
        o[1] if o[0] == "v"
        else _materialize(o[1], orig.type, builder)
        for o, orig in zip(operands, value.operands)]
    remap = {id(op): mat
             for op, mat in zip(value.operands, materialized)}
    inst = clone_instruction(value, remap)
    builder.insert(inst)
    memo[key] = ("v", inst)
    return memo[key]


def _short_circuit(value, operands, subst, builder, value_map, b0, memo):
    """Absorbing-element folds that can discard a poisoned operand."""
    from ..ir.types import bit_width

    op = value.opcode
    if op in ("and", "mul") and value.type.is_int:
        for result in operands:
            if result[0] == "c" and result[1] == 0:
                return ("c", 0)
    if op == "and" and value.type.is_int:
        ones = (1 << value.type.width) - 1
        for i, result in enumerate(operands):
            if result[0] == "c" and result[1] == ones \
                    and operands[1 - i][0] != "p":
                return operands[1 - i]
    if op == "or" and value.type.is_int:
        ones = (1 << value.type.width) - 1
        for result in operands:
            if result[0] == "c" and result[1] == ones:
                return ("c", ones)
        for i, result in enumerate(operands):
            if result[0] == "c" and result[1] == 0 \
                    and operands[1 - i][0] != "p":
                return operands[1 - i]
    if op == "mux" and operands[1][0] == "c":
        selector = operands[1][1]
        array_inst = value.operands[0]
        if isinstance(array_inst, Instruction) \
                and array_inst.opcode == "array" \
                and not array_inst.attrs.get("splat"):
            elements = array_inst.operands
            chosen = elements[min(selector, len(elements) - 1)]
            return _spec_rec(chosen, subst, builder, value_map, b0, memo)
        if operands[0][0] == "c":
            choices = operands[0][1]
            return ("c", choices[min(selector, len(choices) - 1)])
    return None


def _materialize(const_value, ty, builder):
    from .clone import materialize_constant

    try:
        return materialize_constant(const_value, ty, builder.insert)
    except ValueError as error:
        raise DeseqError(str(error)) from None


def run(module, am=None, reasons=None):
    """Desequentialize every matching process; returns how many."""
    count = 0
    for proc in list(module.processes()):
        if desequentialize(module, proc, am, reasons) is not None:
            count += 1
    return count


@register_pass
class DesequentializationPass(ModulePass):
    """Rewrite two-TR sequential processes into reg entities (§4.6).

    Matching processes are replaced wholesale (and forgotten from the
    analysis cache); ``_merge_probes`` may erase duplicate probes in a
    non-matching process, which leaves its CFG — and all cached analyses —
    intact.
    """

    name = "deseq"
    preserves = PRESERVE_ALL

    def run_on_module(self, module, am):
        count = run(module, am)
        if count:
            self.stat("desequentialized", count)
        return bool(count)
