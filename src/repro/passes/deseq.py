"""Desequentialization (Deseq) — section 4.6.

Identifies processes describing sequential circuits (flip-flops, latches)
and rewrites them into entities with explicit ``reg`` storage:

1. Consider processes with exactly two basic blocks and temporal regions
   (the canonical form TCM/TCFE produce; "covers all relevant practical
   HDL inputs").
2. Canonicalize each drive condition into DNF; each disjunctive term
   identifies a separate trigger.
3. Classify each probed sample as *past* (TR of the ``wait``) or *present*
   (TR of the ``drv``); pattern-match ``¬T0 ∧ T1`` as a rising edge,
   ``T0 ∧ ¬T1`` as falling, the disjunction of both as either-edge; all
   remaining terms become high/low level triggers or trigger conditions.
4. Emit a ``reg`` in a new entity, cloning the full DFG of the driven
   value, delay, and conditions.

Processes whose drives all map to registers are replaced by the entity;
anything else is left untouched (the lowering pipeline then rejects it).
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.instructions import Instruction
from ..ir.units import Entity
from .clone import clone_instruction
from .dnf import FALSE, build_dnf, literals, terms
from .manager import PRESERVE_ALL, ModulePass, register_pass


class DeseqError(Exception):
    """Raised internally when a process does not match a sequential form."""


def matches_shape(proc, am=None):
    """Two blocks, two TRs: one wait block, one drive block."""
    from ..analysis.temporal import TemporalRegions

    if not proc.is_process or len(proc.blocks) != 2:
        return False
    regions = am.get("temporal", proc) if am is not None \
        else TemporalRegions(proc)
    if regions.count != 2:
        return False
    waits = [b for b in proc.blocks
             if b.terminator is not None and b.terminator.opcode == "wait"]
    if len(waits) != 1:
        return False
    b0 = waits[0]
    b1 = next(b for b in proc.blocks if b is not b0)
    term = b1.terminator
    if term is None or term.opcode != "br" or term.is_conditional_branch:
        return False
    return term.operands[0] is b0 and b0.terminator.wait_dest() is b1


def _root_signal(value):
    while isinstance(value, Instruction) and value.opcode in ("extf", "exts"):
        value = value.operands[0]
    return value if value.type.is_signal else None


def _classify_literal(value, b0, b1):
    """-> ("past"|"present", root_signal) for probes, ("opaque", None)."""
    if isinstance(value, Instruction) and value.opcode == "prb":
        root = _root_signal(value.operands[0])
        if value.parent is b0:
            return "past", root
        if value.parent is b1:
            return "present", root
    return "opaque", None


def _analyze_drive(drv, b0, b1):
    """Map one drive's condition DNF into trigger specs.

    Returns a list of ``(mode, present_sample_value, rest_literals)``
    where rest_literals is a tuple of (value, positive) evaluated in the
    present TR.  Raises DeseqError when no sequential pattern matches.
    """
    cond = drv.drv_condition()
    if cond is None:
        raise DeseqError("unconditional drive in a two-TR process")
    dnf = build_dnf(cond)
    if dnf == FALSE:
        return []
    specs = []
    for term in terms(dnf):
        past = {}     # id(root) -> (lit_value, positive, root)
        present = {}  # id(root) -> (lit_value, positive, root)
        opaque = []
        for value, positive in sorted(
                literals(term), key=lambda lit: id(lit[0])):
            kind, root = _classify_literal(value, b0, b1)
            if kind == "past":
                if id(root) in past:
                    raise DeseqError("signal sampled twice in the past")
                past[id(root)] = (value, positive, root)
            elif kind == "present":
                if id(root) in present:
                    raise DeseqError("signal sampled twice in the present")
                present[id(root)] = (value, positive, root)
            else:
                opaque.append((value, positive))
        edges = []
        for key, (p_val, p_pos, root) in past.items():
            if key not in present:
                raise DeseqError(
                    "past sample without a matching present sample")
            q_val, q_pos, _ = present[key]
            if not p_pos and q_pos:
                edges.append(("rise", q_val, key))
            elif p_pos and not q_pos:
                edges.append(("fall", q_val, key))
            else:
                raise DeseqError("past/present samples with equal polarity")
        if len(edges) > 1:
            raise DeseqError("more than one edge in a single trigger term")
        rest = list(opaque)
        # Full literal assignment of this term, used to specialize the
        # stored value per trigger (partial evaluation).
        assignment = {}
        for value, positive in literals(term):
            assignment[id(value)] = 1 if positive else 0
        if edges:
            mode, trigger_value, edge_key = edges[0]
            for key, (q_val, q_pos, _) in present.items():
                if key != edge_key:
                    rest.append((q_val, q_pos))
            specs.append((mode, trigger_value, tuple(rest), assignment))
        else:
            # Level trigger: pick the first present sample as the level.
            if not present:
                raise DeseqError("term has no samples to trigger on")
            items = sorted(present.items(), key=lambda kv: kv[0])
            (_, (q_val, q_pos, _)), *others = items
            for _, (v, p, _) in others:
                rest.append((v, p))
            specs.append(("high" if q_pos else "low", q_val, tuple(rest),
                          assignment))
    return _merge_either_edges(specs)


def _merge_either_edges(specs):
    """(rise T ∧ C) ∨ (fall T ∧ C) -> both-edges trigger."""
    merged = []
    used = [False] * len(specs)
    for i, (mode, trig, rest, assign) in enumerate(specs):
        if used[i]:
            continue
        if mode in ("rise", "fall"):
            partner = "fall" if mode == "rise" else "rise"
            for j in range(i + 1, len(specs)):
                m2, t2, r2, a2 = specs[j]
                if not used[j] and m2 == partner and t2 is trig \
                        and r2 == rest:
                    # Drop the (conflicting) edge samples from the merged
                    # assignment; shared literals keep their values.
                    common = {k: v for k, v in assign.items()
                              if a2.get(k) == v}
                    merged.append(("both", trig, rest, common))
                    used[i] = used[j] = True
                    break
            if used[i]:
                continue
        merged.append((mode, trig, rest, assign))
        used[i] = True
    return merged


def _merge_probes(proc):
    """Unify multiple probes of one signal inside one block.

    Within a temporal region all probes of a signal observe the same
    instant, so they are interchangeable; unifying them is what lets the
    DNF literals of one signal line up (e.g. the reset sampled both by the
    edge detector and by the body's ``if``).
    """
    for block in proc.blocks:
        first = {}
        for inst in list(block.instructions):
            if inst.opcode != "prb":
                continue
            key = id(inst.operands[0])
            earlier = first.get(key)
            if earlier is None:
                first[key] = inst
            else:
                inst.replace_all_uses_with(earlier)
                inst.erase()


def desequentialize(module, proc, am=None):
    """Rewrite one matching process into an entity with reg storage.

    Returns the new entity, or None if the process does not match.
    """
    if not matches_shape(proc, am):
        return None
    _merge_probes(proc)
    b0 = next(b for b in proc.blocks if b.terminator.opcode == "wait")
    b1 = next(b for b in proc.blocks if b is not b0)
    drives = [i for b in proc.blocks for i in b.instructions
              if i.opcode == "drv"]
    if not drives or any(d.parent is not b1 for d in drives):
        return None
    try:
        analyzed = [(d, _analyze_drive(d, b0, b1)) for d in drives]
    except DeseqError:
        return None

    entity = Entity(
        proc.name,
        [a.type for a in proc.inputs], [a.name for a in proc.inputs],
        [a.type for a in proc.outputs], [a.name for a in proc.outputs])
    value_map = {}
    for old, new in zip(proc.args, entity.args):
        value_map[id(old)] = new
    builder = Builder.at_end(entity.body)

    def clone(value, subst=None):
        """Clone a value's DFG into the entity, specializing under a
        substitution of sample values (partial evaluation).

        Past samples (probes in the wait TR) must fold away under the
        substitution; if one survives, the data would depend on a previous
        instant, which an entity cannot express — reject.
        """
        return _specialize(value, subst or {}, builder, value_map, b0)

    try:
        for drv, specs in analyzed:
            signal = clone(drv.drv_signal())
            delay = clone(drv.drv_delay())
            triggers = []
            for mode, trigger_value, rest, assignment in specs:
                # Specialize the stored value under the term's literal
                # assignment: under the "reset falls" trigger,
                # `mux([0, d], posedge & ...)` folds to the constant 0.
                value = clone(drv.drv_value(), assignment)
                trigger = clone(trigger_value)
                cond = None
                for lit_value, positive in rest:
                    lit = clone(lit_value)
                    if not positive:
                        lit = builder.not_(lit)
                    cond = lit if cond is None else builder.and_(cond, lit)
                triggers.append((mode, value, trigger, cond, delay))
            if triggers:
                builder.reg(signal, triggers)
    except (DeseqError, KeyError, ValueError):
        return None

    module.remove(proc.name)
    module.add(entity)
    if am is not None:
        am.forget(proc)
    return entity


def _specialize(value, subst, builder, value_map, b0, memo=None):
    """Clone ``value``'s DFG into the entity under a literal substitution.

    Returns an entity value.  Sample literals present in ``subst`` become
    constants and constant subexpressions fold (via the simulator's own
    evaluator), which is how per-trigger value specialization eliminates
    the edge-detection logic from the stored value.
    """
    if memo is None:
        memo = {}
    result = _spec_rec(value, subst, builder, value_map, b0, memo)
    if result[0] == "c":
        return _materialize(result[1], value.type, builder)
    return result[1]


def _spec_rec(value, subst, builder, value_map, b0, memo):
    key = id(value)
    if key in subst:
        return ("c", subst[key])
    if key in memo:
        return memo[key]
    mapped = value_map.get(key)
    if mapped is not None:
        return ("v", mapped)
    if not isinstance(value, Instruction):
        raise DeseqError(f"value %{value.name or '?'} is not mapped")
    if value.opcode == "const":
        result = ("c", value.attrs["value"])
        memo[key] = result
        return result
    if value.opcode == "prb":
        if value.parent is b0:
            raise DeseqError("past sample used as data")
        target = _spec_rec(value.operands[0], subst, builder, value_map,
                           b0, memo)
        inst = builder.prb(target[1], name=value.name)
        memo[key] = ("v", inst)
        return memo[key]
    if not value.is_pure and value.opcode not in ("extf", "exts"):
        raise DeseqError(f"'{value.opcode}' cannot move into an entity")
    operands = []
    for op in value.operands:
        try:
            operands.append(_spec_rec(op, subst, builder, value_map, b0,
                                      memo))
        except DeseqError as error:
            # The operand depends on a past sample; it may still be
            # irrelevant if an algebraic short-circuit absorbs it.
            operands.append(("p", error))
    shortcut = _short_circuit(value, operands, subst, builder, value_map,
                              b0, memo)
    if shortcut is not None:
        memo[key] = shortcut
        return shortcut
    for result in operands:
        if result[0] == "p":
            raise result[1]
    if all(o[0] == "c" for o in operands) and value.is_pure:
        from ..sim.eval import evaluate
        from ..sim.values import SimulationError

        try:
            folded = evaluate(value, [o[1] for o in operands])
            memo[key] = ("c", folded)
            return memo[key]
        except SimulationError:
            pass
    materialized = [
        o[1] if o[0] == "v"
        else _materialize(o[1], orig.type, builder)
        for o, orig in zip(operands, value.operands)]
    remap = {id(op): mat
             for op, mat in zip(value.operands, materialized)}
    inst = clone_instruction(value, remap)
    builder.insert(inst)
    memo[key] = ("v", inst)
    return memo[key]


def _short_circuit(value, operands, subst, builder, value_map, b0, memo):
    """Absorbing-element folds that can discard a poisoned operand."""
    from ..ir.types import bit_width

    op = value.opcode
    if op in ("and", "mul") and value.type.is_int:
        for result in operands:
            if result[0] == "c" and result[1] == 0:
                return ("c", 0)
    if op == "and" and value.type.is_int:
        ones = (1 << value.type.width) - 1
        for i, result in enumerate(operands):
            if result[0] == "c" and result[1] == ones \
                    and operands[1 - i][0] != "p":
                return operands[1 - i]
    if op == "or" and value.type.is_int:
        ones = (1 << value.type.width) - 1
        for result in operands:
            if result[0] == "c" and result[1] == ones:
                return ("c", ones)
        for i, result in enumerate(operands):
            if result[0] == "c" and result[1] == 0 \
                    and operands[1 - i][0] != "p":
                return operands[1 - i]
    if op == "mux" and operands[1][0] == "c":
        selector = operands[1][1]
        array_inst = value.operands[0]
        if isinstance(array_inst, Instruction) \
                and array_inst.opcode == "array" \
                and not array_inst.attrs.get("splat"):
            elements = array_inst.operands
            chosen = elements[min(selector, len(elements) - 1)]
            return _spec_rec(chosen, subst, builder, value_map, b0, memo)
        if operands[0][0] == "c":
            choices = operands[0][1]
            return ("c", choices[min(selector, len(choices) - 1)])
    return None


def _materialize(const_value, ty, builder):
    from ..ir.ninevalued import LogicVec
    from ..ir.values import TimeValue

    if isinstance(const_value, TimeValue):
        return builder.const_time(const_value)
    if isinstance(const_value, LogicVec):
        return builder.const_logic(const_value)
    if isinstance(const_value, tuple):
        raise DeseqError("aggregate constants cannot be materialized")
    return builder.const_int(ty, const_value)


def run(module, am=None):
    """Desequentialize every matching process; returns how many."""
    count = 0
    for proc in list(module.processes()):
        if desequentialize(module, proc, am) is not None:
            count += 1
    return count


@register_pass
class DesequentializationPass(ModulePass):
    """Rewrite two-TR sequential processes into reg entities (§4.6).

    Matching processes are replaced wholesale (and forgotten from the
    analysis cache); ``_merge_probes`` may erase duplicate probes in a
    non-matching process, which leaves its CFG — and all cached analyses —
    intact.
    """

    name = "deseq"
    preserves = PRESERVE_ALL

    def run_on_module(self, module, am):
        count = run(module, am)
        if count:
            self.stat("desequentialized", count)
        return bool(count)
