"""Constant Folding (CF) — section 4.1.

Pure instructions whose operands are all constants are evaluated at
compile time using the *simulator's own* evaluation function, so compiled
constants agree with runtime semantics by construction.  Conditional
branches on constants become unconditional, and unreachable blocks are
pruned.
"""

from __future__ import annotations

from ..analysis.cfg import prune_phi_incoming, remove_unreachable_blocks
from ..analysis.manager import AnalysisManager
from ..ir.instructions import Instruction
from ..sim.eval import evaluate
from ..sim.values import SimulationError
from .manager import PRESERVE_ALL, UnitPass, register_pass

_FOLDABLE = frozenset({
    "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem", "srem",
    "and", "or", "xor", "not", "neg", "shl", "shr",
    "eq", "neq", "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge",
    "zext", "sext", "trunc", "exts", "mux", "extf",
})


def _const_value(value):
    if isinstance(value, Instruction) and value.opcode == "const":
        return value.attrs["value"]
    return None


def _is_const(value):
    return isinstance(value, Instruction) and value.opcode == "const"


def fold_constants(unit):
    """Fold constant computations in one unit; returns #instructions folded."""
    folded = 0
    for block in list(unit.blocks):
        for inst in list(block.instructions):
            if inst.opcode not in _FOLDABLE:
                continue
            if not inst.type.is_int and not inst.type.is_enum \
                    and not inst.type.is_logic:
                continue
            if not all(_is_const(op) for op in inst.operands):
                continue
            # mux/extf need aggregate operands; only the all-scalar forms
            # reach here, which excludes them naturally.
            try:
                result = evaluate(
                    inst, [op.attrs["value"] for op in inst.operands])
            except SimulationError:
                continue  # e.g. division by zero: leave for runtime
            const = Instruction("const", inst.type, (),
                                {"value": result}, inst.name)
            block.insert(block.index_of(inst), const)
            inst.replace_all_uses_with(const)
            inst.erase()
            folded += 1
    return folded


def fold_branches(unit):
    """Rewrite conditional branches on constants; prune dead blocks."""
    if unit.is_entity:
        return 0
    changed = 0
    for block in list(unit.blocks):
        term = block.terminator
        if term is None or term.opcode != "br" \
                or not term.is_conditional_branch:
            continue
        cond = _const_value(term.branch_condition())
        if cond is None:
            continue
        from ..ir.ninevalued import LogicVec

        if isinstance(cond, LogicVec):
            if not cond.is_two_valued:
                continue  # an unknown branch condition stays a runtime issue
            cond = cond.to_int()
        dest_false, dest_true = term.operands[1], term.operands[2]
        taken = dest_true if cond else dest_false
        not_taken = dest_false if cond else dest_true
        term.erase()
        from ..ir.builder import Builder

        Builder.at_end(block).br(taken)
        if not_taken is not taken:
            # This block no longer feeds not_taken: fix its phis.
            still_pred = any(p is block for p in not_taken.predecessors())
            if not still_pred:
                for phi in not_taken.phis():
                    pairs = [(v, b) for v, b in phi.phi_pairs()
                             if b is not block]
                    from ..analysis.cfg import rebuild_phi

                    rebuild_phi(phi, pairs)
        changed += 1
    if changed:
        remove_unreachable_blocks(unit)
    return changed


def run(unit, am=None):
    """Run CF to a fixpoint on one unit; returns True if anything changed."""
    return ConstantFoldingPass().run_on_unit(
        unit, am if am is not None else AnalysisManager())


@register_pass
class ConstantFoldingPass(UnitPass):
    """Fold constants and constant branches to a fixpoint (§4.1)."""

    name = "cf"
    # Folding an instruction keeps the CFG intact; folding a *branch* does
    # not, so branch folds invalidate precisely below.
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        changed = False
        while True:
            folded = fold_constants(unit)
            branches = fold_branches(unit)
            if folded:
                self.stat("folded", folded)
            if branches:
                self.stat("branches", branches)
                am.invalidate(unit)
            if not folded and not branches:
                return changed
            changed = True
