"""Common Subexpression Elimination (CSE) — section 4.1.

Dominator-scoped value numbering: a pure instruction is replaced by an
earlier identical instruction if that instruction's block dominates it.
``prb``/``ld`` are stateful (two probes may observe different values) and
are never merged.
"""

from __future__ import annotations

from ..analysis.manager import AnalysisManager
from ..ir.ninevalued import LogicVec
from ..ir.values import TimeValue
from .manager import PRESERVE_ALL, UnitPass, register_pass


def _key(inst):
    """Hashable identity of a pure instruction, or None if not CSE-able."""
    if not inst.is_pure:
        return None
    attr_items = []
    for name, value in sorted(inst.attrs.items()):
        if isinstance(value, (int, str, bool, type(None), TimeValue,
                              LogicVec)):
            attr_items.append((name, value))
        else:
            return None
    return (inst.opcode, inst.type,
            tuple(id(op) for op in inst.operands), tuple(attr_items))


def run(unit, am=None):
    """Run CSE on one unit; returns True if anything was merged."""
    return CSEPass().run_on_unit(
        unit, am if am is not None else AnalysisManager())


@register_pass
class CSEPass(UnitPass):
    """Dominator-scoped value numbering (§4.1).

    Merging erases instructions but never blocks, so the cached dominator
    tree the pass itself consumes stays valid.
    """

    name = "cse"
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        if unit.is_entity:
            merged = _run_linear(unit.body)
            if merged:
                self.stat("merged", merged)
            return bool(merged)
        domtree = am.get("domtree", unit)
        children = {id(b): [] for b in unit.blocks}
        for block in unit.blocks:
            idom = domtree.immediate_dominator(block)
            if idom is not None:
                children[id(idom)].append(block)
        changed = False
        scope = {}

        def visit(block):
            nonlocal changed
            added = []
            for inst in list(block.instructions):
                key = _key(inst)
                if key is None:
                    continue
                existing = scope.get(key)
                if existing is not None:
                    inst.replace_all_uses_with(existing)
                    inst.erase()
                    self.stat("merged")
                    changed = True
                else:
                    scope[key] = inst
                    added.append(key)
            for child in children.get(id(block), []):
                visit(child)
            for key in added:
                del scope[key]

        entry = unit.entry
        if entry is not None:
            visit(entry)
        return changed


def _run_linear(body):
    """CSE over one straight-line scope: an entity body, or a single
    process block (deseq's sample merging).

    Within such a scope execution is atomic — an entity body runs whole
    per activation, a process block sits inside one temporal instant —
    so two probes of the same signal observe the same value and may be
    merged, unlike probes in different blocks of a process.
    """
    merged = 0
    seen = {}
    for inst in list(body.instructions):
        if inst.opcode == "prb":
            key = ("prb", id(inst.operands[0]))
        else:
            key = _key(inst)
        if key is None:
            continue
        existing = seen.get(key)
        if existing is not None:
            inst.replace_all_uses_with(existing)
            inst.erase()
            merged += 1
        else:
            seen[key] = inst
    return merged
