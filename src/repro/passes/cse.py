"""Common Subexpression Elimination (CSE) — section 4.1.

Dominator-scoped value numbering: a pure instruction is replaced by an
earlier identical instruction if that instruction's block dominates it.
``prb``/``ld`` are stateful (two probes may observe different values) and
are never merged.
"""

from __future__ import annotations

from ..analysis.dominators import DominatorTree
from ..ir.ninevalued import LogicVec
from ..ir.values import TimeValue


def _key(inst):
    """Hashable identity of a pure instruction, or None if not CSE-able."""
    if not inst.is_pure:
        return None
    attr_items = []
    for name, value in sorted(inst.attrs.items()):
        if isinstance(value, (int, str, bool, type(None), TimeValue,
                              LogicVec)):
            attr_items.append((name, value))
        else:
            return None
    return (inst.opcode, inst.type,
            tuple(id(op) for op in inst.operands), tuple(attr_items))


def run(unit):
    """Run CSE on one unit; returns True if anything was merged."""
    if unit.is_entity:
        return _run_linear(unit.body)
    domtree = DominatorTree(unit)
    children = {id(b): [] for b in unit.blocks}
    for block in unit.blocks:
        idom = domtree.immediate_dominator(block)
        if idom is not None:
            children[id(idom)].append(block)
    changed = False
    scope = {}

    def visit(block):
        nonlocal changed
        added = []
        for inst in list(block.instructions):
            key = _key(inst)
            if key is None:
                continue
            existing = scope.get(key)
            if existing is not None:
                inst.replace_all_uses_with(existing)
                inst.erase()
                changed = True
            else:
                scope[key] = inst
                added.append(key)
        for child in children[id(block)]:
            visit(child)
        for key in added:
            del scope[key]

    entry = unit.entry
    if entry is not None:
        visit(entry)
    return changed


def _run_linear(body):
    """CSE over an entity body (straight-line data flow).

    Unlike processes, an entity body executes atomically within one
    activation, so two probes of the same signal observe the same value
    and may be merged.
    """
    changed = False
    seen = {}
    for inst in list(body.instructions):
        if inst.opcode == "prb":
            key = ("prb", id(inst.operands[0]))
        else:
            key = _key(inst)
        if key is None:
            continue
        existing = seen.get(key)
        if existing is not None:
            inst.replace_all_uses_with(existing)
            inst.erase()
            changed = True
        else:
            seen[key] = inst
    return changed
