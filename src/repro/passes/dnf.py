"""Disjunctive Normal Form canonicalization of i1 conditions — section 4.6.

The desequentialization pass canonicalizes each drive condition into DNF to
identify flip-flop/latch triggers.  The DNF here operates on SSA values:

* ``and``/``or``/``not``/``xor`` over i1 expand structurally;
* ``eq``/``neq`` on i1 expand to their boolean forms (the paper: "the DNF
  is trivially extended to eq and neq");
* everything else is an opaque *atom* retained as a literal.

The result is a set of conjunctive terms; each term a set of
``(value, polarity)`` literals.  Contradictory terms (x ∧ ¬x) are pruned
and absorbed terms dropped.
"""

from __future__ import annotations

from ..ir.instructions import Instruction

TRUE = frozenset({frozenset()})   # one empty conjunction
FALSE = frozenset()               # no terms


def _atom(value, positive):
    return frozenset({frozenset({(id(value), value, positive)})})


def _and_dnf(a, b):
    terms = set()
    for ta in a:
        for tb in b:
            term = ta | tb
            if _contradictory(term):
                continue
            terms.add(term)
    return frozenset(terms)


def _or_dnf(a, b):
    return frozenset(a | b)


def _contradictory(term):
    seen = {}
    for key, _value, positive in term:
        if key in seen and seen[key] != positive:
            return True
        seen[key] = positive
    return False


def _is_i1(value):
    return value.type.is_int and value.type.width == 1


def build_dnf(value, positive=True, depth=0, max_depth=32):
    """Build the DNF of an i1 SSA value (as a frozenset of literal sets)."""
    if depth > max_depth:
        return _atom(value, positive)
    if isinstance(value, Instruction):
        op = value.opcode
        ops = value.operands
        if op == "const":
            truth = bool(value.attrs["value"]) == positive
            return TRUE if truth else FALSE
        if op == "not":
            return build_dnf(ops[0], not positive, depth + 1, max_depth)
        if op == "and" and _is_i1(value):
            a = build_dnf(ops[0], True, depth + 1, max_depth)
            b = build_dnf(ops[1], True, depth + 1, max_depth)
            result = _and_dnf(a, b)
            return result if positive else negate_dnf(result)
        if op == "or" and _is_i1(value):
            a = build_dnf(ops[0], True, depth + 1, max_depth)
            b = build_dnf(ops[1], True, depth + 1, max_depth)
            result = _or_dnf(a, b)
            return result if positive else negate_dnf(result)
        if op in ("xor", "neq") and _is_i1(ops[0]) and _is_i1(value):
            a1 = build_dnf(ops[0], True, depth + 1, max_depth)
            a0 = build_dnf(ops[0], False, depth + 1, max_depth)
            b1 = build_dnf(ops[1], True, depth + 1, max_depth)
            b0 = build_dnf(ops[1], False, depth + 1, max_depth)
            result = _or_dnf(_and_dnf(a1, b0), _and_dnf(a0, b1))
            return result if positive else negate_dnf(result)
        if op == "eq" and _is_i1(ops[0]) and _is_i1(value):
            a1 = build_dnf(ops[0], True, depth + 1, max_depth)
            a0 = build_dnf(ops[0], False, depth + 1, max_depth)
            b1 = build_dnf(ops[1], True, depth + 1, max_depth)
            b0 = build_dnf(ops[1], False, depth + 1, max_depth)
            result = _or_dnf(_and_dnf(a1, b1), _and_dnf(a0, b0))
            return result if positive else negate_dnf(result)
    return _atom(value, positive)


def negate_dnf(dnf):
    """De Morgan: negate a DNF, returning a DNF."""
    # ¬(T1 ∨ T2 ∨ …) = ¬T1 ∧ ¬T2 ∧ … ; each ¬Ti is a disjunction of
    # negated literals; multiply out.
    result = TRUE
    for term in dnf:
        negated = frozenset(
            frozenset({(key, value, not positive)})
            for key, value, positive in term)
        if not negated:
            return FALSE  # term was TRUE
        result = _and_dnf(result, frozenset(negated))
    return simplify_dnf(result)


def simplify_dnf(dnf):
    """Drop absorbed terms (supersets of another term)."""
    terms = sorted(dnf, key=len)
    kept = []
    for term in terms:
        if any(prev <= term for prev in kept):
            continue
        kept.append(term)
    return frozenset(kept)


def literals(term):
    """Iterate ``(value, positive)`` of one conjunction term."""
    for _key, value, positive in term:
        yield value, positive


def terms(dnf):
    """The conjunction terms of a DNF, deterministically ordered.

    Ordered by the literals' creation serials and polarities, not
    ``id()``: the term order reaches the emitted ``reg`` trigger order,
    and ``id()`` varies between compiles of identical source.  Polarity
    breaks the tie between terms over the same values (x∧¬y vs ¬x∧y),
    which would otherwise fall back to arbitrary set iteration order.
    """
    return sorted(simplify_dnf(dnf),
                  key=lambda t: sorted((v.serial, p) for _k, v, p in t))


def evaluate_dnf(dnf, assignment):
    """Evaluate a DNF under ``{id(value): bool}`` (for property tests)."""
    for term in dnf:
        if all(assignment[key] == positive for key, _v, positive in term):
            return True
    return False
