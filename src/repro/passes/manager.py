"""The pass manager: registered passes, declarative pipelines, analysis
caching, and per-pass instrumentation.

The paper presents the behavioural → structural lowering as a pipeline of
composable passes over the multi-level IR, driven by an ``llhd-opt`` tool.
This module provides that layer:

* :class:`Pass` / :class:`UnitPass` / :class:`ModulePass` — the pass
  interface: a registry ``name``, ``preserves`` declarations telling the
  :class:`~repro.analysis.AnalysisManager` which cached analyses survive
  the pass, and per-pass ``statistics``.
* :class:`PassManager` — parses pipeline specs such as
  ``"inline,unroll,mem2reg,fixpoint(cf,instsimplify,cse,dce),ecm"``,
  runs them over a unit or module, drives ``fixpoint(...)`` groups with
  changed-flags instead of blind whole-pipeline reruns, records wall time
  and changed counts per pass, and optionally verifies the IR between
  passes.
* :data:`PASS_REGISTRY` / :func:`register_pass` — the name → pass-class
  registry every pass module under ``repro.passes`` populates.
* :data:`PIPELINES` — named pipeline aliases (``cleanup``, ``prepare``,
  ``lower``) usable anywhere a pass name is.

``python -m repro.opt`` (see :mod:`repro.opt`) exposes the same specs on
the command line, mirroring the paper's ``llhd-opt``.
"""

from __future__ import annotations

import re
import time

from ..analysis.manager import AnalysisManager
from ..ir.units import Module


class _PreserveAll(frozenset):
    """Sentinel: the pass keeps *every* cached analysis valid — either it
    does not mutate anything analyses describe, or it performs precise
    invalidation itself mid-run.  A distinct singleton (not the registry
    set) so ``register_analysis`` growing the registry can never make the
    identity check drift; it also behaves as the universal set for
    membership-style use."""

    def __contains__(self, name):
        return True

    def __repr__(self):
        return "PRESERVE_ALL"


PRESERVE_ALL = _PreserveAll()

#: name -> Pass subclass.  Populated by ``@register_pass`` when the pass
#: modules are imported (importing :mod:`repro.passes` imports them all).
PASS_REGISTRY = {}

#: name -> pipeline spec string.  Aliases expand recursively inside specs.
PIPELINES = {}


def register_pass(cls):
    """Class decorator adding a pass to :data:`PASS_REGISTRY`."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no pass name")
    PASS_REGISTRY[cls.name] = cls
    return cls


def register_pipeline(name, spec):
    """Register a named pipeline alias."""
    PIPELINES[name] = spec
    return spec


class PassError(Exception):
    """A pass could not run (unknown name, bad target, bad spec)."""


# ---------------------------------------------------------------------------
# Pass interface
# ---------------------------------------------------------------------------


class Pass:
    """Base class of all passes.

    Subclasses set ``name`` (the registry/pipeline-spec name) and
    ``preserves`` (analysis names that remain valid even when the pass
    reports a change; :data:`PRESERVE_ALL` when the pass invalidates
    precisely itself).  ``statistics`` accumulates named counters across
    invocations of one instance.
    """

    name = None
    scope = "unit"
    preserves = frozenset()

    def __init__(self):
        self.statistics = {}
        # Records of nested pipelines (e.g. `lower` running `prepare`),
        # hoisted into the enclosing PassManager's table after the run.
        self.sub_records = []

    def stat(self, key, amount=1):
        """Bump a named statistic counter."""
        self.statistics[key] = self.statistics.get(key, 0) + amount

    def __repr__(self):
        return f"<pass {self.name}>"


class UnitPass(Pass):
    """A pass over one unit.  Applied to a module, it runs on every unit
    whose kind is listed in ``applies_to``."""

    applies_to = ("func", "proc", "entity")

    def run_on_unit(self, unit, am):
        """Transform ``unit``; return True if anything changed.

        ``am`` is the shared :class:`AnalysisManager`; use ``am.get`` for
        cached analyses, and ``am.invalidate`` when the pass mutates the
        CFG mid-run but declares :data:`PRESERVE_ALL`.
        """
        raise NotImplementedError


class ModulePass(Pass):
    """A pass over a whole module (may add and remove units)."""

    scope = "module"

    def run_on_module(self, module, am):
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Pipeline specs
# ---------------------------------------------------------------------------


class PassNode:
    """A single pass in a parsed pipeline."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


class FixpointNode:
    """``fixpoint(a,b,...)`` — iterate the children to a fixpoint.

    Children are driven by changed-flags: a child reruns only when some
    other child has changed the unit since the child last ran clean, not
    on every round.  ``max_rounds`` bounds runaway oscillation.
    """

    def __init__(self, children, max_rounds=1000):
        self.children = children
        self.max_rounds = max_rounds

    def __repr__(self):
        return f"fixpoint({','.join(map(repr, self.children))})"


_TOKEN = re.compile(r"\s*([A-Za-z0-9_.-]+|[(),])")

# Successful parses are memoized globally: specs are parsed against a
# registry that only ever grows (imports register passes once), so a spec
# that parsed cleanly parses identically forever.
_PARSE_CACHE = {}


def _tokenize_spec(spec):
    tokens = []
    pos = 0
    while pos < len(spec):
        match = _TOKEN.match(spec, pos)
        if match is None:
            if spec[pos:].strip():
                raise PassError(
                    f"bad character {spec[pos:].strip()[0]!r} in pipeline "
                    f"spec at offset {pos}")
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


def parse_pipeline(spec, _expanding=()):
    """Parse a pipeline spec string into a list of pipeline nodes.

    Grammar: ``pipeline := item (',' item)*`` where an item is a pass
    name, a named pipeline alias (expanded in place), or
    ``fixpoint(pipeline)``.
    """
    cached = _PARSE_CACHE.get(spec)
    if cached is not None:
        return list(cached)
    tokens = _tokenize_spec(spec)
    position = 0

    def peek():
        return tokens[position] if position < len(tokens) else None

    def take(expected=None):
        nonlocal position
        token = peek()
        if token is None or (expected is not None and token != expected):
            raise PassError(
                f"expected {expected or 'a pass name'} in pipeline spec "
                f"{spec!r}, found {token!r}")
        position += 1
        return token

    def parse_items(stop):
        items = []
        while True:
            token = peek()
            if token is None or token == stop:
                break
            if token == ",":
                take()
                continue
            items.extend(parse_item())
        return items

    def parse_item():
        name = take()
        if name in ("(", ")", ","):
            raise PassError(f"expected a pass name in pipeline spec "
                            f"{spec!r}, found {name!r}")
        if name == "fixpoint":
            take("(")
            children = parse_items(")")
            take(")")
            if not children:
                raise PassError("empty fixpoint() group")
            return [FixpointNode(children)]
        if peek() == "(":
            raise PassError(f"unknown pipeline combinator {name!r}")
        if name in PIPELINES:
            if name in _expanding:
                raise PassError(f"recursive pipeline alias {name!r}")
            return parse_pipeline(PIPELINES[name], _expanding + (name,))
        if name not in PASS_REGISTRY:
            known = ", ".join(sorted(set(PASS_REGISTRY) | set(PIPELINES)))
            raise PassError(f"unknown pass {name!r} (known: {known})")
        return [PassNode(name)]

    nodes = parse_items(stop=None)
    if position != len(tokens):
        raise PassError(f"trailing tokens in pipeline spec {spec!r}")
    _PARSE_CACHE[spec] = list(nodes)
    return nodes


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


class PassRecord:
    """Accumulated instrumentation for one pass name.

    ``statistics`` merges the live counters of the pass instance this
    record tracks (if any) with counters hoisted from nested pipelines —
    computed lazily so the per-run hot path stays free of dict copies.
    """

    __slots__ = ("name", "runs", "changed", "seconds", "instance",
                 "umbrella", "_extra")

    def __init__(self, name):
        self.name = name
        self.runs = 0
        self.changed = 0
        self.seconds = 0.0
        self.instance = None
        # An umbrella pass (e.g. `lower`) runs a nested pipeline whose
        # pass records are hoisted alongside it: its own wall time already
        # contains theirs, so totals must not count it again.
        self.umbrella = False
        self._extra = {}

    @property
    def statistics(self):
        stats = dict(self.instance.statistics) if self.instance else {}
        for key, value in self._extra.items():
            stats[key] = stats.get(key, 0) + value
        return stats

    def merge_stats(self, statistics):
        for key, value in statistics.items():
            self._extra[key] = self._extra.get(key, 0) + value

    def __repr__(self):
        return (f"<{self.name}: {self.runs} runs, {self.changed} changed, "
                f"{self.seconds * 1e3:.2f} ms>")


def format_statistics(records, am=None, out=None):
    """Render pass records (and cache counters) as an aligned table.

    Umbrella records (whose time already contains hoisted sub-passes) are
    marked ``*`` and excluded from the total so it reflects real elapsed
    pass time.
    """
    lines = []
    header = ("pass", "runs", "changed", "time")
    rows = [(r.name + ("*" if r.umbrella else ""), str(r.runs),
             str(r.changed), f"{r.seconds * 1e3:.2f} ms") for r in records]
    extras = ["  ".join(f"{k}={v}"
                        for k, v in sorted(r.statistics.items()))
              for r in records]
    widths = [max(len(header[i]), *(len(row[i]) for row in rows))
              if rows else len(header[i]) for i in range(4)]
    lines.append("  ".join(h.ljust(w) if i == 0 else h.rjust(w)
                           for i, (h, w) in enumerate(zip(header, widths))))
    lines.append("-" * (sum(widths) + 6))
    for row, extra in zip(rows, extras):
        text = "  ".join(c.ljust(w) if i == 0 else c.rjust(w)
                         for i, (c, w) in enumerate(zip(row, widths)))
        if extra:
            text += "  " + extra
        lines.append(text)
    total = sum(r.seconds for r in records if not r.umbrella)
    lines.append(f"total pass time: {total * 1e3:.2f} ms")
    if any(r.umbrella for r in records):
        lines.append("(*) wraps the passes it ran; excluded from the total")
    if am is not None:
        lines.append(
            f"analysis cache: {am.hits} hits, {am.misses} misses, "
            f"{am.invalidations} invalidations")
    text = "\n".join(lines)
    if out is not None:
        out.write(text + "\n")
    return text


# ---------------------------------------------------------------------------
# PassManager
# ---------------------------------------------------------------------------


class PassManager:
    """Runs pipeline specs over units or modules.

    One PassManager owns one :class:`AnalysisManager` and one table of
    :class:`PassRecord` instrumentation; both persist across multiple
    ``run``/``run_spec`` calls, so a driver (the lowering pipeline, the
    CLI) sees aggregate per-pass numbers for everything it ran.
    """

    def __init__(self, spec=None, am=None, verify_each=False):
        self.am = am if am is not None else AnalysisManager()
        self.verify_each = verify_each
        self.nodes = parse_pipeline(spec) if spec else []
        self.records = {}      # name -> PassRecord, insertion-ordered
        self._instances = {}   # name -> Pass instance (stats accumulate)

    # -- running -----------------------------------------------------------

    def run(self, target):
        """Run the constructor's pipeline spec on a module or unit."""
        changed = False
        for node in self.nodes:
            changed |= self._run_node(node, target)
        return changed

    def run_spec(self, spec, target):
        """Parse (memoized globally) and run an arbitrary spec."""
        changed = False
        for node in parse_pipeline(spec):
            changed |= self._run_node(node, target)
        return changed

    def instance(self, name):
        """The pass instance run under ``name``, or None if it never ran.

        Useful for passes that expose richer results than a changed flag
        (e.g. ``lower``'s :class:`LoweringReport`).
        """
        return self._instances.get(name)

    # -- internals ---------------------------------------------------------

    def _instance(self, name):
        instance = self._instances.get(name)
        if instance is None:
            instance = self._instances[name] = PASS_REGISTRY[name]()
        return instance

    def _record(self, name):
        record = self.records.get(name)
        if record is None:
            record = self.records[name] = PassRecord(name)
        return record

    def _run_node(self, node, target):
        if isinstance(node, FixpointNode):
            return self._run_fixpoint(node, target)
        return self._run_pass(self._instance(node.name), target)

    def _run_fixpoint(self, node, target):
        # Changed-flag scheduling: every child starts dirty; running clean
        # clears its flag; a change re-dirties the *other* children.  The
        # member passes are internally fixpointed where self-feeding
        # (CF/IS/DCE loop themselves), so a child need not re-dirty itself.
        dirty = dict.fromkeys(range(len(node.children)), True)
        changed_any = False
        rounds = 0
        while any(dirty.values()):
            rounds += 1
            if rounds > node.max_rounds:
                raise PassError(
                    f"fixpoint group {node!r} did not converge after "
                    f"{node.max_rounds} rounds")
            for index, child in enumerate(node.children):
                if not dirty[index]:
                    continue
                dirty[index] = False
                if self._run_node(child, target):
                    changed_any = True
                    for other in dirty:
                        if other != index:
                            dirty[other] = True
        return changed_any

    def _run_pass(self, instance, target):
        record = self._record(instance.name)
        record.instance = instance
        start = time.perf_counter()
        try:
            if isinstance(target, Module):
                changed = self._run_on_module(instance, target)
            else:
                changed = self._run_on_unit(instance, target)
        finally:
            record.runs += 1
            record.seconds += time.perf_counter() - start
            if instance.sub_records:
                record.umbrella = True
                for sub in instance.sub_records:
                    merged = self._record(sub.name)
                    merged.runs += sub.runs
                    merged.changed += sub.changed
                    merged.seconds += sub.seconds
                    merged.merge_stats(sub.statistics)
                instance.sub_records = []
        if changed:
            record.changed += 1
        if self.verify_each:
            self._verify(target)
        return changed

    def _run_on_module(self, instance, module):
        if instance.scope == "module":
            changed = bool(instance.run_on_module(module, self.am))
            if changed and instance.preserves is not PRESERVE_ALL:
                self.am.invalidate_all()
            return changed
        changed = False
        for unit in list(module):
            if unit.kind in instance.applies_to:
                changed |= self._apply_to_unit(instance, unit)
        return changed

    def _run_on_unit(self, instance, unit):
        if instance.scope == "module":
            raise PassError(
                f"module pass {instance.name!r} cannot run on a single "
                f"unit @{unit.name}")
        if unit.kind not in instance.applies_to:
            return False
        return self._apply_to_unit(instance, unit)

    def _apply_to_unit(self, instance, unit):
        changed = bool(instance.run_on_unit(unit, self.am))
        if changed and instance.preserves is not PRESERVE_ALL:
            self.am.invalidate(unit, preserved=instance.preserves)
        return changed

    def _verify(self, target):
        from ..ir.verifier import verify_module, verify_unit

        if isinstance(target, Module):
            verify_module(target, am=self.am)
        else:
            verify_unit(target, target.module, am=self.am)

    # -- reporting ---------------------------------------------------------

    def statistics_table(self):
        """The per-pass instrumentation rendered as a text table."""
        return format_statistics(list(self.records.values()), self.am)
