"""Dead Code Elimination (DCE) — section 4.1.

Removes instructions whose results are unused and which have no side
effects, plus blocks unreachable from the entry.  ``prb``/``ld``/``var``
are stateful but removable when unused; ``drv``/``st``/``call`` and
terminators are never removed.
"""

from __future__ import annotations

from ..analysis.cfg import remove_unreachable_blocks


def run(unit):
    """Run DCE to a fixpoint; returns True if anything was removed."""
    changed = False
    if not unit.is_entity:
        changed |= bool(remove_unreachable_blocks(unit))
    while True:
        dead = []
        for block in unit.blocks:
            for inst in block.instructions:
                if inst.has_side_effects or inst.is_used:
                    continue
                dead.append(inst)
        if not dead:
            return changed
        changed = True
        for inst in dead:
            inst.erase()
