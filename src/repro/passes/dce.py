"""Dead Code Elimination (DCE) — section 4.1.

Removes instructions whose results are unused and which have no side
effects, plus blocks unreachable from the entry.  ``prb``/``ld``/``var``
are stateful but removable when unused; ``drv``/``st``/``call`` and
terminators are never removed.
"""

from __future__ import annotations

from ..analysis.cfg import remove_unreachable_blocks
from ..analysis.manager import AnalysisManager
from .manager import PRESERVE_ALL, UnitPass, register_pass


def run(unit, am=None):
    """Run DCE to a fixpoint; returns True if anything was removed."""
    return DCEPass().run_on_unit(
        unit, am if am is not None else AnalysisManager())


@register_pass
class DCEPass(UnitPass):
    """Remove unused side-effect-free instructions and unreachable blocks
    (§4.1).  Erasing instructions preserves all analyses; removing a block
    does not, so that case invalidates precisely."""

    name = "dce"
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        changed = False
        if not unit.is_entity:
            removed = remove_unreachable_blocks(unit)
            if removed:
                self.stat("blocks", removed)
                am.invalidate(unit)
                changed = True
        while True:
            dead = []
            for block in unit.blocks:
                for inst in block.instructions:
                    if inst.has_side_effects or inst.is_used:
                        continue
                    dead.append(inst)
            if not dead:
                return changed
            changed = True
            self.stat("instructions", len(dead))
            for inst in dead:
                inst.erase()
