"""Instruction Simplification (IS) — section 4.1.

A peephole pass reducing short instruction sequences to simpler forms,
similar to LLVM's instruction combining: algebraic identities, redundant
selections, double negations, and aggregate forwarding.
"""

from __future__ import annotations

from ..ir.instructions import Instruction
from ..ir.values import Value
from .manager import PRESERVE_ALL, UnitPass, register_pass


def _const_of(value):
    if isinstance(value, Instruction) and value.opcode == "const":
        return value.attrs["value"]
    return None


def _all_ones(ty):
    return (1 << ty.width) - 1


def _simplify(inst):
    """Return a replacement Value for ``inst``, or None."""
    op = inst.opcode
    ops = inst.operands
    if op in ("add", "or", "xor", "sub", "shl", "shr"):
        b = _const_of(ops[1]) if len(ops) > 1 else None
        if b == 0:
            return ops[0]
        if op == "add" and _const_of(ops[0]) == 0:
            return ops[1]
        if op == "or" and _const_of(ops[0]) == 0:
            return ops[1]
        if op == "xor" and _const_of(ops[0]) == 0:
            return ops[1]
    if op == "sub" and ops[0] is ops[1] and inst.type.is_int:
        return ("const", 0)
    if op == "xor" and ops[0] is ops[1] and inst.type.is_int:
        return ("const", 0)
    if op == "mul":
        for i in range(2):
            c = _const_of(ops[i])
            if c == 1:
                return ops[1 - i]
            if c == 0 and inst.type.is_int:
                return ("const", 0)
    if op == "udiv" and _const_of(ops[1]) == 1:
        return ops[0]
    if op == "and" and inst.type.is_int:
        if ops[0] is ops[1]:
            return ops[0]
        for i in range(2):
            c = _const_of(ops[i])
            if c == 0:
                return ("const", 0)
            if c == _all_ones(inst.type):
                return ops[1 - i]
    if op == "or" and inst.type.is_int:
        if ops[0] is ops[1]:
            return ops[0]
        for i in range(2):
            c = _const_of(ops[i])
            if c == _all_ones(inst.type):
                return ("const", c)
    if op == "not" and isinstance(ops[0], Instruction) \
            and ops[0].opcode == "not":
        return ops[0].operands[0]
    if op == "neg" and isinstance(ops[0], Instruction) \
            and ops[0].opcode == "neg":
        return ops[0].operands[0]
    if op == "eq" and ops[0] is ops[1]:
        return ("const", 1)
    if op in ("neq", "ult", "ugt", "slt", "sgt") and ops[0] is ops[1]:
        return ("const", 0)
    if op in ("ule", "uge", "sle", "sge") and ops[0] is ops[1]:
        return ("const", 1)
    if op == "mux":
        arr = ops[0]
        sel = _const_of(ops[1])
        if isinstance(arr, Instruction) and arr.opcode == "array" \
                and not arr.attrs.get("splat"):
            elements = arr.operands
            if sel is not None:
                return elements[min(sel, len(elements) - 1)]
            if all(e is elements[0] for e in elements):
                return elements[0]
        if isinstance(arr, Instruction) and arr.opcode == "array" \
                and arr.attrs.get("splat"):
            return arr.operands[0]
    if op == "extf" and not inst.has_dynamic_index:
        agg = ops[0]
        index = inst.attrs["index"]
        if isinstance(agg, Instruction) and agg.opcode == "array" \
                and not agg.attrs.get("splat") and not agg.type.is_signal:
            return agg.operands[index]
        if isinstance(agg, Instruction) and agg.opcode == "struct":
            return agg.operands[index]
        if isinstance(agg, Instruction) and agg.opcode == "insf" \
                and agg.attrs.get("index") == index:
            return agg.operands[1]
    if op == "phi":
        values = {id(v) for v, _ in inst.phi_pairs()}
        if len(values) == 1:
            return inst.phi_pairs()[0][0]
    if op in ("zext", "sext") and inst.type is ops[0].type:
        return ops[0]
    if op == "trunc" and inst.type is ops[0].type:
        return ops[0]
    return None


def _simplify_drv(inst):
    """Fold constant drive conditions: ``if 1`` drops, ``if 0`` erases.

    Returns True if the instruction changed (it may be gone afterwards).
    """
    if inst.opcode != "drv" or not inst.attrs.get("has_cond"):
        return False
    cond = _const_of(inst.operands[3])
    if not isinstance(cond, (int, bool)):
        return False
    if cond:
        inst.operands[3]._remove_use(inst, 3)
        inst.operands.pop()
        inst.attrs["has_cond"] = False
    else:
        inst.erase()
    return True


def run(unit):
    """Run IS to a fixpoint on one unit; returns True if anything changed."""
    return InstSimplifyPass().run_on_unit(unit, None)


@register_pass
class InstSimplifyPass(UnitPass):
    """Peephole-simplify instructions to a fixpoint (§4.1).

    Only replaces and erases instructions — the CFG (and therefore every
    cached analysis) is untouched.
    """

    name = "instsimplify"
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        changed = False
        again = True
        while again:
            again = False
            for block in unit.blocks:
                for inst in list(block.instructions):
                    if _simplify_drv(inst):
                        self.stat("simplified")
                        changed = again = True
                        continue
                    result = _simplify(inst)
                    if result is None:
                        continue
                    if isinstance(result, tuple):  # ("const", value)
                        const = Instruction(
                            "const", inst.type, (), {"value": result[1]})
                        block.insert(block.index_of(inst), const)
                        result = const
                    inst.replace_all_uses_with(result)
                    inst.erase()
                    self.stat("simplified")
                    changed = again = True
        return changed
