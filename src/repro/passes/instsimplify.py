"""Instruction Simplification (IS) — section 4.1.

A peephole pass reducing short instruction sequences to simpler forms,
similar to LLVM's instruction combining: algebraic identities, redundant
selections, double negations, and aggregate forwarding.

Nine-valued (``lN``) operands get their own, smaller rule set: most
two-valued identities are unsound under IEEE 1164 (``x & x`` is ``X``
for ``x = Z``, ``eq(x, x)`` is *false* when ``x`` carries an unknown,
``~~x`` maps ``Z`` to ``X``), so only the absorbing folds that hold for
every one of the nine states survive: AND with a forcing all-zero
constant, OR with a forcing all-one constant, and constant two-valued
``mux`` selectors.  The reflexive comparisons that IEEE 1164 answers
with 0 on unknowns (``neq``/``ult``/…) remain valid and are kept.
"""

from __future__ import annotations

from ..ir.instructions import Instruction
from ..ir.ninevalued import LogicVec
from ..ir.values import Value
from .manager import PRESERVE_ALL, UnitPass, register_pass


def _const_of(value):
    if isinstance(value, Instruction) and value.opcode == "const":
        return value.attrs["value"]
    return None


def _all_ones(ty):
    return (1 << ty.width) - 1


def _forcing_const(value, bit):
    """True if ``value`` is an lN constant of all forcing-``bit`` states."""
    if not isinstance(value, LogicVec):
        return False
    if bit:
        return value == LogicVec.filled("1", value.width)
    return value == LogicVec.from_int(0, value.width)


def _simplify(inst):
    """Return a replacement Value for ``inst``, or None."""
    op = inst.opcode
    ops = inst.operands
    # x op 0 identities hold for two-valued types only: an lN shift (even
    # by 0) degrades unknown-carrying vectors to all-X, and lN add/or/xor
    # with a zero constant normalize weak/unknown states (the lN constant
    # never compares equal to the int 0 anyway, but the shift *amount* is
    # an i32 constant, so shifts need the explicit operand-type guard).
    if op in ("add", "or", "xor", "sub", "shl", "shr") \
            and not ops[0].type.is_logic:
        b = _const_of(ops[1]) if len(ops) > 1 else None
        if b == 0:
            return ops[0]
        if op == "add" and _const_of(ops[0]) == 0:
            return ops[1]
        if op == "or" and _const_of(ops[0]) == 0:
            return ops[1]
        if op == "xor" and _const_of(ops[0]) == 0:
            return ops[1]
    if op == "sub" and ops[0] is ops[1] and inst.type.is_int:
        return ("const", 0)
    if op == "xor" and ops[0] is ops[1] and inst.type.is_int:
        return ("const", 0)
    if op == "mul":
        for i in range(2):
            c = _const_of(ops[i])
            if c == 1:
                return ops[1 - i]
            if c == 0 and inst.type.is_int:
                return ("const", 0)
    if op == "udiv" and _const_of(ops[1]) == 1:
        return ops[0]
    if op == "and" and inst.type.is_int:
        if ops[0] is ops[1]:
            return ops[0]
        for i in range(2):
            c = _const_of(ops[i])
            if c == 0:
                return ("const", 0)
            if c == _all_ones(inst.type):
                return ops[1 - i]
    if op == "or" and inst.type.is_int:
        if ops[0] is ops[1]:
            return ops[0]
        for i in range(2):
            c = _const_of(ops[i])
            if c == _all_ones(inst.type):
                return ("const", c)
    # Nine-valued absorbing elements: a forcing 0 wins every AND, a
    # forcing 1 wins every OR — the only operand-independent lN
    # identities (0 & U = 0 and 1 | U = 1 in IEEE 1164).
    if op == "and" and inst.type.is_logic:
        for i in range(2):
            if _forcing_const(_const_of(ops[i]), 0):
                return ("const", LogicVec.from_int(0, inst.type.width))
    if op == "or" and inst.type.is_logic:
        for i in range(2):
            if _forcing_const(_const_of(ops[i]), 1):
                return ("const",
                        LogicVec.filled("1", inst.type.width))
    # ~~x / --x cancel for two-valued types only: lN NOT and NEG
    # normalize unknowns (~~Z is X, not Z).
    if op == "not" and inst.type.is_int and isinstance(ops[0], Instruction) \
            and ops[0].opcode == "not":
        return ops[0].operands[0]
    if op == "neg" and inst.type.is_int and isinstance(ops[0], Instruction) \
            and ops[0].opcode == "neg":
        return ops[0].operands[0]
    # Reflexive comparisons: an unknown anywhere makes every lN
    # comparison *false*, so x == x and x <= x may still be 0 — only the
    # comparisons that answer 0 fold for logic operands.
    if op == "eq" and ops[0] is ops[1] and not ops[0].type.is_logic:
        return ("const", 1)
    if op in ("neq", "ult", "ugt", "slt", "sgt") and ops[0] is ops[1]:
        return ("const", 0)
    if op in ("ule", "uge", "sle", "sge") and ops[0] is ops[1] \
            and not ops[0].type.is_logic:
        return ("const", 1)
    if op == "mux":
        arr = ops[0]
        sel = _const_of(ops[1])
        if isinstance(sel, LogicVec):
            sel = sel.to_int() if sel.is_two_valued else None
        # An unknown lN selector is a runtime error, which folding away
        # the mux would erase — same-element folds need a selector type
        # that cannot be unknown (or a known-constant selector).
        sel_safe = sel is not None or not ops[1].type.is_logic
        if isinstance(arr, Instruction) and arr.opcode == "array" \
                and not arr.attrs.get("splat"):
            elements = arr.operands
            if sel is not None:
                return elements[min(sel, len(elements) - 1)]
            if sel_safe and all(e is elements[0] for e in elements):
                return elements[0]
        if isinstance(arr, Instruction) and arr.opcode == "array" \
                and arr.attrs.get("splat") and sel_safe:
            return arr.operands[0]
    if op == "extf" and not inst.has_dynamic_index:
        agg = ops[0]
        index = inst.attrs["index"]
        if isinstance(agg, Instruction) and agg.opcode == "array" \
                and not agg.attrs.get("splat") and not agg.type.is_signal:
            return agg.operands[index]
        if isinstance(agg, Instruction) and agg.opcode == "struct":
            return agg.operands[index]
        if isinstance(agg, Instruction) and agg.opcode == "insf" \
                and agg.attrs.get("index") == index:
            return agg.operands[1]
    if op == "phi":
        values = {id(v) for v, _ in inst.phi_pairs()}
        if len(values) == 1:
            return inst.phi_pairs()[0][0]
    if op in ("zext", "sext") and inst.type is ops[0].type:
        return ops[0]
    if op == "trunc" and inst.type is ops[0].type:
        return ops[0]
    return None


def _simplify_drv(inst):
    """Fold constant drive conditions: ``if 1`` drops, ``if 0`` erases.

    Returns True if the instruction changed (it may be gone afterwards).
    """
    if inst.opcode != "drv" or not inst.attrs.get("has_cond"):
        return False
    cond = _const_of(inst.operands[3])
    if not isinstance(cond, (int, bool)):
        return False
    if cond:
        inst.operands[3]._remove_use(inst, 3)
        inst.operands.pop()
        inst.attrs["has_cond"] = False
    else:
        inst.erase()
    return True


def run(unit):
    """Run IS to a fixpoint on one unit; returns True if anything changed."""
    return InstSimplifyPass().run_on_unit(unit, None)


@register_pass
class InstSimplifyPass(UnitPass):
    """Peephole-simplify instructions to a fixpoint (§4.1).

    Only replaces and erases instructions — the CFG (and therefore every
    cached analysis) is untouched.
    """

    name = "instsimplify"
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        changed = False
        again = True
        while again:
            again = False
            for block in unit.blocks:
                for inst in list(block.instructions):
                    if _simplify_drv(inst):
                        self.stat("simplified")
                        changed = again = True
                        continue
                    result = _simplify(inst)
                    if result is None:
                        continue
                    if isinstance(result, tuple):  # ("const", value)
                        const = Instruction(
                            "const", inst.type, (), {"value": result[1]})
                        block.insert(block.index_of(inst), const)
                        result = const
                    inst.replace_all_uses_with(result)
                    inst.erase()
                    self.stat("simplified")
                    changed = again = True
        return changed
