"""Transformation passes: behavioural → structural lowering (section 4).

Quick use::

    from repro.passes import lower_to_structural
    report = lower_to_structural(module)   # in place; raises on rejection
"""

from . import (
    cf, clone, cse, dce, deseq, dnf, ecm, inline, inline_entities,
    instsimplify, mem2reg, process_lowering, tcfe, tcm, unroll,
)
from .inline import InlineError, inline_calls
from .inline_entities import (
    forward_signals, inline_entities as inline_entity_insts,
    simplify_reg_feedback,
)
from .pipeline import (
    LoweringRejection, LoweringReport, cleanup, lower_to_structural,
)

__all__ = [
    "InlineError", "LoweringRejection", "LoweringReport", "cf", "cleanup",
    "clone", "cse", "dce", "deseq", "dnf", "ecm", "forward_signals",
    "inline", "inline_calls", "inline_entities", "inline_entity_insts",
    "instsimplify", "lower_to_structural", "mem2reg", "process_lowering",
    "simplify_reg_feedback", "tcfe", "tcm", "unroll",
]
