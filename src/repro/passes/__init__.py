"""Transformation passes: behavioural → structural lowering (section 4).

Quick use::

    from repro.passes import lower_to_structural
    report = lower_to_structural(module)   # in place; raises on rejection

or through the pass manager (with analysis caching and per-pass stats)::

    from repro.passes import PassManager
    pm = PassManager("inline,unroll,mem2reg,fixpoint(cf,instsimplify,cse,dce)")
    pm.run(unit)
    print(pm.statistics_table())
"""

from .manager import (
    PASS_REGISTRY, PIPELINES, PRESERVE_ALL, FixpointNode, ModulePass, Pass,
    PassError, PassManager, PassNode, PassRecord, UnitPass,
    format_statistics, parse_pipeline, register_pass, register_pipeline,
)
from . import (
    cf, clone, cse, dce, deseq, dnf, ecm, inline, inline_entities,
    instsimplify, mem2reg, muxinsert, process_lowering, tcfe, tcm, unroll,
)
from .inline import InlineError, inline_calls
from .inline_entities import (
    forward_signals, inline_entities as inline_entity_insts,
    simplify_reg_feedback,
)
from .pipeline import (
    CLEANUP_SPEC, PREPARE_SPEC, LoweringRejection, LoweringReport, cleanup,
    lower_to_structural,
)

__all__ = [
    "CLEANUP_SPEC", "FixpointNode", "InlineError", "LoweringRejection",
    "LoweringReport", "ModulePass", "PASS_REGISTRY", "PIPELINES",
    "PREPARE_SPEC", "PRESERVE_ALL", "Pass", "PassError", "PassManager",
    "PassNode", "PassRecord", "UnitPass", "cf", "cleanup", "clone", "cse",
    "dce", "deseq", "dnf", "ecm", "format_statistics", "forward_signals",
    "inline", "inline_calls", "inline_entities", "inline_entity_insts",
    "instsimplify", "lower_to_structural", "mem2reg", "muxinsert",
    "parse_pipeline", "process_lowering", "register_pass",
    "register_pipeline",
    "simplify_reg_feedback", "tcfe", "tcm", "unroll",
]
