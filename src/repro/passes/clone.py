"""Instruction and region cloning, shared by inlining, unrolling, and
desequentialization (which copies the drive DFG into a new entity)."""

from __future__ import annotations

from ..ir.instructions import Instruction, RegTrigger
from ..ir.values import Block


def clone_instruction(inst, value_map):
    """Clone one instruction, remapping operands through ``value_map``.

    ``value_map`` maps ``id(original_value) -> replacement`` for operands
    and branch-target blocks; unmapped operands are reused as-is (valid for
    values that remain in scope, e.g. when cloning within one unit).
    """
    operands = [value_map.get(id(op), op) for op in inst.operands]
    attrs = dict(inst.attrs)
    if inst.opcode == "reg":
        attrs["triggers"] = [
            RegTrigger(t.mode, t.value, t.trigger, t.cond, t.delay)
            for t in attrs["triggers"]]
    clone = Instruction(inst.opcode, inst.type, operands, attrs, inst.name)
    value_map[id(inst)] = clone
    return clone


def clone_blocks_into(unit, blocks, value_map, name_suffix=""):
    """Clone a list of blocks (with their instructions) into ``unit``.

    Returns the list of new blocks.  ``value_map`` is extended with both
    block and instruction mappings; it should already map external values
    (e.g. arguments) if they are to be substituted.
    """
    new_blocks = []
    for block in blocks:
        new_block = unit.create_block(
            (block.name or "bb") + name_suffix)
        value_map[id(block)] = new_block
        new_blocks.append(new_block)
    for block, new_block in zip(blocks, new_blocks):
        for inst in block.instructions:
            new_block.append(clone_instruction(inst, value_map))
    return new_blocks


def materialize_constant(value, ty, emit):
    """Build a constant instruction (tree) for a runtime ``value``.

    Aggregate values (tuples) become ``array``/``struct`` trees of
    element constants — the same shape ``sig`` initializers use; scalar
    ``iN`` values are masked to their width.  Every created instruction
    is passed through ``emit`` (which must insert or stage it, and
    return it).  Raises ValueError for an aggregate whose type is
    neither array nor struct.  Shared by desequentialization (cloning
    specialized drive values into an entity) and the loop unroller
    (staging per-iteration constants into the preheader).
    """
    from ..sim.values import PackedLogicArray

    if isinstance(value, (tuple, PackedLogicArray)):
        if ty.is_array:
            parts = [materialize_constant(v, ty.element, emit)
                     for v in value]
            return emit(Instruction("array", ty, parts))
        if ty.is_struct:
            parts = [materialize_constant(v, fty, emit)
                     for v, fty in zip(value, ty.fields)]
            return emit(Instruction("struct", ty, parts))
        raise ValueError(f"cannot materialize aggregate constant of {ty}")
    if ty.is_int:
        value &= (1 << ty.width) - 1
    return emit(Instruction("const", ty, (), {"value": value}))


def clone_dfg_into(values, builder, value_map, on_clone=None):
    """Clone the transitive data-flow graph of ``values`` via ``builder``.

    Pure producers (and ``prb``) reached through operands are cloned in
    dependency order.  Pre-seeded entries of ``value_map`` act as the
    cut-off frontier (e.g. process arguments mapped to entity arguments).
    Returns the mapped values in input order.
    """
    def visit(value):
        mapped = value_map.get(id(value))
        if mapped is not None:
            return mapped
        if isinstance(value, Block):
            raise ValueError("clone_dfg_into cannot cross control flow")
        if not isinstance(value, Instruction):
            # Unmapped argument or foreign value: caller must pre-seed it.
            raise KeyError(
                f"value %{value.name or '?'} is not mapped and is not "
                f"cloneable")
        for op in value.operands:
            visit(op)
        clone = clone_instruction(value, value_map)
        builder.insert(clone)
        if on_clone is not None:
            on_clone(value, clone)
        return clone

    return [visit(v) for v in values]
