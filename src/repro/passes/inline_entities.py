"""Entity inlining and signal forwarding — the "Inline / IS" step that
produces the final flattened @acc entity of Figure 5.

``inline_entities`` splices instantiated entity bodies into the parent,
binding port arguments to the connected signals.

``forward_signals`` removes a local signal that has exactly one
unconditional driver by forwarding the driven value to all probes.  This
deliberately discards the drive delay — the synthesis-oriented view the
paper's final Figure 5 form takes (the 2 ns combinational delay of %d
disappears when @acc_comb is folded into the register's data input).  It
is therefore NOT part of the simulation pipeline, only of the synthesis
pipeline.

``simplify_reg_feedback`` rewrites ``reg S, mux([prb S, v], c) rise clk``
into ``reg S, v rise clk if c``: re-storing the current value is a no-op,
so the multiplexer becomes a trigger condition (Figure 5k → the final
``reg i32$ %q, %sum rise %clkp if %enp``).
"""

from __future__ import annotations

from ..ir.instructions import Instruction
from ..ir.units import UnitDecl
from .clone import clone_instruction
from .manager import PassError, UnitPass, register_pass


def inline_entities(module, parent, only=None):
    """Inline entity instantiations inside ``parent``; returns how many.

    ``only`` optionally restricts inlining to the named callees.
    """
    inlined = 0
    progress = True
    while progress:
        progress = False
        for inst in list(parent.body.instructions):
            if inst.opcode != "inst":
                continue
            callee = module.get(inst.callee)
            if callee is None or isinstance(callee, UnitDecl) \
                    or not callee.is_entity or callee is parent:
                continue
            if only is not None and callee.name not in only:
                continue
            _inline_one(parent, inst, callee)
            inlined += 1
            progress = True
    return inlined


def _inline_one(parent, inst, callee):
    value_map = {}
    operands = inst.inst_inputs() + inst.inst_outputs()
    for arg, operand in zip(callee.args, operands):
        value_map[id(arg)] = operand
    position = parent.body.index_of(inst)
    for child_inst in callee.body.instructions:
        clone = clone_instruction(child_inst, value_map)
        parent.body.insert(position, clone)
        position += 1
    inst.erase()


def forward_signals(entity):
    """Forward single-driver local signals to their probes (drops delay).

    Only signals created locally (``sig``), driven by exactly one
    unconditional ``drv``, and used only by ``prb``/``drv``, are forwarded.
    Returns the number of signals removed.
    """
    removed = 0
    for inst in list(entity.body.instructions):
        if inst.opcode != "sig":
            continue
        drives = []
        probes = []
        clean = True
        for use in inst.uses:
            user = use.user
            if user.opcode == "drv" and use.index == 0:
                drives.append(user)
            elif user.opcode == "prb":
                probes.append(user)
            else:
                clean = False
                break
        if not clean or len(drives) != 1:
            continue
        drive = drives[0]
        if drive.drv_condition() is not None or drive.parent is not \
                entity.body:
            continue
        value = drive.drv_value()
        for probe in probes:
            probe.replace_all_uses_with(value)
            probe.erase()
        drive.erase()
        inst.erase()
        removed += 1
        _reorder_topologically(entity)
    return removed


def simplify_reg_feedback(entity):
    """reg S, mux([prb S, v], c) ... -> reg S, v ... if c."""
    changed = 0
    for inst in entity.body.instructions:
        if inst.opcode != "reg":
            continue
        signal = inst.reg_signal()
        for t in inst.attrs["triggers"]:
            value = inst.operands[t.value]
            if not (isinstance(value, Instruction)
                    and value.opcode == "mux"):
                continue
            arr, sel = value.operands
            if not (isinstance(arr, Instruction) and arr.opcode == "array"
                    and not arr.attrs.get("splat")
                    and len(arr.operands) == 2):
                continue
            feedback, new_value = arr.operands
            if not (isinstance(feedback, Instruction)
                    and feedback.opcode == "prb"
                    and feedback.operands[0] is signal):
                continue
            inst.set_operand(t.value, new_value)
            if t.cond is not None:
                existing = inst.operands[t.cond]
                from ..ir.builder import Builder

                builder = Builder.before(inst)
                inst.set_operand(t.cond, builder.and_(existing, sel))
            else:
                t.cond = inst.add_operand(sel)
            changed += 1
    return changed


@register_pass
class InlineEntitiesPass(UnitPass):
    """Splice instantiated entity bodies into the parent entity."""

    name = "inline-entities"
    applies_to = ("entity",)
    preserves = frozenset()

    def run_on_unit(self, unit, am):
        if unit.module is None:
            raise PassError(
                f"inline-entities: @{unit.name} is not part of a module")
        inlined = inline_entities(unit.module, unit)
        if inlined:
            self.stat("inlined", inlined)
        return bool(inlined)


@register_pass
class ForwardSignalsPass(UnitPass):
    """Forward single-driver local signals to their probes (synthesis
    view: drops the drive delay)."""

    name = "forward-signals"
    applies_to = ("entity",)
    preserves = frozenset()

    def run_on_unit(self, unit, am):
        removed = forward_signals(unit)
        if removed:
            self.stat("forwarded", removed)
        return bool(removed)


@register_pass
class SimplifyRegFeedbackPass(UnitPass):
    """Rewrite reg feedback muxes into trigger conditions (Fig. 5k)."""

    name = "reg-feedback"
    applies_to = ("entity",)
    preserves = frozenset()

    def run_on_unit(self, unit, am):
        changed = simplify_reg_feedback(unit)
        if changed:
            self.stat("simplified", changed)
        return bool(changed)


def _reorder_topologically(entity):
    """Restore defs-before-uses order in the entity body after rewiring."""
    body = entity.body
    placed = {id(a) for a in entity.args}
    remaining = list(body.instructions)
    ordered = []
    while remaining:
        progress = False
        for inst in list(remaining):
            if all(id(op) in placed or not isinstance(op, Instruction)
                   or op.parent is not body for op in inst.operands):
                ordered.append(inst)
                placed.add(id(inst))
                remaining.remove(inst)
                progress = True
        if not progress:
            # Cycle through signals (legal in hardware): keep stable order.
            ordered.extend(remaining)
            break
    body.instructions = ordered
