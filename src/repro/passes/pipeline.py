"""The behavioural → structural lowering pipeline (Figure 4, section 4).

``lower_to_structural`` drives the full pass sequence of the paper:

1. basic transformations: inline, unroll, mem2reg, CF/DCE/CSE/IS (§4.1),
2. Early Code Motion (§4.2),
3. Temporal Code Motion (§4.3),
4. Total Control Flow Elimination (§4.4),
5. Process Lowering (§4.5),
6. Desequentialization (§4.6),

and rejects processes that cannot be lowered (``LoweringRejection``), as a
design containing them is not implementable in hardware.

The sequence itself is expressed as :class:`~.manager.PassManager`
pipeline specs (:data:`CLEANUP_SPEC`, :data:`PREPARE_SPEC`), registered
as the named pipelines ``cleanup`` and ``prepare``; one PassManager per
``lower_to_structural`` call shares cached analyses (dominators, temporal
regions) across all passes and collects per-pass wall time and changed
statistics into ``LoweringReport.pass_records``.
"""

from __future__ import annotations

import re

from ..ir.dialects import STRUCTURAL
from ..ir.verifier import verify_module
from . import deseq, process_lowering
from .inline import InlineError
from .manager import (
    ModulePass, PassManager, register_pass, register_pipeline,
)

#: CF / DCE / CSE / IS to a fixpoint — the §4.1 cleanup group.
CLEANUP_SPEC = register_pipeline(
    "cleanup", "fixpoint(cf,instsimplify,cse,dce)")

#: §4.1–§4.4 on one process, mirroring the paper's Figure 4 ordering.
#: TCM/TCFE may expose more hoisting/threading opportunities, hence the
#: trailing ecm,tcfe round.  Unroll runs twice: early for the classic
#: constant fold, and again after TCFE — once the loop-internal
#: conditionals have been if-converted into muxes, the loop-carried data
#: is straight-line and the symbolic executor can unroll scan loops whose
#: bodies read runtime signals (lzc/rr_arbiter/riscv-style cores).
PREPARE_SPEC = register_pipeline(
    "prepare",
    "inline,unroll,mem2reg,cleanup,"
    "ecm,cleanup,tcm,cleanup,tcfe,cleanup,ecm,tcfe,cleanup,"
    "unroll,cleanup,tcfe,cleanup")


class LoweringRejection(Exception):
    """A process cannot be lowered to Structural LLHD."""

    def __init__(self, unit_name, reason):
        self.unit_name = unit_name
        self.reason = reason
        super().__init__(f"@{unit_name}: {reason}")


class LoweringReport:
    """What the pipeline did: per-process outcome and statistics.

    ``rejected`` lists every process left behavioural as ``(name,
    reason)``; :meth:`design_rejections` filters out testbench processes
    (``initial`` blocks, which model physical time by construction), so
    a harness asserting "the design core reaches the structural level"
    can distinguish the two precisely instead of string-matching ad hoc.
    """

    #: The Moore frontend names processes ``<module>_<kind>_<n>``, and
    #: only ``initial`` blocks are testbench-only constructs — match the
    #: kind token precisely, so a *module* merely named "initial…" is
    #: still accounted as a design.
    TESTBENCH_PATTERN = re.compile(r"_initial_\d+$")

    def __init__(self):
        self.lowered_by_pl = []
        self.lowered_by_deseq = []
        self.already_structural = []
        self.removed_functions = []
        self.rejected = []
        self.pass_records = []   # per-pass PassRecord instrumentation
        self.analysis_stats = {}  # AnalysisManager hit/miss counters

    @classmethod
    def is_testbench(cls, unit_name):
        return cls.TESTBENCH_PATTERN.search(unit_name) is not None

    def design_rejections(self):
        """Rejections of *design* processes (testbenches excluded)."""
        return [(name, reason) for name, reason in self.rejected
                if not self.is_testbench(name)]

    def testbench_rejections(self):
        return [(name, reason) for name, reason in self.rejected
                if self.is_testbench(name)]

    @property
    def fully_lowered(self):
        """True when every design process reached the structural level."""
        return not self.design_rejections()

    def __repr__(self):
        return (f"<LoweringReport pl={self.lowered_by_pl} "
                f"deseq={self.lowered_by_deseq} rejected={self.rejected}>")


def cleanup(unit, pm=None):
    """CF / DCE / CSE / IS to a fixpoint on one unit."""
    pm = pm if pm is not None else PassManager()
    return pm.run_spec(CLEANUP_SPEC, unit)


def lower_to_structural(module, strict=True, verify=True, pm=None):
    """Lower all processes in ``module`` to entities, in place.

    With ``strict`` (default) a process that cannot be lowered raises
    :class:`LoweringRejection`; otherwise it is recorded in the report and
    left in the module (which will then not verify at the structural
    level).

    ``pm`` optionally supplies the :class:`PassManager` (and with it the
    analysis cache and instrumentation table) to run on; by default each
    call gets a fresh one.  The report carries the per-pass records either
    way.
    """
    pm = pm if pm is not None else PassManager()
    am = pm.am
    report = LoweringReport()
    for entity in module.entities():
        report.already_structural.append(entity.name)
        pm.run_spec(CLEANUP_SPEC, entity)

    for proc in list(module.processes()):
        try:
            pm.run_spec(PREPARE_SPEC, proc)
        except InlineError as error:
            if strict:
                raise LoweringRejection(proc.name, str(error)) from error
            report.rejected.append((proc.name, str(error)))

    # PL first (combinational), then Deseq (sequential), then PL again for
    # any process Deseq normalized.  Deseq records the precise reason it
    # refused a shape-matching process (e.g. a multi-edge trigger term),
    # which the rejection report below prefers over the generic message.
    deseq_reasons = {}
    for proc in list(module.processes()):
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(module, proc)
            am.forget(proc)
            report.lowered_by_pl.append(proc.name)
    for proc in list(module.processes()):
        if deseq.desequentialize(module, proc, am, deseq_reasons) \
                is not None:
            report.lowered_by_deseq.append(proc.name)
    for proc in list(module.processes()):
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(module, proc)
            am.forget(proc)
            report.lowered_by_pl.append(proc.name)

    rejected_names = {name for name, _ in report.rejected}
    for proc in module.processes():
        if proc.name in rejected_names:
            continue
        reason = deseq_reasons.get(proc.name)
        if reason is not None:
            reason = f"deseq: {reason}"
        else:
            reason = _rejection_reason(proc, am)
        if strict:
            raise LoweringRejection(proc.name, reason)
        report.rejected.append((proc.name, reason))

    # Functions must be gone (all calls inlined); drop the unused ones.
    for func in list(module.functions()):
        if not _function_called(module, func):
            module.remove(func.name)
            am.forget(func)
            report.removed_functions.append(func.name)
        elif strict:
            raise LoweringRejection(
                func.name, "function still referenced after inlining")

    # Mux insertion: conditional/partial drives that survived into the
    # lowered entities become unconditional (N-way) mux drives, the form
    # the technology mapper maps; cleanup then folds what the rewrite
    # exposed.
    for entity in module.entities():
        pm.run_spec("muxinsert", entity)
        pm.run_spec(CLEANUP_SPEC, entity)

    # Non-strict runs with rejections leave behavioural processes in the
    # module, which cannot verify at the structural level — skip those.
    if verify and (strict or not report.rejected):
        verify_module(module, level=STRUCTURAL, am=am)
    report.pass_records = list(pm.records.values())
    report.analysis_stats = am.stats
    return report


@register_pass
class LowerToStructuralPass(ModulePass):
    """The full Figure-4 lowering as a single registered pass (``lower``).

    Runs non-strict so partially-synthesizable input produces a report
    instead of an exception — matching how ``llhd-opt`` is used from the
    command line.  The inner pipeline's per-pass records are hoisted into
    the enclosing PassManager's table.
    """

    name = "lower"
    preserves = frozenset()

    def __init__(self, strict=False, verify=True):
        super().__init__()
        self.strict = strict
        self.verify = verify
        self.report = None

    def run_on_module(self, module, am):
        inner = PassManager(am=am)
        self.report = lower_to_structural(
            module, strict=self.strict, verify=self.verify, pm=inner)
        self.sub_records = self.report.pass_records
        self.stat("lowered_pl", len(self.report.lowered_by_pl))
        self.stat("lowered_deseq", len(self.report.lowered_by_deseq))
        if self.report.rejected:
            self.stat("rejected", len(self.report.rejected))
        return True


def _prepare_process(proc, module=None, pm=None):
    """§4.1–§4.4 on one process (the ``prepare`` named pipeline)."""
    pm = pm if pm is not None else PassManager()
    return pm.run_spec(PREPARE_SPEC, proc)


def _rejection_reason(proc, am=None):
    from ..analysis.temporal import TemporalRegions
    from . import unroll

    for inst in proc.instructions():
        if inst.opcode in ("var", "ld", "st", "alloc", "free"):
            return (f"'{inst.opcode}' remains after mem2reg — memory has "
                    f"no hardware equivalent")
        if inst.opcode == "call":
            return f"call to @{inst.callee} remains"
        if inst.opcode == "halt":
            return "process halts — testbench code is not synthesizable"
        if inst.opcode == "wait" and inst.wait_time() is not None:
            return "wait with a timeout models physical time, not hardware"
    loop_reasons = unroll.failure_reasons(proc)
    if loop_reasons:
        return "unroll: " + "; ".join(loop_reasons)
    regions = am.get("temporal", proc) if am is not None \
        else TemporalRegions(proc)
    trs = regions.count
    if len(proc.blocks) > 2 or trs > 2:
        return (f"{len(proc.blocks)} blocks / {trs} temporal regions "
                f"remain after TCFE (neither combinational nor a "
                f"recognizable register)")
    return "process does not match a combinational or sequential pattern"


def _function_called(module, func):
    for unit in module:
        for inst in unit.instructions():
            if inst.opcode == "call" and inst.callee == func.name:
                return True
    return False
