"""The behavioural → structural lowering pipeline (Figure 4, section 4).

``lower_to_structural`` drives the full pass sequence of the paper:

1. basic transformations: inline, unroll, mem2reg, CF/DCE/CSE/IS (§4.1),
2. Early Code Motion (§4.2),
3. Temporal Code Motion (§4.3),
4. Total Control Flow Elimination (§4.4),
5. Process Lowering (§4.5),
6. Desequentialization (§4.6),

and rejects processes that cannot be lowered (``LoweringRejection``), as a
design containing them is not implementable in hardware.
"""

from __future__ import annotations

from ..ir.dialects import STRUCTURAL
from ..ir.verifier import verify_module
from . import cf, cse, dce, deseq, ecm, instsimplify, mem2reg, tcfe, tcm
from . import process_lowering, unroll
from .inline import InlineError, inline_calls


class LoweringRejection(Exception):
    """A process cannot be lowered to Structural LLHD."""

    def __init__(self, unit_name, reason):
        self.unit_name = unit_name
        self.reason = reason
        super().__init__(f"@{unit_name}: {reason}")


class LoweringReport:
    """What the pipeline did: per-process outcome and statistics."""

    def __init__(self):
        self.lowered_by_pl = []
        self.lowered_by_deseq = []
        self.already_structural = []
        self.removed_functions = []
        self.rejected = []

    def __repr__(self):
        return (f"<LoweringReport pl={self.lowered_by_pl} "
                f"deseq={self.lowered_by_deseq} rejected={self.rejected}>")


def cleanup(unit):
    """CF / DCE / CSE / IS to a fixpoint on one unit."""
    while True:
        changed = cf.run(unit)
        changed |= instsimplify.run(unit)
        changed |= cse.run(unit)
        changed |= dce.run(unit)
        if not changed:
            return


def lower_to_structural(module, strict=True, verify=True):
    """Lower all processes in ``module`` to entities, in place.

    With ``strict`` (default) a process that cannot be lowered raises
    :class:`LoweringRejection`; otherwise it is recorded in the report and
    left in the module (which will then not verify at the structural
    level).
    """
    report = LoweringReport()
    for entity in module.entities():
        report.already_structural.append(entity.name)
        cleanup(entity)

    for proc in list(module.processes()):
        try:
            _prepare_process(proc, module)
        except InlineError as error:
            if strict:
                raise LoweringRejection(proc.name, str(error)) from error
            report.rejected.append((proc.name, str(error)))

    # PL first (combinational), then Deseq (sequential), then PL again for
    # any process Deseq normalized.
    for proc in list(module.processes()):
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(module, proc)
            report.lowered_by_pl.append(proc.name)
    for proc in list(module.processes()):
        if deseq.desequentialize(module, proc) is not None:
            report.lowered_by_deseq.append(proc.name)
    for proc in list(module.processes()):
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(module, proc)
            report.lowered_by_pl.append(proc.name)

    for proc in module.processes():
        reason = _rejection_reason(proc)
        if strict:
            raise LoweringRejection(proc.name, reason)
        report.rejected.append((proc.name, reason))

    # Functions must be gone (all calls inlined); drop the unused ones.
    for func in list(module.functions()):
        if not _function_called(module, func):
            module.remove(func.name)
            report.removed_functions.append(func.name)
        elif strict:
            raise LoweringRejection(
                func.name, "function still referenced after inlining")

    for entity in module.entities():
        cleanup(entity)

    if verify and strict:
        verify_module(module, level=STRUCTURAL)
    return report


def _prepare_process(proc, module):
    """§4.1–§4.4 on one process."""
    inline_calls(proc, module)
    unroll.run(proc)
    mem2reg.run(proc)
    cleanup(proc)
    ecm.run(proc)
    cleanup(proc)
    tcm.run(proc)
    cleanup(proc)
    tcfe.run(proc)
    cleanup(proc)
    # TCM/TCFE may expose more hoisting/threading opportunities.
    ecm.run(proc)
    tcfe.run(proc)
    cleanup(proc)


def _rejection_reason(proc):
    from ..analysis.temporal import TemporalRegions

    for inst in proc.instructions():
        if inst.opcode in ("var", "ld", "st", "alloc", "free"):
            return (f"'{inst.opcode}' remains after mem2reg — memory has "
                    f"no hardware equivalent")
        if inst.opcode == "call":
            return f"call to @{inst.callee} remains"
        if inst.opcode == "halt":
            return "process halts — testbench code is not synthesizable"
        if inst.opcode == "wait" and inst.wait_time() is not None:
            return "wait with a timeout models physical time, not hardware"
    trs = TemporalRegions(proc).count
    if len(proc.blocks) > 2 or trs > 2:
        return (f"{len(proc.blocks)} blocks / {trs} temporal regions "
                f"remain after TCFE (neither combinational nor a "
                f"recognizable register)")
    return "process does not match a combinational or sequential pattern"


def _function_called(module, func):
    for unit in module:
        for inst in unit.instructions():
            if inst.opcode == "call" and inst.callee == func.name:
                return True
    return False
