"""Early Code Motion (ECM) — section 4.2.

Eagerly moves instructions "up" the CFG into predecessor blocks to
facilitate later control-flow elimination: constants move to the entry
block, arithmetic moves to the earliest point where all operands are
available, and ``prb`` hoists only within its temporal region — moving a
probe across a ``wait`` would change which instant it samples (Figure 5b
of the paper).
"""

from __future__ import annotations

from ..analysis.manager import AnalysisManager
from ..ir.instructions import Instruction
from ..ir.values import Argument, Block
from .manager import PRESERVE_ALL, UnitPass, register_pass

_MOVABLE = frozenset({
    "const", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
    "srem", "and", "or", "xor", "not", "neg", "shl", "shr", "eq", "neq",
    "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge", "zext", "sext",
    "trunc", "array", "struct", "insf", "extf", "inss", "exts", "mux",
})


def run(unit, am=None):
    """Hoist instructions in one process/function; True if anything moved."""
    return EarlyCodeMotionPass().run_on_unit(
        unit, am if am is not None else AnalysisManager())


@register_pass
class EarlyCodeMotionPass(UnitPass):
    """Hoist instructions up the CFG within TR bounds (§4.2).

    Instructions move between existing blocks; no block or edge changes,
    so the dominator tree and temporal regions it consumes stay valid.
    """

    name = "ecm"
    applies_to = ("func", "proc")
    preserves = PRESERVE_ALL

    def run_on_unit(self, unit, am):
        if unit.is_entity:
            return False
        domtree = am.get("domtree", unit)
        regions = am.get("temporal", unit) if unit.is_process else None
        changed = False
        for block in am.get("rpo", unit):
            for inst in list(block.instructions):
                target = _hoist_target(inst, block, domtree, regions, unit)
                if target is None or target is block:
                    continue
                block.remove(inst)
                index = len(target.instructions)
                if target.terminator is not None:
                    index -= 1
                target.insert(index, inst)
                self.stat("hoisted")
                changed = True
        return changed


def _hoist_target(inst, block, domtree, regions, unit):
    op = inst.opcode
    if op == "prb":
        if regions is None:
            return None
        # Hoist to the entry block of this instruction's temporal region:
        # within a TR all probes observe the same instant.
        tr = regions.region(block)
        entry = regions.entry_block.get(tr)
        if entry is not None and entry is not block \
                and domtree.dominates(entry, block) \
                and _operands_available(inst, entry, domtree):
            return entry
        return None
    if op not in _MOVABLE:
        return None
    if op in ("udiv", "sdiv", "umod", "smod", "urem", "srem"):
        # Division must not be speculated onto paths that guarded it:
        # hoist only when the divisor is a non-zero constant.
        divisor = inst.operands[1]
        if not (isinstance(divisor, Instruction)
                and divisor.opcode == "const"
                and divisor.attrs["value"] != 0):
            return None
    if op == "const":
        return unit.entry
    # Deepest block (by dominator depth) among operand definitions that
    # still dominates the current block.
    target = unit.entry
    for operand in inst.operands:
        if isinstance(operand, (Argument, Block)):
            continue
        def_block = operand.parent
        if def_block is None:
            return None
        if domtree.dominates(target, def_block):
            target = def_block
        elif not domtree.dominates(def_block, target):
            return None  # incomparable definitions: leave in place
    if not domtree.dominates(target, block):
        return None
    # A probe result must not be carried across a wait: if any transitive
    # operand is a prb, the hoist target must stay within that prb's TR.
    if regions is not None and not _same_region_ok(inst, target, regions):
        return None
    return target


def _operands_available(inst, target, domtree):
    for operand in inst.operands:
        if isinstance(operand, (Argument, Block)):
            continue
        def_block = operand.parent
        if def_block is None or not domtree.dominates(def_block, target):
            return False
    return True


def _same_region_ok(inst, target, regions):
    """Moving ``inst`` to ``target`` must not detach it from prb operands'
    region: a value computed from a probe is only meaningful in the probe's
    instant."""
    for operand in inst.operands:
        if isinstance(operand, Instruction) and operand.opcode == "prb":
            if operand.parent is None:
                return False
            if regions.region_of.get(id(operand.parent)) != \
                    regions.region_of.get(id(target)):
                return False
    return True
