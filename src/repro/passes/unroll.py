"""Loop unrolling by compile-time evaluation — section 4.1.

"To facilitate later transformations, all function calls are inlined and
loops are unrolled at this point.  Where this is not possible, the process
is rejected."

Counted loops with pure bodies and constant inputs (the form produced by
inlined functions and elaborated ``for`` loops) are *folded*: the loop is
executed at compile time with the simulator's evaluation function, and all
values escaping the loop are replaced by constants.  Loops with side
effects or non-constant bounds are left alone — the structural lowering
pipeline rejects such processes, as the paper prescribes.
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.instructions import Instruction
from ..sim.eval import evaluate
from ..sim.values import SimulationError
from .manager import UnitPass, register_pass

MAX_ITERATIONS = 100_000


def run(unit):
    """Fold all foldable single-block loops; returns number folded."""
    if unit.is_entity:
        return 0
    folded = 0
    progress = True
    while progress:
        progress = False
        for block in list(unit.blocks):
            if _fold_loop(unit, block):
                folded += 1
                progress = True
                break
    return folded


@register_pass
class UnrollPass(UnitPass):
    """Fold counted loops by compile-time evaluation (§4.1).

    Folding a loop cuts its back edge — a CFG change, so nothing cached
    survives.
    """

    name = "unroll"
    applies_to = ("func", "proc")
    preserves = frozenset()

    def run_on_unit(self, unit, am):
        folded = run(unit)
        if folded:
            self.stat("folded", folded)
        return bool(folded)


def _fold_loop(unit, loop):
    term = loop.terminator
    if term is None or term.opcode != "br" or not term.is_conditional_branch:
        return False
    dest_false, dest_true = term.operands[1], term.operands[2]
    if dest_true is loop and dest_false is not loop:
        exit_block = dest_false
        continue_on = True
    elif dest_false is loop and dest_true is not loop:
        exit_block = dest_true
        continue_on = False
    else:
        return False
    preds = [p for p in loop.predecessors() if p is not loop]
    if len(preds) != 1:
        return False
    preheader = preds[0]

    phis = loop.phis()
    body = [i for i in loop.instructions if i.opcode != "phi" and
            i is not term]
    # Pure body only; constant initial values only.
    env = {}
    for phi in phis:
        init = phi.phi_value_for(preheader)
        if not (isinstance(init, Instruction) and init.opcode == "const"):
            return False
        env[id(phi)] = init.attrs["value"]
    for inst in body:
        if not inst.is_pure:
            return False

    def value_of(operand):
        if id(operand) in env:
            return env[id(operand)]
        if isinstance(operand, Instruction) and operand.opcode == "const":
            return operand.attrs["value"]
        raise KeyError

    # Compile-time execution.
    iterations = 0
    try:
        while True:
            iterations += 1
            if iterations > MAX_ITERATIONS:
                return False
            for inst in body:
                env[id(inst)] = evaluate(
                    inst, [value_of(op) for op in inst.operands])
            cond = value_of(term.branch_condition())
            if bool(cond) != continue_on:
                break
            next_values = {}
            for phi in phis:
                next_values[id(phi)] = value_of(phi.phi_value_for(loop))
            env.update(next_values)
    except (KeyError, SimulationError):
        return False

    # Replace escaping values with constants in the preheader.
    builder = Builder(preheader, len(preheader.instructions) - 1)
    for inst in phis + body:
        external = [u for u in list(inst.uses)
                    if u.user.parent is not loop]
        if not external:
            continue
        const = builder.insert(Instruction(
            "const", inst.type, (), {"value": env[id(inst)]}, inst.name))
        for use in external:
            use.user.set_operand(use.index, const)

    # Cut the back edge; DCE will clean the remains.
    from ..analysis.cfg import rebuild_phi

    term.erase()
    Builder.at_end(loop).br(exit_block)
    for phi in list(loop.phis()):
        pairs = [(v, b) for v, b in phi.phi_pairs() if b is not loop]
        rebuild_phi(phi, pairs)
    return True
