"""Loop unrolling by symbolic compile-time execution — section 4.1.

"To facilitate later transformations, all function calls are inlined and
loops are unrolled at this point.  Where this is not possible, the process
is rejected."

Counted loops — the form produced by inlined functions and elaborated
``for`` loops — are *symbolically executed* at compile time: every branch
decision inside the loop must evaluate to a compile-time constant (the
induction arithmetic is, by construction, a chain of constants), while
values that depend on runtime data (probed signals, process arguments)
are replicated per iteration as straight-line instructions in the
preheader.  When every value turns out constant this degenerates to the
classic fold: escaping values are replaced by constants and no code is
emitted at all.

The executor follows the concrete control-flow path, so multi-block loop
bodies — including nested loops, as long as every branch condition stays
compile-time computable — unroll exactly as they would execute.  ``lN``
induction arithmetic works transparently: the evaluator is the
simulator's own, so nine-valued counters fold as long as they stay
two-valued (an ``X`` in a loop condition is a rejection, not a guess).

Loops that cannot be unrolled (non-constant trip counts, side effects in
the body, multiple entries) are left alone with a recorded reason — the
structural lowering pipeline rejects such processes, as the paper
prescribes, and reports the reason via :func:`failure_reasons`.
"""

from __future__ import annotations

from ..analysis.dominators import DominatorTree
from ..ir.builder import Builder
from ..ir.instructions import Instruction
from ..ir.ninevalued import LogicVec
from ..ir.values import TimeValue
from ..sim.eval import evaluate
from ..sim.values import SimulationError
from .manager import UnitPass, register_pass

#: Compile-time iteration bound: a loop "executing" longer than this at
#: compile time is treated as non-terminating (likely a bug) and rejected.
MAX_ITERATIONS = 100_000

#: Cap on instructions one loop may expand into; beyond this the loop is
#: rejected rather than exploding the unit.
MAX_EMITTED = 65_536


def run(unit, reasons=None):
    """Unroll all unrollable loops; returns the number unrolled.

    ``reasons`` optionally collects a human-readable reason per loop that
    could *not* be unrolled (used by the lowering pipeline's rejection
    report).
    """
    if unit.is_entity:
        return 0
    unrolled = 0
    progress = True
    while progress:
        progress = False
        for loop in _find_loops(unit):
            ok, _reason = _try_unroll(unit, loop, commit=True)
            if ok:
                unrolled += 1
                progress = True
                break  # CFG changed; re-discover loops
    if reasons is not None:
        reasons.extend(failure_reasons(unit))
    return unrolled


def failure_reasons(unit):
    """Why each remaining loop of ``unit`` cannot be unrolled.

    Returns a list of strings, one per loop (empty when the unit has no
    loops left).  Purely analytical — the unit is not modified.
    """
    out = []
    if unit.is_entity:
        return out
    for loop in _find_loops(unit):
        ok, reason = _try_unroll(unit, loop, commit=False)
        if not ok:
            out.append(f"loop at block '{loop.header.name}': {reason}")
    return out


@register_pass
class UnrollPass(UnitPass):
    """Unroll counted loops by symbolic compile-time execution (§4.1).

    Unrolling cuts back edges and deletes blocks — a CFG change, so
    nothing cached survives.
    """

    name = "unroll"
    applies_to = ("func", "proc")
    preserves = frozenset()

    def run_on_unit(self, unit, am):
        unrolled = run(unit)
        if unrolled:
            self.stat("unrolled", unrolled)
        return bool(unrolled)


# -- loop discovery ------------------------------------------------------------


class _Loop:
    """A natural loop: header, member blocks, and its back-edge latches."""

    __slots__ = ("header", "blocks", "latches")

    def __init__(self, header, blocks, latches):
        self.header = header
        self.blocks = blocks      # dict id(block) -> block, header included
        self.latches = latches


def _find_loops(unit):
    """Outermost natural loops of ``unit``, via dominance back edges.

    Back edges to the same header merge into one loop; loops nested
    inside another discovered loop are not reported separately (the
    symbolic executor runs inner iterations as part of the outer walk).
    """
    domtree = DominatorTree(unit)
    by_header = {}  # id(header) -> (header, latches); insertion-ordered
    for block in unit.blocks:
        term = block.terminator
        # Only ``br`` back edges form candidate loops: a ``wait`` back
        # edge is the process's own run-forever loop (a temporal-region
        # boundary, not a counted loop).
        if term is None or term.opcode != "br":
            continue
        for succ in term.successors():
            if id(succ) in domtree._rpo_index \
                    and domtree.dominates(succ, block):
                by_header.setdefault(id(succ), (succ, []))[1].append(block)
    loops = []
    for header, latches in by_header.values():
        members = {id(header): header}
        stack = list(latches)
        while stack:
            block = stack.pop()
            if id(block) in members:
                continue
            members[id(block)] = block
            stack.extend(block.predecessors())
        loops.append(_Loop(header, members, latches))
    # Keep only outermost loops: drop a loop whose header sits inside
    # another loop's body.
    outer = []
    for loop in loops:
        if not any(other is not loop and id(loop.header) in other.blocks
                   for other in loops):
            outer.append(loop)
    return outer


# -- symbolic execution --------------------------------------------------------


class _Reject(Exception):
    """Internal: this loop cannot be unrolled (reason in args[0])."""


def _try_unroll(unit, loop, commit):
    """Symbolically execute ``loop``; on success (and ``commit``) replace
    it with straight-line code in the preheader.

    Returns ``(ok, reason)``; ``reason`` is None on success.  Without
    ``commit`` the unit is never modified (dry run for diagnostics).
    """
    staged = []      # instructions to insert into the preheader, in order
    try:
        preheader = _single_preheader(unit, loop)
        exec_state = _execute(unit, loop, preheader, staged)
        if commit:
            _commit(unit, loop, preheader, staged, exec_state)
        return True, None
    except _Reject as reject:
        return False, reject.args[0]
    finally:
        if not commit or staged and staged[0].parent is None:
            for inst in staged:
                if inst.parent is None:
                    inst.drop_operands()


def _single_preheader(unit, loop):
    """The unique outside predecessor of the header, entering by an
    unconditional branch.

    Loop *body* blocks cannot have outside predecessors: membership is
    computed by walking predecessors from the latches, so any such
    predecessor would itself be a member (side entries make a CFG
    irreducible, and dominance-based back-edge detection never reports
    irreducible cycles as loops in the first place).
    """
    outside = [p for p in loop.header.predecessors()
               if id(p) not in loop.blocks]
    if len(outside) != 1:
        raise _Reject(
            f"loop header has {len(outside)} outside predecessors "
            f"(need exactly one preheader)")
    preheader = outside[0]
    term = preheader.terminator
    if term is None or term.opcode != "br" or term.is_conditional_branch:
        raise _Reject(
            "loop is entered by a non-branch terminator "
            f"('{term.opcode if term is not None else '?'}')")
    return preheader


class _ExecState:
    __slots__ = ("env", "exit_block", "exit_pred")

    def __init__(self, env, exit_block, exit_pred):
        self.env = env
        self.exit_block = exit_block
        self.exit_pred = exit_pred


def _execute(unit, loop, preheader, staged):
    """Walk the loop's concrete control-flow path, filling ``staged``.

    The environment maps ``id(value)`` to ``("c", concrete_value)`` for
    compile-time constants or ``("v", ssa_value)`` for runtime values
    (already staged or defined outside the loop).
    """
    env = {}
    const_cache = {}

    def resolve(value):
        known = env.get(id(value))
        if known is not None:
            return known
        if isinstance(value, Instruction) and value.opcode == "const":
            return ("c", value.attrs["value"])
        return ("v", value)  # defined outside the loop; still in scope

    def materialize(result, ty):
        if result[0] == "v":
            return result[1]
        return _materialize_const(result[1], ty, staged, const_cache)

    current, prev = loop.header, preheader
    iterations = 0
    while True:
        iterations += 1
        if iterations > MAX_ITERATIONS:
            raise _Reject(
                f"loop did not terminate within {MAX_ITERATIONS} "
                f"compile-time iterations")
        phis = current.phis()
        updates = {}
        for phi in phis:
            try:
                incoming = phi.phi_value_for(prev)
            except KeyError:
                raise _Reject(
                    f"phi %{phi.name or '?'} has no entry for the "
                    f"executed edge") from None
            updates[id(phi)] = resolve(incoming)
        env.update(updates)
        term = current.terminator
        if term is None or term.opcode != "br":
            raise _Reject(
                f"loop block '{current.name}' ends in "
                f"'{term.opcode if term is not None else '?'}' — the "
                f"body is not side-effect-free")
        for inst in current.instructions:
            if inst.opcode == "phi" or inst is term:
                continue
            if not inst.is_pure and inst.opcode != "prb":
                raise _Reject(
                    f"'{inst.opcode}' in the loop body has side effects")
            resolved = [resolve(op) for op in inst.operands]
            env[id(inst)] = _step(inst, resolved, resolve, materialize,
                                  staged)
            if len(staged) > MAX_EMITTED:
                raise _Reject(
                    f"unrolled body exceeds {MAX_EMITTED} instructions")
        if term.is_conditional_branch:
            cond = resolve(term.branch_condition())
            taken = term.operands[2 if _concrete_bool(cond) else 1]
        else:
            taken = term.operands[0]
        if id(taken) not in loop.blocks:
            # ``taken`` can never be the preheader: an exit edge back to
            # it would make the preheader a dominating loop header of an
            # enclosing (non-terminating) loop, which is discovered —
            # and rejected — instead of this one.
            return _ExecState(env, taken, current)
        prev, current = current, taken


def _step(inst, resolved, resolve, materialize, staged):
    """Execute one instruction: fold when possible, else stage a clone."""
    if inst.is_pure and all(r[0] == "c" for r in resolved):
        try:
            return ("c", evaluate(inst, [r[1] for r in resolved]))
        except SimulationError:
            pass  # stage it; the error (if reached) stays a runtime one
    shortcut = _mux_shortcut(inst, resolved, resolve)
    if shortcut is not None:
        return shortcut
    operands = [materialize(r, op.type)
                for r, op in zip(resolved, inst.operands)]
    clone = Instruction(inst.opcode, inst.type, operands,
                        dict(inst.attrs), inst.name)
    staged.append(clone)
    return ("v", clone)


def _mux_shortcut(inst, resolved, resolve):
    """Muxes whose outcome does not depend on a runtime selector.

    * concrete selector: the chosen element resolves directly (even when
      other elements are runtime values, via the feeding ``array``);
    * all elements concrete and equal: the selector is irrelevant — but
      only for selectors that cannot be unknown at runtime (an ``lN``
      selector with an ``X`` is a runtime error folding would erase).
    """
    if inst.opcode != "mux":
        return None
    choices, sel = resolved
    if sel[0] == "c":
        index = sel[1]
        if isinstance(index, LogicVec):
            if not index.is_two_valued:
                return None
            index = index.to_int()
        if choices[0] == "c":
            elements = choices[1]
            return ("c", elements[min(index, len(elements) - 1)])
        array = inst.operands[0]
        if isinstance(array, Instruction) and array.opcode == "array":
            if array.attrs.get("splat"):
                return resolve(array.operands[0])
            elements = array.operands
            return resolve(elements[min(index, len(elements) - 1)])
        return None
    if choices[0] == "c" and not inst.operands[1].type.is_logic:
        elements = choices[1]
        if all(e == elements[0] for e in elements[1:]):
            return ("c", elements[0])
    return None


def _concrete_bool(resolved):
    # Branch conditions are always i1 (the builder enforces it), so a
    # concrete condition is a plain int — never a LogicVec.
    if resolved[0] != "c":
        raise _Reject(
            "branch condition in the loop is not compile-time constant "
            "(non-constant trip count)")
    return bool(resolved[1])


def _materialize_const(value, ty, staged, cache):
    """A staged constant instruction (or aggregate tree) for ``value``."""
    from .clone import materialize_constant

    key = (str(ty), type(value).__name__, repr(value))
    cached = cache.get(key)
    if cached is not None:
        return cached

    def emit(inst):
        staged.append(inst)
        return inst

    try:
        inst = materialize_constant(value, ty, emit)
    except ValueError as error:
        raise _Reject(str(error)) from None
    cache[key] = inst
    return inst


# -- committing the unrolled form ---------------------------------------------


def _commit(unit, loop, preheader, staged, state):
    """Splice the straight-line code in and delete the loop."""
    from ..analysis.cfg import rebuild_phi, remove_unreachable_blocks

    env = state.env
    const_cache = {}

    def final_value(value):
        known = env.get(id(value))
        if known is None:
            raise _Reject(
                f"value %{value.name or '?'} escapes the loop but was "
                f"never computed on the executed path")
        if known[0] == "v":
            return known[1]
        return _materialize_const(known[1], value.type, staged, const_cache)

    # Escaping values: collect replacements before mutating anything, so
    # a late _Reject leaves the unit untouched.  Phi uses whose incoming
    # edge comes *from a loop block* are not replacements: the taken
    # exit edge is rebuilt below, and pairs on never-taken exit edges
    # are pruned along with their predecessor blocks — their values may
    # legitimately never have been computed.
    replacements = []
    for block in loop.blocks.values():
        for inst in block.instructions:
            if inst.is_terminator:
                continue
            for use in list(inst.uses):
                user = use.user
                if user.parent is None \
                        or id(user.parent) in loop.blocks:
                    continue
                if user.opcode == "phi":
                    pred = user.operands[use.index + 1] \
                        if use.index % 2 == 0 else None
                    if pred is not None and id(pred) in loop.blocks:
                        continue
                replacements.append((use, final_value(inst)))
    exit_phis = []
    for phi in state.exit_block.phis():
        # Surviving non-loop edges may still carry *loop-defined* values
        # (an outside block dominated by the loop looping back to the
        # exit): those must be mapped to their final values here, since
        # ``rebuild_phi`` below reinstalls these pairs wholesale and
        # would otherwise resurrect a reference into the deleted loop.
        pairs = []
        for v, b in phi.phi_pairs():
            if id(b) in loop.blocks:
                continue
            if isinstance(v, Instruction) and v.parent is not None \
                    and id(v.parent) in loop.blocks:
                v = final_value(v)
            pairs.append((v, b))
        incoming = phi.phi_value_for(state.exit_pred)
        known = env.get(id(incoming))
        if known is None:  # defined outside the loop (or a constant)
            value = incoming
        elif known[0] == "v":
            value = known[1]
        else:
            value = _materialize_const(known[1], phi.type, staged,
                                       const_cache)
        exit_phis.append((phi, pairs + [(value, preheader)]))

    # Point of no return: insert the staged code and rewire the CFG.
    insert_at = preheader.index_of(preheader.terminator)
    for inst in staged:
        preheader.insert(insert_at, inst)
        insert_at += 1
    for use, value in replacements:
        use.user.set_operand(use.index, value)
    for phi, pairs in exit_phis:
        rebuild_phi(phi, pairs)
    preheader.terminator.erase()
    Builder.at_end(preheader).br(state.exit_block)
    remove_unreachable_blocks(unit)
