"""Total Control Flow Elimination (TCFE) — section 4.4.

Replaces control flow with data flow: branches become multiplexers.  After
TCM most blocks are empty; TCFE

* threads jumps through empty forwarding blocks,
* if-converts diamonds and triangles (phi → mux on the branch condition),
* merges straight-line block chains,

until (for the canonical HDL forms) one block per temporal region remains:
combinational processes end with a single block/TR, sequential processes
with two (section 4.4).

If-conversion is *speculative*: a side block whose instructions are pure
and total (no division, no possibly-unknown ``mux`` selector or shift
amount, no dynamic aggregate index — anything that could raise at
runtime on the not-taken path) is hoisted into the branching block and
then converted.  This is what collapses ``case`` cascades — chains of
triangles whose arms compute values — into nested muxes.
"""

from __future__ import annotations

from ..analysis.cfg import rebuild_phi, remove_unreachable_blocks
from ..ir.builder import Builder
from ..ir.values import Block
from .manager import UnitPass, register_pass

#: Cap on instructions hoisted out of one side block per conversion;
#: conversions accumulate code up a cascade, so this bounds the growth.
SPECULATE_LIMIT = 256

_DIV_OPS = frozenset({"udiv", "sdiv", "umod", "smod", "urem", "srem"})


def _speculatable(inst):
    """Safe to execute on a path that would not have run it: pure and
    incapable of raising a runtime error on any operand values."""
    if not inst.is_pure:
        return False
    op = inst.opcode
    if op in _DIV_OPS:
        return False  # division by zero
    if op == "mux" and inst.operands[1].type.is_logic:
        return False  # an X selector is a runtime error
    if op in ("shl", "shr") and not inst.operands[0].type.is_logic \
            and inst.operands[1].type.is_logic:
        return False  # unknown shift amount on an integer is an error
    if op in ("extf", "insf") and inst.has_dynamic_index:
        return False  # dynamic index may be out of range
    return True


def run(unit):
    """Run TCFE to a fixpoint; returns True if the CFG changed."""
    return TotalControlFlowEliminationPass().run_on_unit(unit, None)


@register_pass
class TotalControlFlowEliminationPass(UnitPass):
    """Replace control flow with data flow: branches become muxes (§4.4).

    Rewrites the CFG wholesale, so it preserves no cached analyses.
    """

    name = "tcfe"
    applies_to = ("func", "proc")
    preserves = frozenset()

    def run_on_unit(self, unit, am):
        if not unit.is_process and not unit.is_function:
            return False
        changed = False
        progress = True
        while progress:
            progress = False
            if _thread_empty_blocks(unit):
                self.stat("threaded")
                progress = True
            if _if_convert(unit):
                self.stat("if_converted")
                progress = True
            if _merge_chains(unit):
                self.stat("merged")
                progress = True
            changed |= progress
        return changed


def _is_empty_forward(block):
    """Only an unconditional br, no phis."""
    return (len(block.instructions) == 1
            and block.terminator is not None
            and block.terminator.opcode == "br"
            and not block.terminator.is_conditional_branch)


def _thread_empty_blocks(unit):
    changed = False
    for block in list(unit.blocks):
        if block is unit.entry or not _is_empty_forward(block):
            continue
        target = block.successors()[0]
        if target is block:
            continue
        # Retargeting is unsafe if the target has phis and a predecessor of
        # `block` already reaches the target by another edge.
        if target.phis():
            preds = {id(p) for p in target.predecessors() if p is not block}
            if any(id(p) in preds for p in block.predecessors()):
                continue
            for phi in target.phis():
                pairs = []
                for value, pred in phi.phi_pairs():
                    if pred is block:
                        pairs.extend(
                            (value, p) for p in block.predecessors())
                    else:
                        pairs.append((value, pred))
                rebuild_phi(phi, pairs)
        for use in list(block.uses):
            user = use.user
            if user.opcode in ("br", "wait"):
                user.set_operand(use.index, target)
        if not block.uses:
            block.terminator.erase()
            unit.remove_block(block)
            changed = True
    if changed:
        remove_unreachable_blocks(unit)
    return changed


def _if_convert(unit):
    changed = False
    for block in list(unit.blocks):
        term = block.terminator
        if term is None or term.opcode != "br" \
                or not term.is_conditional_branch:
            continue
        cond = term.branch_condition()
        dest_false, dest_true = term.operands[1], term.operands[2]
        if dest_false is dest_true:
            join = dest_false
            _replace_phis_single_edge(join, block)
            term.erase()
            Builder.at_end(block).br(join)
            changed = True
            continue
        join = _diamond_join(block, dest_false, dest_true)
        if join is not None:
            _convert_diamond(unit, block, cond, dest_false, dest_true, join)
            changed = True
            continue
        join = _triangle_join(block, dest_false, dest_true)
        if join is not None:
            through = dest_true if join is dest_false else dest_false
            _convert_triangle(unit, block, cond, through, join,
                              through_is_true=(through is dest_true))
            changed = True
    if changed:
        remove_unreachable_blocks(unit)
    return changed


def _only_branch_to(block, join):
    """True if ``block`` is a convertible side block of a diamond or
    triangle toward ``join``: a single predecessor, an unconditional
    ``br join``, no phis, and a body of speculatable instructions (they
    will be hoisted into the branching block by the conversion)."""
    term = block.terminator
    if term is None or term.opcode != "br" or term.is_conditional_branch:
        return False
    if block.successors() != [join] or len(block.predecessors()) != 1:
        return False
    if block.phis():
        return False
    body = [i for i in block.instructions if i is not term]
    if len(body) > SPECULATE_LIMIT:
        return False
    return all(_speculatable(i) for i in body)


def _hoist_side(block, side):
    """Move ``side``'s body (all but the terminator) into ``block``,
    before its terminator — speculation, guarded by ``_speculatable``."""
    index = block.index_of(block.terminator)
    for inst in [i for i in side.instructions
                 if i is not side.terminator]:
        side.remove(inst)
        block.insert(index, inst)
        index += 1


def _diamond_join(block, dest_false, dest_true):
    if not dest_false.successors() or not dest_true.successors():
        return None
    join_f = dest_false.successors()[0]
    if not _only_branch_to(dest_false, join_f):
        return None
    if not _only_branch_to(dest_true, join_f):
        return None
    return join_f


def _triangle_join(block, dest_false, dest_true):
    # One destination is the join itself, the other flows through to it.
    for through, join in ((dest_true, dest_false),
                          (dest_false, dest_true)):
        if _only_branch_to(through, join):
            return join
    return None


def _convert_diamond(unit, block, cond, dest_false, dest_true, join):
    _hoist_side(block, dest_false)
    _hoist_side(block, dest_true)
    builder = Builder.before(block.terminator)
    for phi in join.phis():
        v_false = v_true = None
        others = []
        for value, pred in phi.phi_pairs():
            if pred is dest_false:
                v_false = value
            elif pred is dest_true:
                v_true = value
            else:
                others.append((value, pred))
        if v_false is None or v_true is None:
            return
        choices = builder.array([v_false, v_true])
        mux = builder.mux(choices, cond)
        rebuild_phi(phi, others + [(mux, block)])
    term = block.terminator
    term.erase()
    Builder.at_end(block).br(join)


def _convert_triangle(unit, block, cond, through, join, through_is_true):
    _hoist_side(block, through)
    builder = Builder.before(block.terminator)
    for phi in join.phis():
        v_block = v_through = None
        others = []
        for value, pred in phi.phi_pairs():
            if pred is block:
                v_block = value
            elif pred is through:
                v_through = value
            else:
                others.append((value, pred))
        if v_block is None or v_through is None:
            return
        if through_is_true:
            choices = builder.array([v_block, v_through])
        else:
            choices = builder.array([v_through, v_block])
        mux = builder.mux(choices, cond)
        rebuild_phi(phi, others + [(mux, block)])
    term = block.terminator
    term.erase()
    Builder.at_end(block).br(join)


def _replace_phis_single_edge(join, pred):
    """Both branch edges lead to join: phi entries from pred collapse."""
    for phi in join.phis():
        # Keep the first entry for pred, drop duplicates.
        seen = False
        pairs = []
        for value, block in phi.phi_pairs():
            if block is pred:
                if seen:
                    continue
                seen = True
            pairs.append((value, block))
        rebuild_phi(phi, pairs)


def _merge_chains(unit):
    changed = False
    for block in list(unit.blocks):
        term = block.terminator
        if term is None or term.opcode != "br" \
                or term.is_conditional_branch:
            continue
        succ = term.operands[0]
        if succ is block or succ is unit.entry:
            continue
        preds = succ.predecessors()
        if len(preds) != 1 or preds[0] is not block:
            continue
        if any(use.user is not term for use in succ.uses):
            continue  # referenced by a wait elsewhere
        # Fold single-predecessor phis, then splice instructions.
        for phi in succ.phis():
            rebuild_phi(phi, phi.phi_pairs())
        term.erase()
        for inst in list(succ.instructions):
            succ.remove(inst)
            block.append(inst)
        unit.remove_block(succ)
        changed = True
    return changed
