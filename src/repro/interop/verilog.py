"""Structural Verilog export (section 5: toolflow integration).

"Where this is not possible, the description may be mapped to a simple,
structural Verilog equivalent to be ingested by the tool."  This module
emits Structural-LLHD entities as plain synthesizable Verilog-2001:
continuous assigns for data flow, ``always @(posedge …)`` blocks for
``reg`` storage, and module instantiations for hierarchy.
"""

from __future__ import annotations

import io

from ..ir.dialects import STRUCTURAL, level_violations


class VerilogExportError(Exception):
    """Raised when a module is not at the structural level."""


_BINARY_OPS = {
    "add": "+", "sub": "-", "mul": "*", "udiv": "/", "umod": "%",
    "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>",
    "eq": "==", "neq": "!=", "ult": "<", "ugt": ">", "ule": "<=",
    "uge": ">=",
}
_SIGNED_OPS = {
    "sdiv": "/", "smod": "%", "slt": "<", "sgt": ">", "sle": "<=",
    "sge": ">=",
}


def export_verilog(module):
    """Render a Structural LLHD module as structural Verilog text."""
    issues = level_violations(module, STRUCTURAL)
    if issues:
        raise VerilogExportError(
            "module is not Structural LLHD:\n  " + "\n  ".join(issues))
    out = io.StringIO()
    out.write("// Structural Verilog exported from LLHD\n")
    for unit in module:
        _export_entity(out, unit, module)
    return out.getvalue()


class _Names:
    def __init__(self):
        self.map = {}
        self.taken = set()
        self.counter = 0

    def of(self, value):
        name = self.map.get(id(value))
        if name is None:
            base = value.name or f"v{self.counter}"
            self.counter += 1
            name = base
            i = 0
            while name in self.taken:
                i += 1
                name = f"{base}_{i}"
            self.taken.add(name)
            self.map[id(value)] = name
        return name


def _width(ty):
    if ty.is_signal:
        ty = ty.element
    if ty.is_int or ty.is_logic:
        return ty.width
    if ty.is_enum:
        return max(1, (ty.states - 1).bit_length())
    raise VerilogExportError(f"cannot export type {ty} to Verilog")


def _range(ty):
    width = _width(ty)
    return f"[{width - 1}:0] " if width > 1 else ""


def _export_entity(out, entity, module):
    names = _Names()
    ports = []
    for arg in entity.inputs:
        ports.append(f"input {_range(arg.type)}{names.of(arg)}")
    for arg in entity.outputs:
        ports.append(f"output {_range(arg.type)}{names.of(arg)}")
    out.write(f"module {entity.name} (\n  " + ",\n  ".join(ports)
              + "\n);\n")
    body = io.StringIO()
    exprs = {}  # id(value) -> verilog expression text

    def expr_of(value):
        text = exprs.get(id(value))
        if text is None:
            # Fall back to the wire name (args, signals).
            text = names.of(value)
        return text

    inst_count = 0
    for inst in entity.body:
        op = inst.opcode
        if op == "const":
            value = inst.attrs["value"]
            if inst.type.is_time:
                exprs[id(inst)] = str(value)
                continue
            exprs[id(inst)] = f"{_width(inst.type)}'d{value}"
        elif op == "sig":
            body.write(f"  wire {_range(inst.type)}{names.of(inst)};\n")
            # Initial values are a simulation concept; synthesis tools
            # take them from reset logic. Skip.
        elif op == "prb":
            exprs[id(inst)] = expr_of(inst.operands[0])
        elif op in _BINARY_OPS:
            a, b = inst.operands
            exprs[id(inst)] = (f"({expr_of(a)} {_BINARY_OPS[op]} "
                               f"{expr_of(b)})")
        elif op in _SIGNED_OPS:
            a, b = inst.operands
            exprs[id(inst)] = (f"($signed({expr_of(a)}) {_SIGNED_OPS[op]} "
                               f"$signed({expr_of(b)}))")
        elif op == "not":
            exprs[id(inst)] = f"(~{expr_of(inst.operands[0])})"
        elif op == "neg":
            exprs[id(inst)] = f"(-{expr_of(inst.operands[0])})"
        elif op in ("zext", "trunc"):
            w = _width(inst.type)
            exprs[id(inst)] = f"({w}'d0 | {expr_of(inst.operands[0])})" \
                if op == "zext" else \
                f"{expr_of(inst.operands[0])}[{w - 1}:0]"
        elif op == "sext":
            w = _width(inst.type)
            src = expr_of(inst.operands[0])
            exprs[id(inst)] = (f"{{{{{w - _width(inst.operands[0].type)}"
                               f"{{{src}[{_width(inst.operands[0].type) - 1}]"
                               f"}}}}, {src}}}")
        elif op == "exts":
            offset = inst.attrs["offset"]
            length = inst.attrs["length"]
            base = expr_of(inst.operands[0])
            if inst.operands[0].type.is_signal:
                exprs[id(inst)] = f"{base}[{offset + length - 1}:{offset}]"
            else:
                exprs[id(inst)] = f"{base}[{offset + length - 1}:{offset}]"
        elif op == "extf":
            index = inst.attrs.get("index")
            base = expr_of(inst.operands[0])
            if index is None:
                index = expr_of(inst.operands[1])
            exprs[id(inst)] = f"{base}[{index}]"
        elif op == "mux":
            arr = inst.operands[0]
            sel = expr_of(inst.operands[1])
            if arr.opcode == "array" and not arr.attrs.get("splat") \
                    and len(arr.operands) == 2:
                a, b = arr.operands
                exprs[id(inst)] = (f"({sel} ? {expr_of(b)} : "
                                   f"{expr_of(a)})")
            else:
                exprs[id(inst)] = f"{expr_of(arr)}[{sel}]"
        elif op == "array":
            exprs[id(inst)] = "'{" + ", ".join(
                expr_of(o) for o in inst.operands) + "}"
        elif op == "drv":
            target = expr_of(inst.drv_signal())
            value = expr_of(inst.drv_value())
            cond = inst.drv_condition()
            if cond is not None:
                value = f"({expr_of(cond)} ? {value} : {target})"
            body.write(f"  assign {target} = {value};\n")
        elif op == "reg":
            _export_reg(body, inst, expr_of)
        elif op == "inst":
            inst_count += 1
            callee = module.get(inst.callee)
            conns = []
            for arg, operand in zip(callee.args, inst.inst_inputs()
                                    + inst.inst_outputs()):
                conns.append(f".{arg.name}({expr_of(operand)})")
            body.write(f"  {inst.callee} i{inst_count} ("
                       + ", ".join(conns) + ");\n")
        elif op == "con":
            a, b = inst.operands
            body.write(f"  tran({expr_of(a)}, {expr_of(b)});\n")
        elif op == "del":
            body.write(f"  wire {_range(inst.type)}{names.of(inst)};\n")
            body.write(f"  assign {names.of(inst)} = "
                       f"{expr_of(inst.operands[0])};\n")
        else:
            raise VerilogExportError(
                f"@{entity.name}: cannot export '{op}'")
    out.write(body.getvalue())
    out.write("endmodule\n\n")


def _export_reg(body, inst, expr_of):
    signal = expr_of(inst.reg_signal())
    body.write(f"  reg {_range(inst.reg_signal().type)}{signal}_q;\n")
    body.write(f"  assign {signal} = {signal}_q;\n")
    for t in inst.reg_triggers():
        trigger = expr_of(t["trigger"])
        value = expr_of(t["value"])
        mode = t["mode"]
        if mode in ("rise", "fall"):
            edge = "posedge" if mode == "rise" else "negedge"
            body.write(f"  always @({edge} {trigger})")
        elif mode == "both":
            body.write(f"  always @({trigger})")
        else:  # level-sensitive latch
            level = trigger if mode == "high" else f"~{trigger}"
            body.write(f"  always @*")
        if mode in ("high", "low"):
            gate = trigger if mode == "high" else f"(~{trigger})"
            body.write(f" if ({gate})")
        if t["cond"] is not None:
            body.write(f" if ({expr_of(t['cond'])})")
        body.write(f" {signal}_q <= {value};\n")
