"""Toolflow integration (section 5): Verilog export, IR comparison data,
and a demonstration technology mapper to Netlist LLHD."""

from .comparison import COLUMNS, OTHER_IRS, full_table, llhd_row, render_table
from .techmap import TechmapError, netlist_design, technology_map
from .verilog import VerilogExportError, export_verilog

__all__ = [
    "COLUMNS", "OTHER_IRS", "TechmapError", "VerilogExportError",
    "export_verilog", "full_table", "llhd_row", "netlist_design",
    "render_table", "technology_map",
]
