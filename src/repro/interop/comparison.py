"""Table 3: comparison of hardware-targeted IRs.

The other IRs' rows are literature data transcribed from the paper; the
LLHD row is **introspected from this implementation** — each feature
probe checks that the corresponding capability actually exists in this
repository (so the row stays honest if the code changes).
"""

from __future__ import annotations

COLUMNS = [
    "No. of Levels",
    "Turing-Complete",
    "Verification",
    "9-Valued Logic",
    "4-Valued Logic",
    "Behavioral",
    "Structural",
    "Netlist",
]

# Literature rows (verbatim from Table 3 of the paper).
OTHER_IRS = {
    "FIRRTL": ["3†", False, False, False, False, False, True, True],
    "CoreIR": ["1", False, True, False, False, False, True, False],
    "µIR": ["1", False, False, False, False, False, True, False],
    "RTLIL": ["1", False, False, False, True, True, True, False],
    "LNAST": ["1", False, False, False, False, True, False, False],
    "LGraph": ["1", False, False, False, False, False, True, True],
    "netlistDB": ["1", False, False, False, False, False, True, True],
}


def _probe_levels():
    from ..ir.dialects import LEVELS

    return str(len(LEVELS))


def _probe_turing_complete():
    # Turing completeness requires unbounded memory + control flow: the
    # IR must provide heap allocation and loops (section 2.5.8).
    from ..ir.instructions import ALL_OPCODES

    return {"alloc", "free", "ld", "st", "br", "call"} <= ALL_OPCODES


def _probe_verification():
    from ..ir.verifier import INTRINSICS

    return "llhd.assert" in INTRINSICS


def _probe_nine_valued():
    from ..ir.ninevalued import VALUES

    return len(VALUES) == 9


def _probe_four_valued():
    # The 9-valued IEEE 1164 system subsumes IEEE 1364's {0,1,X,Z}.
    from ..ir.ninevalued import VALUES

    return all(v in VALUES for v in "01XZ")


def _probe_behavioural():
    from ..ir.units import Process

    return Process is not None


def _probe_structural():
    from ..ir.dialects import STRUCTURAL, allowed_opcodes

    return "reg" in allowed_opcodes(STRUCTURAL)


def _probe_netlist():
    from ..ir.dialects import NETLIST, allowed_opcodes

    return allowed_opcodes(NETLIST) == frozenset(
        {"sig", "con", "del", "inst", "const"})


def llhd_row():
    """The LLHD feature row, computed from this implementation."""
    return [
        _probe_levels(),
        _probe_turing_complete(),
        _probe_verification(),
        _probe_nine_valued(),
        _probe_four_valued(),
        _probe_behavioural(),
        _probe_structural(),
        _probe_netlist(),
    ]


def full_table():
    """All rows: LLHD (introspected) first, then the literature rows."""
    table = {"LLHD [us]": llhd_row()}
    table.update(OTHER_IRS)
    return table


def render_table():
    """Render Table 3 as aligned text (✓ / – cells, as in the paper)."""
    table = full_table()
    name_width = max(len(n) for n in table) + 2
    col_widths = [max(len(c), 6) for c in COLUMNS]
    lines = []
    header = "IR".ljust(name_width) + "  ".join(
        c.ljust(w) for c, w in zip(COLUMNS, col_widths))
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in table.items():
        cells = []
        for value, width in zip(row, col_widths):
            if isinstance(value, bool):
                cells.append(("✓" if value else "–").ljust(width))
            else:
                cells.append(str(value).ljust(width))
        lines.append(name.ljust(name_width) + "  ".join(cells))
    lines.append("† Mentioned conceptually but not defined precisely")
    return "\n".join(lines)
