"""A small demonstration technology mapper: Structural → Netlist LLHD.

The paper leaves synthesis to external tools ("due to its complexity,
synthesis is expected to remain the domain of tools outside the LLHD
project"), but defines the Netlist level: entities plus ``sig``/``con``/
``del``/``inst``.  This mapper demonstrates the level transition on the
subset it understands: it maps each data-flow operator of an entity onto
an instance of a gate-library cell (itself an entity), producing a valid
Netlist-LLHD module.  It exists to exercise the Netlist dialect and the
level verifier, not to be a logic synthesizer.
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.dialects import NETLIST, STRUCTURAL, level_violations
from ..ir.types import int_type, signal_type
from ..ir.units import Entity, Module
from ..ir.values import TimeValue


class TechmapError(Exception):
    """Raised when a construct has no gate-library mapping."""


# Operators realizable as generic library cells (one cell per op/width).
_MAPPABLE = {"add", "sub", "and", "or", "xor", "not", "eq", "neq", "mux"}


def technology_map(module, gate_delay="100ps"):
    """Map a Structural LLHD module into Netlist LLHD.

    Returns ``(netlist, library)``: the netlist module (cells appear as
    *declarations* — black boxes, as in a real flow where cell behaviour
    comes from a liberty file) and a separate library module holding
    behavioural cell models.  Linking the two (``link_modules``) yields a
    simulatable design.
    """
    issues = level_violations(module, STRUCTURAL)
    if issues:
        raise TechmapError("input is not Structural LLHD")
    out = Module(module.name + "_netlist")
    library_module = Module(module.name + "_cells")
    library = {"__module__": library_module, "__out__": out}
    for unit in module:
        _map_entity(unit, out, library, TimeValue.parse(gate_delay))
    remaining = level_violations(out, NETLIST)
    if remaining:
        raise TechmapError(
            "techmap produced invalid netlist:\n  " + "\n  ".join(remaining))
    return out, library_module


def _cell(out, library, opcode, width, delay, shift_amount=None):
    """Get or create the library cell for an operator/width.

    Shifts are parameterized by their (constant) amount as well — pure
    wiring in hardware, so each ``(op, width, amount)`` is its own cell.
    """
    from ..ir.units import UnitDecl

    key = (opcode, width) if shift_amount is None \
        else (opcode, width, shift_amount)
    name = library.get(key)
    if name is not None:
        return name
    name = f"cell_{opcode}_{width}" if shift_amount is None \
        else f"cell_{opcode}{shift_amount}_{width}"
    library[key] = name
    ty = signal_type(int_type(width))
    bit = signal_type(int_type(1))
    if opcode == "not" or shift_amount is not None:
        cell = Entity(name, [ty], ["a"], [ty], ["y"])
    elif opcode in ("eq", "neq"):
        cell = Entity(name, [ty, ty], ["a", "b"], [bit], ["y"])
    elif opcode == "mux":
        cell = Entity(name, [ty, ty, bit], ["a", "b", "s"], [ty], ["y"])
    else:
        cell = Entity(name, [ty, ty], ["a", "b"], [ty], ["y"])
    b = Builder.at_end(cell.body)
    ins = [b.prb(a) for a in cell.inputs]
    d = b.const_time(delay)
    if shift_amount is not None:
        amt = b.const_int(int_type(32), shift_amount)
        result = b.binary(opcode, ins[0], amt)
    elif opcode == "not":
        result = b.not_(ins[0])
    elif opcode == "mux":
        arr = b.array([ins[0], ins[1]])
        result = b.mux(arr, ins[2])
    elif opcode in ("eq", "neq"):
        result = b.compare(opcode, ins[0], ins[1])
    else:
        result = b.binary(opcode, ins[0], ins[1])
    b.drv(cell.outputs[0], result, d)
    library["__module__"].add(cell)
    out.declare(UnitDecl(
        name, "entity",
        [a.type for a in cell.inputs], [a.type for a in cell.outputs]))
    return name


def _map_entity(entity, out, library, delay):
    mapped = Entity(
        entity.name,
        [a.type for a in entity.inputs], [a.name for a in entity.inputs],
        [a.type for a in entity.outputs], [a.name for a in entity.outputs])
    builder = Builder.at_end(mapped.body)
    signal_of = {}  # id(old value) -> signal in the netlist
    for old, new in zip(entity.args, mapped.args):
        signal_of[id(old)] = new

    consts = {}

    def as_signal(value):
        """The netlist signal carrying ``value``."""
        sig = signal_of.get(id(value))
        if sig is None:
            raise TechmapError(
                f"@{entity.name}: no netlist signal for "
                f"%{value.name or '?'} ({value.opcode})")
        return sig

    for inst in entity.body:
        op = inst.opcode
        if op == "const":
            consts[id(inst)] = inst
        elif op == "sig":
            init = inst.operands[0]
            const = consts.get(id(init))
            if const is None:
                raise TechmapError("sig init must be constant")
            c = builder.insert(_clone_const(const))
            signal_of[id(inst)] = builder.sig(c, name=inst.name)
        elif op == "prb":
            signal_of[id(inst)] = as_signal(inst.operands[0])
        elif op == "drv":
            if inst.drv_condition() is not None:
                raise TechmapError("conditional drives need a mux first")
            src = signal_of.get(id(inst.drv_value()))
            if src is None:
                const = consts.get(id(inst.drv_value()))
                if const is None:
                    raise TechmapError("drive of unmapped value")
                c = builder.insert(_clone_const(const))
                src = builder.sig(c)
            builder.con(as_signal(inst.drv_signal()), src)
        elif op in _MAPPABLE:
            signal_of[id(inst)] = _map_op(
                builder, out, library, inst, signal_of, consts, delay,
                entity)
        elif op in ("shl", "shr"):
            signal_of[id(inst)] = _map_shift(
                builder, out, library, inst, signal_of, consts, delay,
                entity)
        elif op == "inst":
            inputs = [as_signal(o) for o in inst.inst_inputs()]
            outputs = [as_signal(o) for o in inst.inst_outputs()]
            builder.inst(inst.callee, inputs, outputs)
        elif op == "array":
            continue  # handled at the mux use
        else:
            raise TechmapError(
                f"@{entity.name}: no library mapping for '{op}'")
    out.add(mapped)


def _clone_const(const):
    from ..ir.instructions import Instruction

    return Instruction("const", const.type, (), dict(const.attrs),
                       const.name)


def _materialize(builder, value, signal_of, consts, entity):
    sig = signal_of.get(id(value))
    if sig is not None:
        return sig
    const = consts.get(id(value))
    if const is not None:
        c = builder.insert(_clone_const(const))
        return builder.sig(c)
    raise TechmapError(
        f"@{entity.name}: no netlist signal for %{value.name or '?'}")


def _map_op(builder, out, library, inst, signal_of, consts, delay, entity):
    width = inst.operands[0].type.width \
        if inst.operands[0].type.is_int else 1
    if inst.opcode == "mux":
        arr = inst.operands[0]
        if arr.opcode != "array" or arr.attrs.get("splat") \
                or len(arr.operands) != 2:
            raise TechmapError("only 2-way muxes map to the library")
        a = _materialize(builder, arr.operands[0], signal_of, consts,
                         entity)
        b_sig = _materialize(builder, arr.operands[1], signal_of, consts,
                             entity)
        sel = _materialize(builder, inst.operands[1], signal_of, consts,
                           entity)
        width = arr.operands[0].type.width
        cell = _cell(out, library, "mux", width, delay)
        result_ty = signal_type(arr.operands[0].type)
        operands_in = [a, b_sig, sel]
    elif inst.opcode == "not":
        a = _materialize(builder, inst.operands[0], signal_of, consts,
                         entity)
        cell = _cell(out, library, "not", width, delay)
        result_ty = a.type
        operands_in = [a]
    else:
        a = _materialize(builder, inst.operands[0], signal_of, consts,
                         entity)
        b_sig = _materialize(builder, inst.operands[1], signal_of, consts,
                             entity)
        cell = _cell(out, library, inst.opcode, width, delay)
        result_ty = signal_type(inst.type)
        operands_in = [a, b_sig]
    zero = builder.const_int(result_ty.element, 0)
    result = builder.sig(zero, name=inst.name)
    builder.inst(cell, operands_in, [result])
    return result


def _map_shift(builder, out, library, inst, signal_of, consts, delay,
               entity):
    """Map a shift by a constant amount: pure wiring, one cell per
    (op, width, amount)."""
    amount_const = consts.get(id(inst.operands[1]))
    if amount_const is None:
        raise TechmapError(
            f"@{entity.name}: '{inst.opcode}' by a non-constant amount "
            f"has no library mapping")
    width = inst.operands[0].type.width
    name = _cell(out, library, inst.opcode, width, delay,
                 shift_amount=amount_const.attrs["value"])
    a_sig = _materialize(builder, inst.operands[0], signal_of, consts,
                         entity)
    zero = builder.const_int(inst.type, 0)
    result = builder.sig(zero, name=inst.name)
    builder.inst(name, [a_sig], [result])
    return result
