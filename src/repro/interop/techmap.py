"""A small demonstration technology mapper: Structural → Netlist LLHD.

The paper leaves synthesis to external tools ("due to its complexity,
synthesis is expected to remain the domain of tools outside the LLHD
project"), but defines the Netlist level: entities plus ``sig``/``con``/
``del``/``inst``.  This mapper demonstrates the level transition on the
subset it understands: it maps each data-flow operator of an entity onto
an instance of a gate-library cell (itself an entity), producing a valid
Netlist-LLHD module.  It exists to exercise the Netlist dialect and the
level verifier, not to be a logic synthesizer.

The library is *typed*: every cell is keyed by its operator and operand
types, so two-valued (``iN``) and nine-valued (``lN``) operators map to
distinct cells — an ``lN`` AND cell computes the IEEE 1164 AND on the
packed planes, an ``lN`` adder degrades to all-``X`` on unknown inputs,
exactly like the behavioural entity it replaces.  Sequential storage
(``reg``) maps onto flip-flop/latch cells keyed by their trigger
signature (modes, conditions, delays) including write-port cells for
``reg`` on a projected sub-signal (the FIFO memory pattern), and signal
projections (``extf``/``exts`` used as probe sources) become read-port
wiring cells.  Drives preserve their delay: zero-delay drives become
``con`` net merges, delayed drives go through a ``del`` node.

With ``keep_behavioural=True`` the mapper accepts a module that still
contains behavioural processes (the testbench left behind by a
non-strict ``lower_to_structural`` run): entities are mapped, processes
are carried over verbatim, and only the entities are held to the level
contract.  :func:`netlist_design` wraps this into a one-call
"design to simulatable netlist" helper used by the staged
semantic-preservation harness and the benchmarks.
"""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.dialects import (
    NETLIST, STRUCTURAL, STRUCTURAL_OPCODES, level_violations,
)
from ..ir.instructions import Instruction
from ..ir.ninevalued import LogicVec
from ..ir.types import int_type, logic_type, signal_type
from ..ir.units import Entity, Module, UnitDecl
from ..ir.values import TimeValue

#: Bitwise nine-valued gates wider than this decompose pairwise: the
#: cell body instantiates a *pair* of half-width gate cells on the low
#: and high slices (a slice of the packed planes is the planes of the
#: slice, so the split is exact) instead of modelling one monolithic
#: ``lN`` operator per width.  Narrow widths stay monolithic; the halves
#: are shared across every wide width that reaches them.
#:
#: The trade-off is real: sharing shrinks the library (a few narrow
#: cells instead of one model per width — what a liberty file wants),
#: but every internal wiring net multiplies *events* when the netlist
#: is simulated — a hot ``l256`` gate costs ~14x more under the
#: event-driven kernels once composed.  ``technology_map`` therefore
#: takes ``pairwise_gates``: on by default for the library-oriented
#: mapping flow, switched off by :func:`netlist_design` (the
#: simulation-oriented wrapper the staged harness and the benchmarks
#: use).
PAIRWISE_FLOOR = 8

_LN_PAIRWISE = frozenset({"and", "or", "xor", "not"})


class TechmapError(Exception):
    """Raised when a construct has no gate-library mapping."""


# Operators realizable as generic library cells (one cell per op/types).
_BINARY_OPS = frozenset({
    "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem", "srem",
    "and", "or", "xor",
})
_COMPARE_OPS = frozenset({
    "eq", "neq", "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge",
})
_UNARY_OPS = frozenset({"not", "neg"})
_CAST_OPS = frozenset({"zext", "sext", "trunc"})
_MAPPABLE = _BINARY_OPS | _COMPARE_OPS | _UNARY_OPS | _CAST_OPS | {"mux"}


def _type_key(ty):
    """A compact, filename-safe spelling of a type for cell names."""
    return str(ty).replace(" ", "").replace("[", "a").replace("]", "") \
        .replace("{", "s").replace("}", "").replace(",", "_") \
        .replace("$", "")


def technology_map(module, gate_delay="100ps", keep_behavioural=False,
                   pairwise_gates=True):
    """Map a Structural LLHD module into Netlist LLHD.

    Returns ``(netlist, library)``: the netlist module (cells appear as
    *declarations* — black boxes, as in a real flow where cell behaviour
    comes from a liberty file) and a separate library module holding
    behavioural cell models.  Linking the two (``link_modules``) yields a
    simulatable design.

    With ``keep_behavioural`` the input module may still contain
    processes (e.g. the testbench after a non-strict lowering); they are
    moved into the netlist module unchanged, and the level contract is
    checked on the mapped entities only.
    """
    entities = [u for u in module if u.is_entity]
    rest = [u for u in module if not u.is_entity]
    if rest and not keep_behavioural:
        issues = level_violations(module, STRUCTURAL)
        raise TechmapError(
            "input is not Structural LLHD:\n  " + "\n  ".join(issues))
    for entity in entities:
        issues = [f"@{entity.name}: instruction '{i.opcode}' is not "
                  f"allowed in structural LLHD"
                  for i in entity.instructions()
                  if i.opcode not in _STRUCTURAL_OK]
        if issues:
            raise TechmapError(
                "input is not Structural LLHD:\n  " + "\n  ".join(issues))
    out = Module(module.name + "_netlist")
    library_module = Module(module.name + "_cells")
    library = {"__module__": library_module, "__out__": out,
               "__pairwise__": pairwise_gates}
    for unit in entities:
        _map_entity(unit, out, library, TimeValue.parse(gate_delay))
    # Check the level contract before consuming the input: on failure the
    # caller keeps an intact behavioural module to fall back to.
    remaining = level_violations(out, NETLIST)
    if remaining:
        raise TechmapError(
            "techmap produced invalid netlist:\n  " + "\n  ".join(remaining))
    for unit in rest:
        module.remove(unit.name)
        out.add(unit)
    return out, library_module


# The per-entity structural check reuses the dialect's own opcode set so
# the two can never drift apart.
_STRUCTURAL_OK = STRUCTURAL_OPCODES


def netlist_design(module, gate_delay="0s", name=None,
                   pairwise_gates=False):
    """Techmap ``module`` (lowered, testbench processes allowed) and link
    the netlist with its cell library into one simulatable module.

    The default zero gate delay keeps the netlist trace-identical to the
    structural module it was mapped from: every cell drive lands in the
    same femtosecond, only delta steps differ — which traces collapse.
    Pairwise-composed wide gates default *off* here: this is the
    simulation-oriented flow, and composed cells multiply events (see
    :data:`PAIRWISE_FLOOR`).  Consumes ``module`` (its processes move
    into the netlist).
    """
    from ..ir.linker import link_modules

    netlist, library = technology_map(
        module, gate_delay=gate_delay, keep_behavioural=True,
        pairwise_gates=pairwise_gates)
    return link_modules([netlist, library],
                        name=name or module.name + "_nl")


# -- cell construction ---------------------------------------------------------


def _declare(out, library, cell):
    library["__module__"].add(cell)
    out.declare(UnitDecl(
        cell.name, "entity",
        [a.type for a in cell.inputs], [a.type for a in cell.outputs]))
    return cell.name


def _cell(out, library, opcode, in_types, out_ty, delay, attrs=()):
    """Get or create the library cell computing ``opcode`` over values of
    ``in_types``, producing ``out_ty``; ``attrs`` folds static operands
    (shift amounts, slice offsets) into the cell identity."""
    key = (opcode, tuple(map(str, in_types)), str(out_ty), tuple(attrs))
    name = library.get(key)
    if name is not None:
        return name
    suffix = "".join(f"_{a}" for a in attrs)
    name = f"cell_{opcode}{suffix}_" + "_".join(
        _type_key(t) for t in in_types)
    if opcode in _CAST_OPS:  # same input, several output widths
        name += f"_to_{_type_key(out_ty)}"
    port_names = [f"a{i}" for i in range(len(in_types))]
    cell = Entity(name, [signal_type(t) for t in in_types], port_names,
                  [signal_type(out_ty)], ["y"])
    if opcode in _LN_PAIRWISE and out_ty.is_logic \
            and out_ty.width > PAIRWISE_FLOOR \
            and library.get("__pairwise__", True):
        _build_pairwise_gate(out, library, cell, opcode, out_ty, delay)
        library[key] = _declare(out, library, cell)
        return library[key]
    b = Builder.at_end(cell.body)
    ins = [b.prb(a) for a in cell.inputs]
    d = b.const_time(delay)
    if opcode in _BINARY_OPS:
        result = b.binary(opcode, ins[0], ins[1])
    elif opcode in _COMPARE_OPS:
        result = b.compare(opcode, ins[0], ins[1])
    elif opcode == "not":
        result = b.not_(ins[0])
    elif opcode == "neg":
        result = b.neg(ins[0])
    elif opcode in _CAST_OPS:
        result = getattr(b, opcode)(ins[0], out_ty)
    elif opcode == "mux":
        arr = b.array(ins[:-1])
        result = b.mux(arr, ins[-1])
    elif opcode == "buf":
        result = ins[0]
    elif opcode in ("shl", "shr"):
        if attrs:  # static shift: the amount is folded into the cell
            amt = b.const_int(int_type(32), attrs[0])
            result = b.binary(opcode, ins[0], amt)
        else:      # barrel shifter: the amount is a second input
            result = b.binary(opcode, ins[0], ins[1])
    elif opcode == "exts":
        result = b.exts(ins[0], attrs[0], attrs[1])
    elif opcode == "extf":
        if attrs:
            result = b.extf(ins[0], attrs[0])
        else:
            result = b.extf(ins[0], ins[1])
    elif opcode == "inss":
        result = b.inss(ins[0], ins[1], attrs[0], attrs[1])
    elif opcode == "insf":
        if attrs:
            result = b.insf(ins[0], ins[1], attrs[0])
        else:
            result = b.insf(ins[0], ins[1], ins[2])
    else:
        raise TechmapError(f"no cell recipe for '{opcode}'")
    b.drv(cell.outputs[0], result, d)
    library[key] = _declare(out, library, cell)
    return library[key]


def _build_pairwise_gate(out, library, cell, opcode, out_ty, delay):
    """Fill a wide ``lN`` gate cell with a pair of half-width gate cell
    instances over the low/high slices of every operand.

    The halves recurse down to :data:`PAIRWISE_FLOOR`-wide monolithic
    gates, so all wide bitwise gates share one small set of narrow cells
    instead of the library growing a distinct model per width.  The
    internal wiring drives are zero-delay; the gate delay lives in the
    leaf cells.
    """
    width = out_ty.width
    lo_w = width // 2
    hi_w = width - lo_w
    halves = [
        _cell(out, library, opcode,
              [logic_type(w)] * len(cell.inputs), logic_type(w), delay)
        for w in (lo_w, hi_w)]
    b = Builder.at_end(cell.body)
    ins = [b.prb(a) for a in cell.inputs]
    zero = b.const_time(TimeValue(0))
    results = []
    for (half, w, off) in zip(halves, (lo_w, hi_w), (0, lo_w)):
        part_sigs = []
        for value in ins:
            part = b.exts(value, off, w)
            net = b.sig(b.const_logic(LogicVec.from_int(0, w)))
            b.drv(net, part, zero)
            part_sigs.append(net)
        result = b.sig(b.const_logic(LogicVec.from_int(0, w)))
        b.inst(half, part_sigs, [result])
        results.append(b.prb(result))
    whole = b.const_logic(LogicVec.from_int(0, width))
    whole = b.inss(whole, results[0], 0, lo_w)
    whole = b.inss(whole, results[1], lo_w, hi_w)
    b.drv(cell.outputs[0], whole, zero)


def _projection_steps(value):
    """Walk extf/exts projections back to a root signal.

    Returns ``(root, steps)`` where each step is
    ``("field", index_value_or_int)`` or ``("slice", offset, length)``,
    outermost last; root is the underlying signal value or None.
    """
    steps = []
    while isinstance(value, Instruction) and value.opcode in ("extf",
                                                              "exts"):
        if value.opcode == "extf":
            index = value.attrs.get("index")
            steps.append(("field", index if index is not None
                          else value.operands[1]))
        else:
            steps.append(("slice", value.attrs["offset"],
                          value.attrs["length"]))
        value = value.operands[0]
    if value.type.is_signal:
        return value, list(reversed(steps))
    return None, None


def _steps_signature(steps):
    """The static part of a projection chain, for cell keys; dynamic
    indices are marked and become extra cell inputs."""
    out = []
    for step in steps:
        if step[0] == "field" and not isinstance(step[1], int):
            out.append("fdyn")
        elif step[0] == "field":
            out.append(f"f{step[1]}")
        else:
            out.append(f"s{step[1]}x{step[2]}")
    return tuple(out)


def _rebuild_projection(b, root_arg, steps, index_ports):
    """Re-create a projection chain inside a cell body."""
    target = root_arg
    it = iter(index_ports)
    for step in steps:
        if step[0] == "field":
            if isinstance(step[1], int):
                target = b.extf(target, step[1])
            else:
                target = b.extf(target, b.prb(next(it)))
        else:
            target = b.exts(target, step[1], step[2])
    return target


def _reg_cell(out, library, inst, root_ty, steps, index_types):
    """The storage cell for one ``reg``: flip-flop, latch, or memory
    write port, keyed by target shape and full trigger signature.

    Storage cells take no gate delay: the reg's own per-trigger
    ``after`` delay is the cell's clock-to-output time, preserved
    verbatim in the cell body."""
    triggers = list(inst.reg_triggers())
    signature = []
    data_types = []
    trig_types = []
    cond_count = 0
    for t in triggers:
        has_cond = t["cond"] is not None
        d = t["delay"]
        d_txt = str(d.attrs["value"]) if d is not None else "eps"
        signature.append((t["mode"], has_cond, d_txt))
        data_types.append(t["value"].type)
        trig_types.append(t["trigger"].type)
        cond_count += int(has_cond)
    key = ("reg", str(root_ty), _steps_signature(steps),
           tuple(map(str, index_types)),
           tuple((m, c, d) for m, c, d in signature),
           tuple(map(str, data_types)), tuple(map(str, trig_types)))
    name = library.get(key)
    if name is not None:
        return name
    n = len(library)
    kind = "writeport" if steps else "dff"
    name = f"cell_{kind}{n}_{_type_key(root_ty)}"
    in_types, in_names = [], []
    for i, ty in enumerate(index_types):
        in_types.append(signal_type(ty))
        in_names.append(f"i{i}")
    for i, (dty, tty) in enumerate(zip(data_types, trig_types)):
        in_types.append(signal_type(dty))
        in_names.append(f"d{i}")
        in_types.append(signal_type(tty))
        in_names.append(f"t{i}")
        if signature[i][1]:
            in_types.append(signal_type(int_type(1)))
            in_names.append(f"c{i}")
    cell = Entity(name, in_types, in_names,
                  [signal_type(root_ty)], ["q"])
    b = Builder.at_end(cell.body)
    args = list(cell.inputs)
    index_ports = args[:len(index_types)]
    rest = args[len(index_types):]
    target = _rebuild_projection(b, cell.outputs[0], steps, index_ports)
    built = []
    pos = 0
    for i, t in enumerate(triggers):
        data = b.prb(rest[pos]); pos += 1
        trig = b.prb(rest[pos]); pos += 1
        cond = None
        if signature[i][1]:
            cond = b.prb(rest[pos]); pos += 1
        d = t["delay"]
        d_value = b.const_time(d.attrs["value"]) if d is not None else None
        built.append((t["mode"], data, trig, cond, d_value))
    b.reg(target, built)
    library[key] = _declare(out, library, cell)
    return library[key]


# -- entity mapping ------------------------------------------------------------


def _map_entity(entity, out, library, delay):
    mapped = Entity(
        entity.name,
        [a.type for a in entity.inputs], [a.name for a in entity.inputs],
        [a.type for a in entity.outputs], [a.name for a in entity.outputs])
    builder = Builder.at_end(mapped.body)
    signal_of = {}  # id(old value) -> signal in the netlist
    for old, new in zip(entity.args, mapped.args):
        signal_of[id(old)] = new

    consts = {}       # id(inst) -> const instruction (lazily cloned)
    aggregates = {}   # id(inst) -> array/struct constant tree

    ctx = _MapContext(entity, mapped, builder, out, library, delay,
                      signal_of, consts, aggregates)

    for inst in entity.body:
        op = inst.opcode
        if op == "const":
            consts[id(inst)] = inst
        elif op in ("array", "struct"):
            aggregates[id(inst)] = inst
        elif op == "sig":
            init = ctx.clone_const_tree(inst.operands[0])
            sig = builder.sig(init, name=inst.name)
            signal_of[id(inst)] = sig
            ctx._sig_inits[id(sig)] = init
        elif op == "prb":
            signal_of[id(inst)] = ctx.source_signal(inst.operands[0])
        elif op in ("extf", "exts"):
            continue  # materialized lazily, at the probing/driving use
        elif op == "drv":
            ctx.map_drive(inst)
        elif op == "reg":
            ctx.map_reg(inst)
        elif op == "con":
            builder.con(ctx.as_signal(inst.operands[0]),
                        ctx.as_signal(inst.operands[1]))
        elif op == "del":
            signal_of[id(inst)] = builder.delayed(
                ctx.as_signal(inst.operands[0]),
                ctx.materialize_time(inst.operands[1]))
        elif op == "mux":
            signal_of[id(inst)] = ctx.map_mux(inst)
        elif op in ("inss", "insf"):
            signal_of[id(inst)] = ctx.map_insert(inst)
        elif op in ("shl", "shr"):
            signal_of[id(inst)] = ctx.map_shift(inst)
        elif op in _MAPPABLE:
            signal_of[id(inst)] = ctx.map_op(inst)
        elif op == "inst":
            inputs = [ctx.as_signal(o) for o in inst.inst_inputs()]
            outputs = [ctx.as_signal(o) for o in inst.inst_outputs()]
            builder.inst(inst.callee, inputs, outputs)
        else:
            raise TechmapError(
                f"@{entity.name}: no library mapping for '{op}'")
    out.add(mapped)


class _MapContext:
    """Per-entity mapping state and helpers."""

    def __init__(self, entity, mapped, builder, out, library, delay,
                 signal_of, consts, aggregates):
        self.entity = entity
        self.mapped = mapped
        self.builder = builder
        self.out = out
        self.library = library
        self.delay = delay
        self.signal_of = signal_of
        self.consts = consts
        self.aggregates = aggregates
        self._sig_inits = {}  # id(netlist sig) -> its init instruction
        self._owned = set()   # ids of result nets this mapper created
        self._reseeded = set()  # owned nets already given a target init

    # -- values -> netlist signals ----------------------------------------

    def as_signal(self, value):
        sig = self.signal_of.get(id(value))
        if sig is None:
            raise TechmapError(
                f"@{self.entity.name}: no netlist signal for "
                f"%{value.name or '?'} ({value.opcode})")
        return sig

    def materialize(self, value):
        """The netlist signal carrying ``value``, creating constant nets
        and projection read ports on demand."""
        sig = self.signal_of.get(id(value))
        if sig is not None:
            return sig
        # A constant drive becomes a constant net (a tie rail): its init
        # IS its value, so it is deliberately not registered in _owned —
        # map_drive must never reseed it from the target's initial (it
        # buffers instead when the initials disagree).
        const = self.consts.get(id(value)) or self.aggregates.get(id(value))
        if const is not None:
            init = self.clone_const_tree(const)
            sig = self.builder.sig(init)
            self.signal_of[id(value)] = sig
            self._sig_inits[id(sig)] = init
            return sig
        if isinstance(value, Instruction) and value.opcode in ("extf",
                                                               "exts"):
            if value.operands[0].type.is_signal:
                sig = self.project_source(value)
            else:
                sig = self.value_projection(value)
            self.signal_of[id(value)] = sig
            return sig
        raise TechmapError(
            f"@{self.entity.name}: no netlist signal for "
            f"%{value.name or '?'}")

    def value_projection(self, value):
        """A wiring cell for extf/exts applied to a plain value: a bit
        slice or element select of a bus, pure wiring in hardware."""
        op = value.opcode
        operands = [value.operands[0]]
        if op == "exts":
            attrs = (value.attrs["offset"], value.attrs["length"])
        else:
            index = value.attrs.get("index")
            if index is None:
                operands.append(value.operands[1])
                attrs = ()
            else:
                attrs = (index,)
        sigs = [self.materialize(o) for o in operands]
        cell = _cell(self.out, self.library, op,
                     [o.type for o in operands], value.type, self.delay,
                     attrs=attrs)
        return self._instantiate(cell, sigs, value)

    def materialize_time(self, value):
        const = self.consts.get(id(value))
        if const is None:
            raise TechmapError("del delay must be constant")
        return self.builder.insert(_clone_const(const))

    def clone_const_tree(self, value, builder=None):
        """Clone a constant (possibly an array/struct tree) into the
        mapped entity; ``sig`` initializers are such trees."""
        b = builder if builder is not None else self.builder
        if isinstance(value, Instruction) and value.opcode == "const":
            return b.insert(_clone_const(value))
        if isinstance(value, Instruction) and value.opcode == "array":
            if value.attrs.get("splat"):
                element = self.clone_const_tree(value.operands[0], b)
                return b.array_splat(value.type.length, element)
            return b.array(
                [self.clone_const_tree(o, b) for o in value.operands])
        if isinstance(value, Instruction) and value.opcode == "struct":
            return b.struct(
                [self.clone_const_tree(o, b) for o in value.operands])
        raise TechmapError("sig init must be constant")

    # -- signal projections -----------------------------------------------

    def source_signal(self, value):
        """The net behind a probed value: a plain signal, or a read-port
        cell output for a projected signal."""
        if self.signal_of.get(id(value)) is not None:
            return self.signal_of[id(value)]
        if isinstance(value, Instruction) and value.opcode in ("extf",
                                                               "exts"):
            sig = self.project_source(value)
            self.signal_of[id(value)] = sig
            return sig
        return self.as_signal(value)

    def project_source(self, value):
        """A read-port wiring cell for an extf/exts used as a source."""
        root, steps = _projection_steps(value)
        if root is None:
            raise TechmapError(
                f"@{self.entity.name}: projection of a non-signal "
                f"value has no wiring cell")
        root_sig = self.as_signal(root)
        elem = value.type.element
        index_values = [s[1] for s in steps
                        if s[0] == "field" and not isinstance(s[1], int)]
        index_sigs = [self.materialize(v) for v in index_values]
        name = self._readport_cell(root.type.element, elem, steps,
                                   [v.type for v in index_values])
        init = _default_const(self.builder, elem)
        result = self.builder.sig(init, name=value.name)
        self._owned.add(id(result))
        self._sig_inits[id(result)] = init
        self.builder.inst(name, [root_sig] + index_sigs, [result])
        return result

    def _readport_cell(self, root_ty, elem_ty, steps, index_types):
        key = ("readport", str(root_ty), _steps_signature(steps),
               tuple(map(str, index_types)))
        name = self.library.get(key)
        if name is not None:
            return name
        n = len(self.library)
        name = f"cell_readport{n}_{_type_key(root_ty)}"
        in_types = [signal_type(root_ty)] + \
            [signal_type(t) for t in index_types]
        in_names = ["m"] + [f"i{j}" for j in range(len(index_types))]
        cell = Entity(name, in_types, in_names,
                      [signal_type(elem_ty)], ["y"])
        b = Builder.at_end(cell.body)
        proj = _rebuild_projection(b, cell.inputs[0], steps,
                                   cell.inputs[1:])
        value = b.prb(proj)
        b.drv(cell.outputs[0], value, b.const_time(self.delay))
        self.library[key] = _declare(self.out, self.library, cell)
        return self.library[key]

    # -- instruction mappers ----------------------------------------------

    def map_op(self, inst):
        op = inst.opcode
        if op in _UNARY_OPS or op in _CAST_OPS:
            operands = [inst.operands[0]]
        else:
            operands = list(inst.operands[:2])
        sigs = [self.materialize(o) for o in operands]
        cell = _cell(self.out, self.library, op,
                     [o.type for o in operands], inst.type, self.delay)
        return self._instantiate(cell, sigs, inst)

    def map_mux(self, inst):
        arr = inst.operands[0]
        if not isinstance(arr, Instruction) or arr.opcode != "array" \
                or arr.attrs.get("splat"):
            raise TechmapError(
                "mux choices must be an explicit array to map")
        choices = list(arr.operands)
        sel = inst.operands[1]
        sigs = [self.materialize(c) for c in choices] \
            + [self.materialize(sel)]
        # Typed N-way mux cell: one cell per (way count, choice/selector
        # types); a 2-way mux keeps its classic shape, wider selections
        # map to a single N-way cell instead of a 2-way tower.
        cell = _cell(self.out, self.library, "mux",
                     [c.type for c in choices] + [sel.type], inst.type,
                     self.delay)
        return self._instantiate(cell, sigs, inst)

    def map_insert(self, inst):
        """Slice/element insertion (``inss``/``insf``) as a wiring cell:
        the mux-insertion pass uses these to turn partial drives into
        whole-signal drives, and in hardware they are pure wiring."""
        op = inst.opcode
        operands = [inst.operands[0], inst.operands[1]]
        if op == "inss":
            attrs = (inst.attrs["offset"], inst.attrs["length"])
        else:
            index = inst.attrs.get("index")
            if index is None:
                operands.append(inst.operands[2])
                attrs = ()
            else:
                attrs = (index,)
        sigs = [self.materialize(o) for o in operands]
        cell = _cell(self.out, self.library, op,
                     [o.type for o in operands], inst.type, self.delay,
                     attrs=attrs)
        return self._instantiate(cell, sigs, inst)

    def map_shift(self, inst):
        amount_const = self.consts.get(id(inst.operands[1]))
        if amount_const is None:
            # Barrel shifter: a two-input cell keyed by value and amount
            # types, like any other binary operator.
            value, amount = inst.operands[:2]
            sigs = [self.materialize(value), self.materialize(amount)]
            cell = _cell(self.out, self.library, inst.opcode,
                         [value.type, amount.type], inst.type, self.delay)
            return self._instantiate(cell, sigs, inst)
        amount = amount_const.attrs["value"]
        if isinstance(amount, LogicVec):
            if not amount.is_two_valued:
                raise TechmapError(
                    f"@{self.entity.name}: '{inst.opcode}' by an unknown "
                    f"amount has no library mapping")
            amount = amount.to_int()
        cell = _cell(self.out, self.library, inst.opcode,
                     [inst.operands[0].type], inst.type, self.delay,
                     attrs=(amount,))
        a_sig = self.materialize(inst.operands[0])
        return self._instantiate(cell, [a_sig], inst)

    def _instantiate(self, cell, input_sigs, inst):
        init = _default_const(self.builder, inst.type)
        result = self.builder.sig(init, name=inst.name)
        self._owned.add(id(result))
        self._sig_inits[id(result)] = init
        self.builder.inst(cell, input_sigs, [result])
        return result

    # -- drives and storage -----------------------------------------------

    def map_drive(self, inst):
        if inst.drv_condition() is not None:
            raise TechmapError("conditional drives need a mux first")
        src = self.materialize(inst.drv_value())
        target = self.target_signal(inst.drv_signal())
        src = self._adapt_initial(src, target)
        delay_const = self.consts.get(id(inst.drv_delay()))
        delay = delay_const.attrs["value"] if delay_const is not None \
            else None
        if delay is not None and delay != TimeValue(0):
            src = self.builder.delayed(
                src, self.builder.insert(_clone_const(delay_const)))
        self.builder.con(target, src)

    def _adapt_initial(self, src, target):
        """Make ``src``'s initial agree with the driven target's before
        the ``con`` below merges the two nets.

        The merged net must start where the behavioural target started —
        the cell driving ``src`` takes over from the first delta on, but
        `connect` rejects conflicting two-valued initials outright (e.g.
        a target register net initialized to a nonzero value).  A result
        net this mapper created is reseeded in place the first time; on
        any later conflict (a second target with a different initial, a
        constant tie rail, a probed design net) the drive is routed
        through a buffer cell whose output net carries the target's
        initial.  A target bound to an entity argument keeps the default
        (its initial lives at the instantiation site and is unknowable
        here).  Returns the net to connect.
        """
        t_init = self._sig_inits.get(id(target))
        if t_init is None:
            return src
        s_init = self._sig_inits.get(id(src))
        if s_init is None:
            # An argument-bound net: its initial is the call site's.
            return src
        if _const_tree_value(s_init) == _const_tree_value(t_init):
            return src
        if id(src) in self._owned and id(src) not in self._reseeded:
            fresh = self.clone_const_tree(t_init, Builder.before(src))
            src.set_operand(0, fresh)
            self._reseeded.add(id(src))
            self._sig_inits[id(src)] = fresh
            return src
        elem = target.type.element
        cell = _cell(self.out, self.library, "buf", [elem], elem,
                     self.delay)
        init = self.clone_const_tree(t_init)
        # Name the alias net after the target it re-initializes: lint
        # locations stay readable after the drv -> con rewrite (the extra
        # hierarchy dot keeps the target's own name the preferred label).
        result = self.builder.sig(
            init, name=f"{target.name}.buf" if target.name else None)
        self._owned.add(id(result))
        self._reseeded.add(id(result))
        self._sig_inits[id(result)] = init
        self.builder.inst(cell, [src], [result])
        return result

    def target_signal(self, value):
        """The net a drv/reg writes: plain signals only — projected
        targets are handled by write-port reg cells, and a projected drv
        target would need one too."""
        sig = self.signal_of.get(id(value))
        if sig is None:
            raise TechmapError(
                f"@{self.entity.name}: drive of a projected target "
                f"has no library mapping")
        return sig

    def map_reg(self, inst):
        target = inst.reg_signal()
        root, steps = _projection_steps(target)
        if root is None:
            raise TechmapError(
                f"@{self.entity.name}: reg target is not a signal")
        root_sig = self.as_signal(root)
        index_values = [s[1] for s in steps
                        if s[0] == "field" and not isinstance(s[1], int)]
        name = _reg_cell(self.out, self.library, inst,
                         root.type.element, steps,
                         [v.type for v in index_values])
        inputs = [self.materialize(v) for v in index_values]
        for t in inst.reg_triggers():
            inputs.append(self.materialize(t["value"]))
            inputs.append(self.materialize(t["trigger"]))
            if t["cond"] is not None:
                inputs.append(self.materialize(t["cond"]))
        self.builder.inst(name, inputs, [root_sig])


# -- pure cell evaluation forms ------------------------------------------------
#
# The levelized netlist engine (repro.sim.levelize) compiles the whole
# combinational cone into straight-line code.  For that it needs each
# library cell reduced to a *pure evaluation form*: a guarantee that the
# cell body is a side-effect-free function of its input ports (comb
# cells), or exactly one ``reg`` storage element behind a static
# projection (sequential cells).  The forms are recovered from the cell
# entity itself, so any entity shaped like a library cell qualifies —
# the classifier does not depend on mapper-private state.

#: Side-effect-free opcodes allowed in a combinational cell body.
_PURE_CELL_OPS = frozenset({
    "const", "add", "sub", "mul", "udiv", "sdiv", "umod", "smod", "urem",
    "srem", "and", "or", "xor", "not", "neg", "shl", "shr", "eq", "neq",
    "ult", "ugt", "ule", "uge", "slt", "sgt", "sle", "sge", "zext", "sext",
    "trunc", "array", "struct", "mux", "inss", "insf", "extf", "exts",
})


class CombCellForm:
    """A combinational cell: pure ops from input probes to one drive.

    ``delay`` is the cell's propagation delay (the drive's constant
    delay).  The body itself (``unit.body``) is the evaluation recipe;
    consumers walk it knowing every instruction is either a probe of an
    input port (possibly through a static/dynamic projection), a pure
    op, the delay constant, or the single output drive.
    """

    kind = "comb"
    __slots__ = ("unit", "delay")

    def __init__(self, unit, delay):
        self.unit = unit
        self.delay = delay


class SeqCellForm:
    """A sequential cell: one ``reg`` behind a projection of the output.

    * ``steps`` — projection path from the output port to the storage
      target: ``("field", int)``, ``("fielddyn", arg_pos)`` for a
      dynamic index read from input port ``arg_pos``, or
      ``("slice", offset, length)``;
    * ``triggers`` — per-trigger tuples ``(mode, data_pos, trigger_pos,
      cond_pos_or_None, delay_or_None)`` where positions index
      ``unit.args`` and ``delay`` is the trigger's constant ``after``
      time (``None`` meaning the implicit epsilon step).
    """

    kind = "seq"
    __slots__ = ("unit", "steps", "triggers")

    def __init__(self, unit, steps, triggers):
        self.unit = unit
        self.steps = tuple(steps)
        self.triggers = tuple(triggers)


def cell_eval_form(unit):
    """Classify an entity as a library cell; None when it is not one.

    Returns a :class:`CombCellForm` for bodies that are a pure function
    of the inputs feeding exactly one unconditional constant-delay drive
    of the sole output, a :class:`SeqCellForm` for bodies that are
    exactly one ``reg`` on (a projection of) the sole output, and
    ``None`` for anything else — hierarchical cells, mixed bodies, and
    ordinary structural entities all fall out here.
    """
    if not getattr(unit, "is_entity", False):
        return None
    if len(unit.outputs) != 1:
        return None
    body = list(unit.body)
    has_reg = any(i.opcode == "reg" for i in body)
    if has_reg:
        return _seq_cell_form(unit, body)
    return _comb_cell_form(unit, body)


def _prb_arg_pos(inst, arg_pos):
    """The input-port position a ``prb`` reads, or None."""
    if inst is None or inst.opcode != "prb":
        return None
    return arg_pos.get(id(inst.operands[0]))


def _comb_cell_form(unit, body):
    arg_pos = {id(a): i for i, a in enumerate(unit.args)}
    inputs = {id(a) for a in unit.inputs}
    out_arg = unit.outputs[0]
    drive = None
    for inst in body:
        op = inst.opcode
        if op == "drv":
            if drive is not None or inst.drv_condition() is not None:
                return None
            if inst.drv_signal() is not out_arg:
                return None
            delay_op = inst.drv_delay()
            if getattr(delay_op, "opcode", None) != "const":
                return None
            drive = inst
        elif op == "prb":
            src = inst.operands[0]
            if id(src) in inputs:
                continue
            # A projected input port (read-port wiring cells): the
            # chain must bottom out at an input, with dynamic indices
            # probed from input ports.
            root, steps = _projection_steps(src)
            if root is None or id(root) not in inputs:
                return None
            for step in steps:
                if step[0] == "field" and not isinstance(step[1], int) \
                        and _prb_arg_pos(step[1], arg_pos) is None:
                    return None
        elif op in ("extf", "exts") and inst.type.is_signal:
            continue  # part of an input projection chain, handled at prb
        elif op in _PURE_CELL_OPS:
            continue
        else:
            return None
    if drive is None:
        return None
    return CombCellForm(unit, drive.drv_delay().attrs["value"])


def _seq_cell_form(unit, body):
    arg_pos = {id(a): i for i, a in enumerate(unit.args)}
    inputs = {id(a) for a in unit.inputs}
    out_arg = unit.outputs[0]
    reg = None
    for inst in body:
        op = inst.opcode
        if op == "reg":
            if reg is not None:
                return None
            reg = inst
        elif op == "prb":
            if id(inst.operands[0]) not in inputs:
                return None
        elif op in ("extf", "exts") and inst.type.is_signal:
            continue  # the storage projection chain, validated below
        elif op == "const":
            continue  # trigger delays
        else:
            return None
    if reg is None:
        return None
    root, steps = _projection_steps(reg.reg_signal())
    if root is not out_arg:
        return None
    form_steps = []
    for step in steps:
        if step[0] == "slice":
            form_steps.append(step)
        elif isinstance(step[1], int):
            form_steps.append(("field", step[1]))
        else:
            pos = _prb_arg_pos(step[1], arg_pos)
            if pos is None or id(unit.args[pos]) not in inputs:
                return None
            form_steps.append(("fielddyn", pos))
    triggers = []
    for t in reg.reg_triggers():
        data_pos = _prb_arg_pos(t["value"], arg_pos)
        trig_pos = _prb_arg_pos(t["trigger"], arg_pos)
        if data_pos is None or trig_pos is None:
            return None
        cond_pos = None
        if t["cond"] is not None:
            cond_pos = _prb_arg_pos(t["cond"], arg_pos)
            if cond_pos is None:
                return None
        delay = None
        if t["delay"] is not None:
            if getattr(t["delay"], "opcode", None) != "const":
                return None
            delay = t["delay"].attrs["value"]
        triggers.append((t["mode"], data_pos, trig_pos, cond_pos, delay))
    return SeqCellForm(unit, form_steps, triggers)


def _default_const(builder, ty):
    if ty.is_logic:
        return builder.const_logic(LogicVec.from_int(0, ty.width))
    if ty.is_int or ty.is_enum:
        return builder.const_int(ty, 0)
    if ty.is_array:
        return builder.array_splat(
            ty.length, _default_const(builder, ty.element))
    if ty.is_struct:
        return builder.struct(
            [_default_const(builder, f) for f in ty.fields])
    raise TechmapError(f"no default constant for {ty}")


def _const_tree_value(inst):
    """The runtime value of a constant (possibly aggregate) tree, used
    to compare signal initials structurally."""
    if inst.opcode == "const":
        return inst.attrs["value"]
    if inst.opcode == "array" and inst.attrs.get("splat"):
        return (_const_tree_value(inst.operands[0]),) * inst.type.length
    return tuple(_const_tree_value(op) for op in inst.operands)


def _clone_const(const):
    return Instruction("const", const.type, (), dict(const.attrs),
                       const.name)
