"""``python -m repro.opt`` — the paper's ``llhd-opt`` tool.

Parses ``.llhd`` files, runs a pipeline of registered passes over them,
and prints the resulting IR::

    python -m repro.opt examples/acc.llhd -p lower -stats
    python -m repro.opt design.llhd -p "inline,fixpoint(cf,instsimplify,cse,dce)"
    python -m repro.opt --list-passes

The ``-p`` spec accepts registered pass names, named pipelines
(``cleanup``, ``prepare``, ``lower``), and ``fixpoint(...)`` groups —
see :mod:`repro.passes.manager`.  ``-stats`` prints a per-pass table of
run counts, changed flags, wall time, and pass-specific counters, plus
the analysis-cache hit rate.
"""

from __future__ import annotations

import argparse
import sys

from .ir import ParseError, parse_module, print_module, verify_module
from .ir.verifier import VerificationError
from .passes import (  # noqa: F401 — importing registers all passes
    PASS_REGISTRY, PIPELINES, InlineError, PassError, PassManager,
)
from .passes.manager import parse_pipeline
from .passes.pipeline import LoweringRejection


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.opt",
        description="Run LLHD passes over .llhd files (the paper's "
                    "llhd-opt).")
    parser.add_argument(
        "files", nargs="*", metavar="FILE",
        help=".llhd input files ('-' reads stdin)")
    parser.add_argument(
        "-p", "--pipeline", default="lower", metavar="SPEC",
        help="pipeline spec: pass names, named pipelines, and "
             "fixpoint(...) groups (default: lower)")
    parser.add_argument(
        "-stats", "--stats", action="store_true", dest="stats",
        help="print per-pass timing/changed statistics")
    parser.add_argument(
        "--verify-each", action="store_true",
        help="verify the IR after every pass")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the initial verification of parsed input")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="do not print the resulting IR")
    parser.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the resulting IR to FILE instead of stdout")
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list registered passes and named pipelines, then exit")
    return parser


def _list_passes(out):
    out.write("registered passes:\n")
    for name in sorted(PASS_REGISTRY):
        cls = PASS_REGISTRY[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        out.write(f"  {name:<18} [{cls.scope:>6}]  {summary}\n")
    out.write("named pipelines:\n")
    for name in sorted(PIPELINES):
        out.write(f"  {name:<18} = {PIPELINES[name]}\n")


def _read(path):
    if path == "-":
        return "<stdin>", sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return path, handle.read()


def _run_one(path, args, out, err):
    try:
        name, text = _read(path)
    except OSError as error:
        err.write(f"{path}: cannot read: {error}\n")
        return 1
    try:
        module = parse_module(text, name=name)
    except ParseError as error:
        err.write(f"{name}: parse error: {error}\n")
        return 1
    if not args.no_verify:
        try:
            verify_module(module)
        except VerificationError as error:
            err.write(f"{name}: input does not verify: {error}\n")
            return 1

    pm = PassManager(verify_each=args.verify_each)
    try:
        pm.run_spec(args.pipeline, module)
    except LoweringRejection as error:
        err.write(f"{name}: lowering rejected: {error}\n")
        return 1
    except InlineError as error:
        err.write(f"{name}: cannot inline: {error}\n")
        return 1
    except PassError as error:
        err.write(f"{name}: pass pipeline failed: {error}\n")
        return 1
    except VerificationError as error:
        err.write(f"{name}: verification failed between passes: {error}\n")
        return 1

    if not args.quiet:
        text = print_module(module)
        out.write(text)
        if not text.endswith("\n"):
            out.write("\n")

    # Rejections recorded by the non-strict `lower` pass are reported but
    # are not an error: partially-synthesizable input is legal llhd-opt
    # usage (testbench processes stay behavioural).
    lower = pm.instance("lower")
    report = getattr(lower, "report", None)
    if report is not None and report.rejected:
        err.write(f"{name}: {len(report.rejected)} process(es) not "
                  f"lowered:\n")
        for proc_name, reason in report.rejected:
            err.write(f"  @{proc_name}: {reason}\n")

    if args.stats:
        err.write(f"=== {name}: pass statistics ===\n")
        err.write(pm.statistics_table())
        err.write("\n")
    return 0


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    out, err = sys.stdout, sys.stderr

    if args.list_passes:
        _list_passes(out)
        return 0
    if not args.files:
        parser.error("no input files (try --list-passes)")

    try:
        parse_pipeline(args.pipeline)
    except PassError as error:
        err.write(f"bad pipeline spec: {error}\n")
        return 2

    status = 0
    out_handle = out
    opened = None
    if args.output:
        opened = open(args.output, "w", encoding="utf-8")
        out_handle = opened
    try:
        for path in args.files:
            status |= _run_one(path, args, out_handle, err)
    finally:
        if opened is not None:
            opened.close()
    return status


if __name__ == "__main__":
    sys.exit(main())
