"""Temporal region (TR) analysis (section 4.3.1 of the paper).

``wait`` instructions subdivide a process into *temporal regions*: sets of
basic blocks that execute during one fixed instant of physical time.  Two
``prb``s of the same signal inside one TR observe the same value; across a
``wait`` boundary they may not.  TRs are the bounds within which ``prb`` and
``drv`` may be rearranged without changing behaviour.

TR assignment rules (verbatim from the paper):

1. If any predecessor has a ``wait`` terminator, or this is the entry
   block, generate a new TR.
2. If all predecessors have the same TR, inherit that TR.
3. If they have distinct TRs, generate a new TR.

A consequence of rule 3 is that each TR has one unique *entry block* that
control transfers to from other TRs.
"""

from __future__ import annotations

from .cfg import reverse_postorder


class TemporalRegions:
    """TR assignment for one process."""

    def __init__(self, unit):
        self.unit = unit
        self.region_of = {}   # id(block) -> TR number
        self._blocks = {}     # TR number -> [blocks]
        self.entry_block = {}  # TR number -> unique entry block
        self._compute()

    def _compute(self):
        order = reverse_postorder(self.unit)
        next_tr = 0
        for block in order:
            preds = [p for p in block.predecessors()
                     if id(p) in {id(b) for b in order}]
            new_region_needed = (
                not preds
                or any(p.terminator is not None
                       and p.terminator.opcode == "wait" for p in preds))
            if new_region_needed:
                tr = next_tr
                next_tr += 1
                self.entry_block[tr] = block
            else:
                pred_trs = {self.region_of[id(p)] for p in preds
                            if id(p) in self.region_of}
                if len(pred_trs) == 1:
                    tr = pred_trs.pop()
                else:
                    tr = next_tr
                    next_tr += 1
                    self.entry_block[tr] = block
            self.region_of[id(block)] = tr
            self._blocks.setdefault(tr, []).append(block)

    # -- queries -----------------------------------------------------------

    @property
    def count(self):
        return len(self._blocks)

    def regions(self):
        """TR numbers in creation order."""
        return sorted(self._blocks)

    def blocks_of(self, tr):
        """Blocks assigned to a TR, in reverse postorder."""
        return list(self._blocks.get(tr, []))

    def region(self, block):
        return self.region_of[id(block)]

    def same_region(self, a, b):
        return self.region_of.get(id(a)) == self.region_of.get(id(b))

    def exiting_blocks(self, tr):
        """Blocks of ``tr`` with a successor outside ``tr`` (or a wait)."""
        out = []
        for block in self.blocks_of(tr):
            term = block.terminator
            if term is None:
                continue
            if term.opcode in ("wait", "halt"):
                out.append(block)
                continue
            for succ in block.successors():
                if self.region_of.get(id(succ)) != tr:
                    out.append(block)
                    break
        return out

    def region_of_instruction(self, inst):
        """The TR of the block containing ``inst``."""
        return self.region_of[id(inst.parent)]
