"""Per-unit analysis caching.

Passes consume analyses (CFG orders, dominator trees, temporal regions)
that are expensive relative to the transformations themselves: the seed
pipeline rebuilt a :class:`DominatorTree` and a :class:`TemporalRegions`
from scratch on every ECM/TCM/CSE/mem2reg invocation.  The
:class:`AnalysisManager` caches one result per ``(analysis, unit)`` pair
and hands out the cached object until a pass declares it dirty.

Invalidation is cooperative: the pass manager invalidates everything a
pass does not *preserve* (see ``Pass.preserves``), and passes with finer
knowledge (e.g. CF, which only perturbs the CFG when it folds a branch)
invalidate mid-run exactly when the mutation happens.
"""

from __future__ import annotations

from .cfg import reverse_postorder
from .dominators import DominatorTree
from .temporal import TemporalRegions

#: Registry of analyses the manager knows how to compute, by name.
ANALYSES = {
    "domtree": DominatorTree,
    "temporal": TemporalRegions,
    "rpo": reverse_postorder,
}

def register_analysis(name, factory):
    """Register an additional analysis ``factory(unit) -> result``."""
    ANALYSES[name] = factory
    return factory


class AnalysisManager:
    """Caches analysis results per unit, with explicit invalidation."""

    def __init__(self):
        # id(unit) -> {analysis name -> result}.  The unit itself is pinned
        # in ``_units`` so a recycled id can never alias a dead unit.
        self._cache = {}
        self._units = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- queries -----------------------------------------------------------

    def get(self, name, unit):
        """The (possibly cached) result of analysis ``name`` on ``unit``."""
        per_unit = self._cache.get(id(unit))
        if per_unit is not None and name in per_unit:
            self.hits += 1
            return per_unit[name]
        factory = ANALYSES.get(name)
        if factory is None:
            raise KeyError(f"unknown analysis {name!r}")
        self.misses += 1
        result = factory(unit)
        self._cache.setdefault(id(unit), {})[name] = result
        self._units[id(unit)] = unit
        return result

    def cached(self, name, unit):
        """The cached result, or None without computing anything."""
        per_unit = self._cache.get(id(unit))
        if per_unit is None:
            return None
        return per_unit.get(name)

    def domtree(self, unit):
        return self.get("domtree", unit)

    def temporal(self, unit):
        return self.get("temporal", unit)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, unit, preserved=frozenset()):
        """Drop cached analyses for ``unit`` not named in ``preserved``."""
        per_unit = self._cache.get(id(unit))
        if not per_unit:
            return
        for name in list(per_unit):
            if name not in preserved:
                del per_unit[name]
                self.invalidations += 1
        if not per_unit:
            del self._cache[id(unit)]
            del self._units[id(unit)]

    def forget(self, unit):
        """Drop everything known about ``unit`` (it left the module)."""
        self._cache.pop(id(unit), None)
        self._units.pop(id(unit), None)

    def invalidate_all(self):
        for unit in list(self._units.values()):
            self.invalidate(unit)

    # -- reporting ---------------------------------------------------------

    @property
    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations}

    def __repr__(self):
        return (f"<AnalysisManager hits={self.hits} misses={self.misses} "
                f"invalidations={self.invalidations}>")
